#!/usr/bin/env python3
"""Quickstart: compile an XDP program, optimize it with Merlin, verify
it against the kernel-verifier model, and run it over packets.

Run:  python examples/quickstart.py
"""

from repro import compile_baseline, compile_bpf, optimize, verify
from repro.isa import disassemble
from repro.vm import Machine
from repro.workloads.packets import build_packet

SOURCE = """
map array port_hits(u32, u64, 16);

u32 filter_tcp(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;

    // bounds check first: the verifier insists
    if (data + 38 > end) { return XDP_PASS; }

    u16 eth_proto = *(u16*)(data + 12);
    if (eth_proto != 0x0800) { return XDP_PASS; }

    u8 ip_proto = *(u8*)(data + 23);
    if (ip_proto != 6) { return XDP_PASS; }

    u16 dport = *(u16*)(data + 36);
    u32 key = (u32)dport & 0xf;
    u64* hits = map_lookup(port_hits, &key);
    if (hits != 0) {
        *hits += 1;
    }
    if (dport == 22) { return XDP_DROP; }
    return XDP_PASS;
}
"""


def main() -> None:
    # 1. the native pipeline ("clang -O2" + "llc")
    baseline = compile_baseline(compile_bpf(SOURCE), "filter_tcp")
    print(f"baseline: {baseline.ni} instructions")

    # 2. the same source through Merlin's two optimization tiers
    optimized, report = optimize(compile_bpf(SOURCE), "filter_tcp")
    print(f"merlin:   {optimized.ni} instructions "
          f"({report.ni_reduction:.1%} smaller)")
    for stat in report.pass_stats:
        if stat.rewrites:
            print(f"  {stat.tier:8s} {stat.name:14s} {stat.rewrites} rewrites")

    # 3. both must pass the kernel verifier
    for name, program in (("baseline", baseline), ("merlin", optimized)):
        result = verify(program)
        print(f"verify {name}: ok={result.ok} npi={result.npi} "
              f"time={result.verification_time_ns / 1000:.1f}us")

    # 4. run them over traffic and compare cost
    ssh_packet = build_packet(64, dst_port=22)
    web_packet = build_packet(64, dst_port=80)
    for name, program in (("baseline", baseline), ("merlin", optimized)):
        machine = Machine(program)
        dropped = machine.run(packet=ssh_packet)
        passed = machine.run(packet=web_packet)
        print(f"{name}: ssh -> action {dropped.xdp_action} (1=DROP), "
              f"web -> action {passed.xdp_action} (2=PASS), "
              f"{passed.counters.cycles} cycles/packet")

    # 5. inspect the optimized bytecode
    print("\noptimized program:")
    print(disassemble(optimized.insns))


if __name__ == "__main__":
    main()
