#!/usr/bin/env python3
"""The paper's flagship workload: the Katran-style xdp-balancer.

Compiles the load balancer with the native pipeline, with Merlin, and
with the K2 baseline; then measures throughput and latency on generated
traffic (the reproduction of Table 3's xdp-balancer row and the Fig. 14
case study).

Run:  python examples/load_balancer.py
"""

from repro.baselines import K2Config, K2Optimizer
from repro.core import MerlinPipeline
from repro.eval import NetworkEval, STAGE_ORDER, render_table
from repro.frontend import compile_source
from repro.codegen import compile_function
from repro.workloads.xdp import BY_NAME


def main() -> None:
    workload = BY_NAME["xdp-balancer"]
    ev = NetworkEval(packets=500, warmup=100)

    module = compile_source(workload.source, workload.name)
    baseline = compile_function(module.get(workload.entry), module,
                                ctx_size=24)
    module = compile_source(workload.source, workload.name)
    merlin, report = MerlinPipeline().compile(
        module.get(workload.entry), module, ctx_size=24)
    print(f"compiling xdp-balancer: {baseline.ni} -> {merlin.ni} insns "
          f"({report.ni_reduction:.1%} reduction) in "
          f"{report.compile_seconds:.3f}s")

    print("running K2's stochastic search (this is the slow part)...")
    k2 = K2Optimizer(K2Config(iterations=1500)).optimize(baseline)
    print(f"K2: {k2.ni_before} -> {k2.ni_after} insns in {k2.seconds:.1f}s "
          f"({k2.iterations} proposals, {k2.accepted} accepted)")

    perfs = {
        "clang": ev.measure(baseline, "clang"),
        "k2": ev.measure(k2.program, "k2"),
        "merlin": ev.measure(merlin, "merlin"),
    }
    clang_mpps = perfs["clang"].throughput_mpps
    rows = []
    for variant, perf in perfs.items():
        rows.append([
            variant,
            f"{perf.throughput_mpps:.3f}",
            f"{perf.cycles_per_packet:.0f}",
            f"{ev.latency_us(perf, 0.7 * clang_mpps):.2f}",
            f"{ev.latency_us(perf, clang_mpps):.2f}",
            f"{perf.counters.cache_misses}",
        ])
    print()
    print(render_table(
        ["Variant", "Tput (Mpps)", "Cycles/pkt", "Lat@low (us)",
         "Lat@med (us)", "Cache misses"],
        rows, title="xdp-balancer: clang vs K2 vs Merlin"))

    # Fig 14: cumulative optimizer application
    print("\ncumulative optimizer application (Fig 14):")
    stage_rows = []
    for index in range(len(STAGE_ORDER)):
        module = compile_source(workload.source, workload.name)
        pipeline = MerlinPipeline(enabled=set(STAGE_ORDER[: index + 1]))
        program, _ = pipeline.compile(module.get(workload.entry), module,
                                      ctx_size=24)
        perf = ev.measure(program)
        stage_rows.append([f"+{STAGE_ORDER[index]}", program.ni,
                           f"{perf.throughput_mpps:.3f}"])
    print(render_table(["Stage", "NI", "Tput (Mpps)"], stage_rows))


if __name__ == "__main__":
    main()
