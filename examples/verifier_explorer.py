#!/usr/bin/env python3
"""Exploring the kernel-verifier model.

Shows what the verifier accepts and rejects (with kernel-style reasons),
how kernel versions differ, and how Merlin cuts verification cost (NPI).

Run:  python examples/verifier_explorer.py
"""

from repro.isa import BpfProgram, MapSpec, assemble
from repro.verifier import KERNELS, verify
from repro.workloads.xdp import BY_NAME, compile_workload

REJECTED_PROGRAMS = {
    "uninitialized register": "r0 = r5\nexit",
    "packet access without bounds check": """
        r2 = *(u64 *)(r1 + 0)
        r0 = *(u8 *)(r2 + 12)
        exit
    """,
    "write into context": "*(u32 *)(r1 + 0) = 7\nr0 = 0\nexit",
    "stack out of bounds": "r1 = 0\n*(u64 *)(r10 - 520) = r1\nr0 = 0\nexit",
    "missing NULL check on map value": """
        *(u32 *)(r10 - 4) = 0
        r2 = r10
        r2 += -4
        r1 = 1 ll
        call 1
        r3 = *(u64 *)(r0 + 0)
        r0 = 0
        exit
    """,
    "leaking a pointer": "r0 = r10\nexit",
}

ACCEPTED = """
    r2 = *(u64 *)(r1 + 0)
    r3 = *(u64 *)(r1 + 8)
    r4 = r2
    r4 += 14
    if r4 > r3 goto out
    r0 = *(u8 *)(r2 + 13)
    exit
out:
    r0 = 0
    exit
"""


def main() -> None:
    maps = {"m": MapSpec("m", "array", 4, 8, 4)}
    print("=== programs the verifier rejects ===")
    for label, asm in REJECTED_PROGRAMS.items():
        program = BpfProgram("bad", assemble(asm), maps=maps, ctx_size=24)
        result = verify(program)
        print(f"  [{label}]")
        print(f"    -> {result.reason}")

    print("\n=== a well-formed packet parser ===")
    program = BpfProgram("good", assemble(ACCEPTED), ctx_size=24)
    result = verify(program)
    print(f"  ok={result.ok} npi={result.npi} states={result.total_states} "
          f"(the branch makes NPI > NI={program.ni})")

    print("\n=== kernel versions behave differently ===")
    alu32 = BpfProgram("v3", assemble("w0 = 0\nexit"), ctx_size=24)
    for version in ("4.15", "5.2", "6.5"):
        result = verify(alu32, KERNELS[version])
        print(f"  kernel {version}: ALU32 program ok={result.ok} "
              f"{result.reason}")

    print("\n=== Merlin reduces verification cost (Fig 10f) ===")
    for name in ("xdp2", "xdp-balancer", "xdp_simple_firewall"):
        workload = BY_NAME[name]
        base = compile_workload(workload)
        opt = compile_workload(workload, optimize=True)
        rb, ro = verify(base), verify(opt)
        print(f"  {name}: NPI {rb.npi} -> {ro.npi} "
              f"({1 - ro.npi / rb.npi:.1%} less), verification time "
              f"{rb.verification_time_ns / 1000:.0f}us -> "
              f"{ro.verification_time_ns / 1000:.0f}us")


if __name__ == "__main__":
    main()
