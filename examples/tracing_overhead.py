#!/usr/bin/env python3
"""Security-agent overhead study (the reproduction of Table 4).

Builds a small Sysdig-style tracing agent — a population of tracepoint
programs that marshal syscall events to user space — and measures the
runtime overhead it adds to lmbench micro-operations and a postmark-like
workload, with and without Merlin.

Run:  python examples/tracing_overhead.py
"""

from repro.eval import (
    SecuritySystem,
    average_reduction,
    pct,
    render_table,
    run_lmbench,
    run_postmark,
)
from repro.workloads.suites import generate_suite


def main() -> None:
    print("generating a Sysdig-style agent (10 tracepoint programs)...")
    programs = generate_suite("sysdig", seed=7, scale=0.1, count=10)
    for p in programs[:4]:
        print(f"  {p.name} (hook {p.hook}, target ~{p.target_ni} insns)")
    print("  ...")

    original = SecuritySystem.from_suite("sysdig", programs, optimize=False)
    merlin = SecuritySystem.from_suite("sysdig+merlin", programs,
                                       optimize=True)

    micro = run_lmbench(original, merlin)
    rows = [
        [r.test, f"{r.vanilla_us:.2f}", f"{r.with_original_us:.2f}",
         f"{r.with_merlin_us:.2f}", pct(r.reduction)]
        for r in micro
    ]
    rows.append(["Average", "", "", "", pct(average_reduction(micro))])
    macro = run_postmark(original, merlin)
    rows.append([f"{macro.test} (s)", f"{macro.vanilla_us:.2f}",
                 f"{macro.with_original_us:.2f}",
                 f"{macro.with_merlin_us:.2f}", pct(macro.reduction)])
    print()
    print(render_table(
        ["Test", "Vanilla (us)", "w/o Merlin", "w/ Merlin",
         "Overhead reduction"],
        rows,
        title="lmbench + postmark under a Sysdig-style agent (Eq. 1 "
              "overhead reduction; paper's Sysdig averages: 23.19% micro, "
              "16.08% postmark)",
    ))


if __name__ == "__main__":
    main()
