#!/usr/bin/env python3
"""Extending Merlin: write your own bytecode pass.

Merlin's bytecode tier is built on two reusable pieces:

* :class:`SymbolicProgram` — an index-relocated program view where you
  can delete/replace instructions and every branch offset is fixed up
  automatically;
* :class:`BytecodeAnalysis` — CFG + liveness ("is this register dead
  after instruction i?", "is anything jumping between i and j?").

This example adds a classic strength reduction the paper leaves as
future work: multiplication/division by powers of two become shifts.

Run:  python examples/custom_pass.py
"""

from repro.core import BytecodeAnalysis, MerlinPipeline, SymbolicProgram
from repro.core.pass_manager import BytecodePass
from repro.isa import BpfProgram, ProgramType, assemble, disassemble
from repro.isa import instruction as ins
from repro.isa import opcodes as op
from repro.verifier import verify
from repro.vm import Machine


class MulDivShiftPass(BytecodePass):
    """r *= 2^k  ->  r <<= k   and   r /= 2^k  ->  r >>= k."""

    name = "mul-shift"

    def run(self, program: BpfProgram) -> int:
        sym = SymbolicProgram.from_program(program)
        rewrites = 0
        for index in sym.live_indices():
            insn = sym.insns[index].insn
            if not (insn.is_alu64 and insn.uses_imm and insn.imm > 0):
                continue
            if insn.imm & (insn.imm - 1):
                continue  # not a power of two
            shift = insn.imm.bit_length() - 1
            if insn.alu_op == op.BPF_MUL:
                sym.replace(index, ins.alu64("lsh", insn.dst, imm=shift))
                rewrites += 1
            elif insn.alu_op == op.BPF_DIV:
                sym.replace(index, ins.alu64("rsh", insn.dst, imm=shift))
                rewrites += 1
        program.insns = sym.to_insns()
        return rewrites


def main() -> None:
    program = BpfProgram("demo", assemble("""
        r1 = *(u64 *)(r1 + 0)
        r1 *= 8
        r1 /= 4
        r2 = 3
        r1 *= r2
        r0 = r1
        exit
    """), prog_type=ProgramType.TRACEPOINT, ctx_size=16)

    print("before:")
    print(disassemble(program.insns))

    ctx = (11).to_bytes(8, "little") + bytes(8)
    before_result = Machine(program).run(ctx=ctx)

    custom = MulDivShiftPass()
    stats = custom.run_timed(program)
    print(f"\napplied {stats.rewrites} rewrites in "
          f"{stats.time_seconds * 1e6:.0f}us")
    print("\nafter:")
    print(disassemble(program.insns))

    after_result = Machine(program).run(ctx=ctx)
    assert before_result.return_value == after_result.return_value
    print(f"\nsemantics preserved: r0 = {after_result.return_value}, "
          f"cycles {before_result.counters.cycles} -> "
          f"{after_result.counters.cycles}")
    print(f"still verifies: {verify(program).ok}")

    # liveness queries are available for smarter patterns
    analysis = BytecodeAnalysis(SymbolicProgram.from_program(program))
    print(f"r2 dead after last use: "
          f"{analysis.reg_dead_after(program.insns.index(program.insns[-2]), 2)}")


if __name__ == "__main__":
    main()
