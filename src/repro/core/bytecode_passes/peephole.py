"""Peephole optimization in bytecode (Opt 6, PO).

The headline pattern is the masked 32-bit right shift of paper Fig. 9.
``lshr i32 x, k`` on a register whose upper half may hold garbage is
lowered by LLVM as::

    18 03 ..          // ld_imm64 rM, (0xffffffff << k) & 0xffffffff   (2 slots)
    5f 38 ..          // and  rX, rM
    77 08 00 00 1c .. // shr  rX, k
->
    67 08 00 00 20 .. // shl  rX, 32
    77 08 00 00 3c .. // shr  rX, 32 + k

Both clear the upper half and shift, but the rewrite saves two slots
(the 64-bit immediate load costs two) and frees the mask register.
The pass also deletes jumps to the immediately-following instruction.
"""

from __future__ import annotations

from ...isa import BpfProgram
from ...isa import instruction as ins
from ...isa import opcodes as op
from ..pass_manager import BytecodePass
from .analysis import BytecodeAnalysis
from .symbolic import SymbolicProgram

_U32 = 0xFFFFFFFF


def _mask_shift(mask: int) -> int:
    """If mask == (0xffffffff << k) & 0xffffffff, return k, else -1."""
    for k in range(32):
        if mask == ((_U32 << k) & _U32):
            return k
    return -1


class PeepholePass(BytecodePass):
    """Masked-shift strength reduction plus trivial jump threading."""

    name = "peephole"

    def run(self, program: BpfProgram) -> int:
        sym = SymbolicProgram.from_program(program)
        rewrites = 0
        rewrites += self._masked_shifts(sym)
        rewrites += self._redundant_jumps(sym)
        program.insns = sym.to_insns()
        return rewrites

    #: how far back to look for the mask-materializing ld_imm64
    LOOKBACK = 8

    def _masked_shifts(self, sym: SymbolicProgram) -> int:
        analysis = BytecodeAnalysis(sym)
        live = sym.live_indices()
        pos_of = {idx: p for p, idx in enumerate(live)}
        rewrites = 0
        consumed = set()
        for and_index in live:
            if and_index in consumed:
                continue
            and_insn = sym.insns[and_index].insn
            if not (
                and_insn.is_alu64
                and and_insn.alu_op == op.BPF_AND
                and not and_insn.uses_imm
                and and_insn.src != and_insn.dst
            ):
                continue
            shr_index = sym.next_live(and_index)
            if shr_index is None:
                continue
            shr = sym.insns[shr_index].insn
            if not (
                shr.is_alu64
                and shr.alu_op == op.BPF_RSH
                and shr.uses_imm
                and shr.dst == and_insn.dst
            ):
                continue
            mask_index = self._find_mask_def(sym, analysis, live, pos_of,
                                             and_index, and_insn.src,
                                             shr.imm)
            if mask_index is None or mask_index in consumed:
                continue
            if not analysis.straightline(mask_index, shr_index):
                continue
            if not analysis.reg_dead_after(and_index, and_insn.src):
                continue
            target = and_insn.dst
            snap = self._snapshot(sym)
            sym.delete(mask_index)  # the two-slot immediate load disappears
            sym.replace(and_index, ins.alu64("lsh", target, imm=32))
            sym.replace(shr_index, ins.alu64("rsh", target, imm=32 + shr.imm))
            self._witness_region(sym, snap, mask_index, shr_index,
                                 clobbered=(and_insn.src,),
                                 note="masked-shift strength reduction")
            consumed.update({mask_index, and_index, shr_index})
            rewrites += 1
        return rewrites

    def _find_mask_def(self, sym, analysis, live, pos_of, and_index,
                       mask_reg, shift):
        """Walk back from the AND to its mask-defining ld_imm64.

        Intervening instructions may not read or write the mask register
        (other uses would observe the deleted load)."""
        pos = pos_of[and_index]
        for back in range(1, self.LOOKBACK + 1):
            if pos - back < 0:
                return None
            index = live[pos - back]
            insn = sym.insns[index].insn
            if insn.is_ld_imm64 and insn.dst == mask_reg:
                if _mask_shift(insn.imm) == shift and insn.src == 0:
                    return index
                return None
            if mask_reg in insn.defs() or mask_reg in insn.uses():
                return None
            if insn.is_jump or insn.is_exit or insn.is_call:
                return None
        return None

    def _redundant_jumps(self, sym: SymbolicProgram) -> int:
        """Delete unconditional jumps to the next live instruction."""
        rewrites = 0
        for index in sym.live_indices():
            item = sym.insns[index]
            insn = item.insn
            if not (insn.is_jump and insn.jmp_op == op.BPF_JA
                    and not insn.is_exit and not insn.is_call):
                continue
            if item.target is None:
                continue
            resolved = item.target
            while (resolved < len(sym.insns)
                   and sym.insns[resolved].deleted):
                resolved += 1
            if resolved == sym.next_live(index):
                snap = self._snapshot(sym)
                sym.delete(index)
                self._witness_delete(snap, index, "jump-thread")
                rewrites += 1
        return rewrites
