"""Profile-guided code layout (BOLT-style) for eBPF bytecode.

Merlin's six passes optimize for compactness; this tier feeds the
simulator's *runtime* models back into the code.  A program is run on a
workload battery under a :class:`repro.hw.ProfilingBranchPredictor`,
which tallies per-site taken / not-taken counts with zero change to the
predicted/mirrored counters.  From those tallies (plus flow
conservation — the same reconstruction BOLT performs from LBR samples)
the pass derives a weighted CFG and applies the three classic layout
transforms:

* **branch straightening** — invert a conditional when its hot
  direction is the jump target, so the common case falls through.  The
  2-bit predictor boots weakly *not-taken*, so every mostly-taken site
  pays a warm-up mispredict on each fresh machine; straightening makes
  the hot direction the predicted-from-cold one.
* **chain-based block reordering** (greedy ext-TSP flavour) — merge
  blocks into chains along the hottest edges so hot successors become
  fall-throughs and hot unconditional jumps disappear entirely.
* **hot/cold splitting** — never-executed chains sink to the end of
  the program, keeping the hot path dense.

Re-emission goes through :class:`SymbolicProgram`, so every branch is
relocated by logical target, and the pass bails out (leaving the
program untouched) if any relocated offset would overflow the signed
16-bit ``off`` field.  Every applied layout emits a single ``layout``
witness carrying the full before-snapshot and the final instruction
list; :mod:`repro.tv.regioncheck` certifies it by a lock-step
bisimulation in which unconditional jumps are transparent and
conditionals must match up to inversion with swapped successors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...isa import BpfProgram, Instruction
from ...isa import opcodes as op
from ...isa.instruction import jump
from ..pass_manager import BytecodePass
from .symbolic import SymInsn, SymbolicProgram

#: conditional jump inversions (JSET has no complement opcode)
_INVERSE_COND = {
    op.BPF_JEQ: op.BPF_JNE, op.BPF_JNE: op.BPF_JEQ,
    op.BPF_JGT: op.BPF_JLE, op.BPF_JLE: op.BPF_JGT,
    op.BPF_JGE: op.BPF_JLT, op.BPF_JLT: op.BPF_JGE,
    op.BPF_JSGT: op.BPF_JSLE, op.BPF_JSLE: op.BPF_JSGT,
    op.BPF_JSGE: op.BPF_JSLT, op.BPF_JSLT: op.BPF_JSGE,
}

_S16_MIN, _S16_MAX = -(1 << 15), (1 << 15) - 1


def invert_condition(insn: Instruction) -> Optional[Instruction]:
    """The complementary conditional jump, or None when there is none
    (``jset``).  Class (JMP/JMP32), operands and immediate carry over;
    the caller rewires the target."""
    inverse = _INVERSE_COND.get(insn.jmp_op)
    if inverse is None:
        return None
    return insn.with_(opcode=(insn.opcode & ~op.JMP_OP_MASK) | inverse)


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PgoSpec:
    """A deterministic profile-collection recipe.

    The spec — not the collected counts — is what requests carry and
    what :mod:`repro.cache` keys fold in: two compiles of the same
    source under the same spec replay the same training battery and
    produce the same layout, so a cached entry is exact.
    """

    tests: int = 6       # workload inputs per training battery
    runs: int = 1        # battery repetitions
    seed: int = 2024     # input-generation / map-seeding seed
    max_insns: int = 200_000

    def fingerprint(self) -> str:
        """Stable digest text for cache keys and request echoes."""
        return (f"tests={self.tests},runs={self.runs},seed={self.seed},"
                f"max_insns={self.max_insns}")

    @classmethod
    def from_dict(cls, obj: dict) -> "PgoSpec":
        return cls(tests=obj.get("tests", 6), runs=obj.get("runs", 1),
                   seed=obj.get("seed", 2024),
                   max_insns=obj.get("max_insns", 200_000))

    def to_dict(self) -> dict:
        return {"tests": self.tests, "runs": self.runs, "seed": self.seed,
                "max_insns": self.max_insns}


@dataclass
class ExecutionProfile:
    """What profiling observed: per-site conditional-branch tallies.

    ``taken``/``not_taken`` are keyed by *slot* pc (what the VM reports
    to the predictor).  ``entries`` counts completed entries into the
    program — the entry block's execution count for flow propagation.
    """

    entries: int = 0
    taken: Dict[int, int] = field(default_factory=dict)
    not_taken: Dict[int, int] = field(default_factory=dict)
    faults: int = 0

    @property
    def empty(self) -> bool:
        return not self.taken and not self.not_taken and not self.entries


def collect_profile(program: BpfProgram,
                    spec: Optional[PgoSpec] = None,
                    tests: Optional[Sequence] = None,
                    engine: str = "fast",
                    predictor=None) -> ExecutionProfile:
    """Run *program* on a training battery and return its profile.

    The battery mirrors the differential oracle's conventions (same
    input generator, same map-coverage cycle), so a profile collected
    here describes the same workload the oracle and the benchmarks
    measure.  Each test runs on a **fresh** machine — profiles describe
    cold-start behavior, which is exactly what the layout pass
    optimizes — but the profiling predictor is shared across the
    battery and explicitly ``reset()`` first, so back-to-back
    collections over different programs never leak tallies or predictor
    state into each other.
    """
    # lazy: repro.vm transitively imports repro.cache/core; keeping the
    # import out of module scope keeps this module cycle-free
    from ...hw import ProfilingBranchPredictor
    from ...vm import Machine
    from ...fuzz.oracle import (COVERAGE_CYCLE, RUNTIME_FAULTS,
                                generate_tests, populate_maps)

    spec = spec or PgoSpec()
    if tests is None:
        tests = generate_tests(program, count=spec.tests, seed=spec.seed)
    if predictor is None:
        predictor = ProfilingBranchPredictor()
    predictor.reset()

    profile = ExecutionProfile()
    for _ in range(max(spec.runs, 1)):
        for index, test in enumerate(tests):
            machine = Machine(program, branch=predictor, seed=spec.seed,
                              max_insns=spec.max_insns, engine=engine)
            coverage = COVERAGE_CYCLE[index % len(COVERAGE_CYCLE)]
            if coverage:
                populate_maps(machine, coverage, spec.seed + index)
            try:
                machine.run(ctx=test.ctx, packet=test.packet)
            except RUNTIME_FAULTS:
                profile.faults += 1
            profile.entries += 1
    profile.taken = dict(predictor.taken_counts)
    profile.not_taken = dict(predictor.not_taken_counts)
    return profile


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------
@dataclass
class LayoutBlock:
    """One basic block over logical instruction indices."""

    first: int
    last: int
    #: terminator shape: "exit" | "jump" | "cond" | "fall"
    kind: str = "fall"
    #: block ids; END (== number of blocks) is the one-past-the-end
    #: pseudo block, preserved so off-the-end control flow relocates
    taken: Optional[int] = None   # cond: jump-taken successor
    fall: Optional[int] = None    # cond/fall: fall-through; jump: target


def control_flow_blocks(sym: SymbolicProgram) -> List[LayoutBlock]:
    """Decompose a (deletion-free) symbolic program into basic blocks.

    Shared by the layout pass and the TV layout validator: both sides
    of a witness are decomposed with the same rules, then compared
    structurally.  Block id ``len(blocks)`` denotes the end-of-program
    pseudo target.
    """
    n = len(sym.insns)
    leaders = {0}
    for index, item in enumerate(sym.insns):
        insn = item.insn
        if insn.is_exit or (insn.is_jump and not insn.is_call):
            if index + 1 < n:
                leaders.add(index + 1)
            if item.target is not None and item.target < n:
                leaders.add(item.target)
    starts = sorted(leaders)
    block_of = {start: bid for bid, start in enumerate(starts)}
    end_id = len(starts)

    def resolve(index: Optional[int]) -> int:
        if index is None or index >= n:
            return end_id
        return block_of[index]

    blocks: List[LayoutBlock] = []
    for bid, start in enumerate(starts):
        stop = starts[bid + 1] - 1 if bid + 1 < len(starts) else n - 1
        block = LayoutBlock(first=start, last=stop)
        item = sym.insns[stop]
        insn = item.insn
        if insn.is_exit:
            block.kind = "exit"
        elif insn.is_jump and not insn.is_call and insn.jmp_op == op.BPF_JA:
            block.kind = "jump"
            block.fall = resolve(item.target)
        elif insn.is_jump and not insn.is_call:
            block.kind = "cond"
            block.taken = resolve(item.target)
            block.fall = end_id if stop + 1 >= n else block_of[stop + 1]
        else:
            block.kind = "fall"
            block.fall = end_id if stop + 1 >= n else block_of[stop + 1]
        blocks.append(block)
    return blocks


@dataclass
class _Edge:
    src: int
    dst: int
    weight: int
    kind: str  # "taken" | "fall" | "jump"


def _cfg_edges(blocks: List[LayoutBlock], counts: List[int],
               profile: ExecutionProfile,
               slot_of: Dict[int, int]) -> List[_Edge]:
    edges: List[_Edge] = []
    end_id = len(blocks)
    for bid, block in enumerate(blocks):
        if block.kind == "exit":
            continue
        if block.kind == "cond":
            slot = slot_of[block.last]
            if block.taken is not None and block.taken < end_id:
                edges.append(_Edge(bid, block.taken,
                                   profile.taken.get(slot, 0), "taken"))
            if block.fall is not None and block.fall < end_id:
                edges.append(_Edge(bid, block.fall,
                                   profile.not_taken.get(slot, 0), "fall"))
        elif block.fall is not None and block.fall < end_id:
            edges.append(_Edge(bid, block.fall, counts[bid], block.kind))
    return edges


def _block_counts(blocks: List[LayoutBlock], profile: ExecutionProfile,
                  slot_of: Dict[int, int]) -> List[int]:
    """Per-block execution counts by flow conservation.

    Conditional edges carry exact profiled weights; unconditional edges
    (``ja`` and plain fall-through) carry their source block's count, so
    counts propagate iteratively.  Cycles made *only* of unconditional
    edges cannot terminate and thus never execute in a completed run, so
    the bounded iteration converges on everything a profile can
    describe; faulted runs make counts mildly approximate, which only
    steers ordering heuristics.
    """
    end_id = len(blocks)
    cond_in: List[int] = [0] * end_id
    uncond_preds: List[List[int]] = [[] for _ in range(end_id)]
    for bid, block in enumerate(blocks):
        if block.kind == "cond":
            slot = slot_of[block.last]
            if block.taken is not None and block.taken < end_id:
                cond_in[block.taken] += profile.taken.get(slot, 0)
            if block.fall is not None and block.fall < end_id:
                cond_in[block.fall] += profile.not_taken.get(slot, 0)
        elif block.kind in ("jump", "fall"):
            if block.fall is not None and block.fall < end_id:
                uncond_preds[block.fall].append(bid)

    counts = [0] * end_id
    for _ in range(end_id + 1):
        changed = False
        for bid in range(end_id):
            total = cond_in[bid] + (profile.entries if bid == 0 else 0)
            total += sum(counts[p] for p in uncond_preds[bid])
            if total != counts[bid]:
                counts[bid] = total
                changed = True
        if not changed:
            break
    return counts


# ---------------------------------------------------------------------------
# chain ordering
# ---------------------------------------------------------------------------
def _edge_gain(edge: _Edge, blocks: List[LayoutBlock],
               mispredict_penalty: int, line_bytes: int) -> float:
    """Estimated cycles saved per profile window if ``edge.dst`` is laid
    out directly after ``edge.src``, scored against the hw models:

    * a ``ja`` whose target becomes adjacent disappears — one
      instruction-cycle per traversal;
    * a conditional whose *hot* direction becomes the fall-through is
      straightened, saving the predictor's cold-start mispredict (the
      2-bit counter boots weakly not-taken) at ``mispredict_penalty``
      cycles — charged once, since a trained predictor tracks either
      polarity equally;
    * adjacency also packs the pair into fewer cache lines; the icache
      is not simulated by :class:`repro.hw.CacheModel`, so this term
      only breaks ties.
    """
    gain = float(edge.weight)
    if edge.kind == "jump":
        gain += float(edge.weight)
    elif edge.kind == "taken" and edge.weight:
        # straightening needs an invertible condition; emission
        # re-checks and degrades to cond+ja when there is none
        gain += float(mispredict_penalty)
    gain += 8.0 / max(line_bytes, 1)
    return gain


def _chain_order(blocks: List[LayoutBlock], edges: List[_Edge],
                 counts: List[int], mispredict_penalty: int,
                 line_bytes: int) -> List[int]:
    """Greedy chain merging (Pettis–Hansen seeded, ext-TSP scored):
    every block starts alone; edges are visited by descending gain and
    merge chains tail-to-head; the entry chain leads, hot chains follow
    by weight, never-executed chains sink to the end (hot/cold split).
    """
    end_id = len(blocks)
    chain_of = list(range(end_id))
    chains: Dict[int, List[int]] = {bid: [bid] for bid in range(end_id)}

    ranked = sorted(
        (e for e in edges if e.src != e.dst and e.weight > 0),
        key=lambda e: (-_edge_gain(e, blocks, mispredict_penalty,
                                   line_bytes),
                       e.src, e.dst))
    for edge in ranked:
        ca, cb = chain_of[edge.src], chain_of[edge.dst]
        if ca == cb or edge.dst == 0:
            continue  # entry block must stay first
        if chains[ca][-1] != edge.src or chains[cb][0] != edge.dst:
            continue  # only tail-to-head merges keep both chains intact
        chains[ca].extend(chains[cb])
        for bid in chains[cb]:
            chain_of[bid] = ca
        del chains[cb]

    def chain_weight(members: List[int]) -> int:
        return sum(counts[bid] for bid in members)

    entry_chain = chain_of[0]
    rest = [cid for cid in chains if cid != entry_chain]
    hot = [cid for cid in rest if chain_weight(chains[cid]) > 0]
    cold = [cid for cid in rest if chain_weight(chains[cid]) == 0]
    hot.sort(key=lambda cid: (-chain_weight(chains[cid]), chains[cid][0]))
    cold.sort(key=lambda cid: chains[cid][0])

    order: List[int] = []
    for cid in [entry_chain] + hot + cold:
        order.extend(chains[cid])
    return order


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------
class ProfileGuidedLayoutPass(BytecodePass):
    """Re-lay a program out along its profiled hot paths.

    Behavior-preserving by construction: block bodies are moved
    verbatim, terminators are only inverted (with swapped successors)
    or exchanged for / relieved of an explicit ``ja``, and the whole
    rewrite is re-relocated through :class:`SymbolicProgram`.  Perf
    *counters* legitimately change — that is the point — so the fuzz
    layout axis compares return value, state and faults but not
    counters.
    """

    name = "layout"

    def __init__(self, profile: ExecutionProfile):
        self.profile = profile

    def run(self, program: BpfProgram) -> int:
        if self.profile.empty or len(program.insns) < 2:
            return 0
        sym = SymbolicProgram.from_program(program)
        blocks = control_flow_blocks(sym)
        if len(blocks) < 2:
            return 0
        slot_of = dict(enumerate(program.slot_offsets()))
        counts = _block_counts(blocks, self.profile, slot_of)
        edges = _cfg_edges(blocks, counts, self.profile, slot_of)
        # score merges against the simulator's actual models
        from ...hw import BranchPredictor, CacheModel

        penalty = BranchPredictor().mispredict_penalty
        line_bytes = CacheModel().line_bytes
        order = _chain_order(blocks, edges, counts, penalty, line_bytes)

        emitted = self._emit(sym, blocks, order, slot_of)
        if emitted is None:
            return 0
        new_insns, moved, inverted = emitted
        if new_insns == list(program.insns):
            return 0
        snapshot = self._snapshot(sym)
        program.insns = new_insns
        self._witness_layout(
            snapshot, new_insns,
            note=f"{moved} block(s) moved, {inverted} branch(es) "
                 f"straightened")
        return max(moved + inverted, 1)

    # ------------------------------------------------------------ emission
    def _emit(self, sym: SymbolicProgram, blocks: List[LayoutBlock],
              order: List[int], slot_of: Dict[int, int]
              ) -> Optional[Tuple[List[Instruction], int, int]]:
        """Emit blocks in *order*; returns ``(insns, moved, inverted)``
        or None when a relocated offset cannot be encoded."""
        end_id = len(blocks)
        moved = sum(1 for pos, bid in enumerate(order) if pos != bid)
        inverted = 0

        # (instruction, successor block id or None) in layout order
        out: List[Tuple[Instruction, Optional[int]]] = []
        block_start: Dict[int, int] = {}
        for pos, bid in enumerate(order):
            block = blocks[bid]
            nxt = order[pos + 1] if pos + 1 < len(order) else end_id
            block_start[bid] = len(out)
            body = [sym.insns[i].insn
                    for i in range(block.first, block.last + 1)]
            if block.kind == "exit":
                out.extend((insn, None) for insn in body)
            elif block.kind == "jump":
                out.extend((insn, None) for insn in body[:-1])
                if block.fall != nxt:
                    out.append((body[-1], block.fall))
            elif block.kind == "cond":
                out.extend((insn, None) for insn in body[:-1])
                cond = body[-1]
                if block.fall == nxt or block.taken == block.fall:
                    out.append((cond, block.taken))
                    if (block.taken == block.fall and block.fall != nxt):
                        out.append((jump("ja"), block.fall))
                else:
                    flipped = invert_condition(cond)
                    if block.taken == nxt and flipped is not None:
                        out.append((flipped, block.fall))
                        inverted += 1
                    else:
                        out.append((cond, block.taken))
                        out.append((jump("ja"), block.fall))
            else:  # "fall"
                out.extend((insn, None) for insn in body)
                if block.fall != nxt:
                    out.append((jump("ja"), block.fall))

        total = len(out)
        resolved = SymbolicProgram([
            SymInsn(insn,
                    None if succ is None
                    else (total if succ == end_id else block_start[succ]))
            for insn, succ in out
        ])
        insns = resolved.to_insns()
        for insn in insns:
            if (insn.is_jump and not insn.is_call and not insn.is_exit
                    and not _S16_MIN <= insn.off <= _S16_MAX):
                return None  # branch out of signed-16-bit range: bail
        return insns, moved, inverted
