"""Bytecode-tier constant propagation + dead code elimination (Opt 1).

The paper's Fig. 4: LLVM materializes every stored constant into a
register first::

    b7 01 00 00 01 00 00 00    // mov  r1, 1
    7b 1a c0 ff 00 00 00 00    // movq r1, -0x40(r10)

When the register dies at the store, Merlin folds the constant into a
``ST``-class store-immediate and the mov becomes dead::

    7a 0a c0 ff 01 00 00 00    // movq $1, -0x40(r10)

The pass also performs dead-store elimination on stack slots that are
overwritten before any possible read (Fig. 5, line 1) and removes dead
register definitions (including self-moves left by register allocation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...isa import BpfProgram, Instruction
from ...isa import instruction as ins
from ...isa import opcodes as op
from ..pass_manager import BytecodePass
from .analysis import BytecodeAnalysis
from .symbolic import SymbolicProgram

_S32_MIN, _S32_MAX = -(1 << 31), (1 << 31) - 1


def _as_signed32(imm: int) -> Optional[int]:
    if _S32_MIN <= imm <= _S32_MAX:
        return imm
    return None


class StoreImmediatePass(BytecodePass):
    """mov rX, imm; *(uN*)(rB+off) = rX  ->  *(uN*)(rB+off) = imm."""

    name = "cp-dce"

    def run(self, program: BpfProgram) -> int:
        sym = SymbolicProgram.from_program(program)
        rewrites = 0
        rewrites += self._fold_store_immediates(sym)
        rewrites += self._dead_stack_stores(sym)
        rewrites += self._dead_defs(sym)
        program.insns = sym.to_insns()
        return rewrites

    # ------------------------------------------------------------------
    def _fold_store_immediates(self, sym: SymbolicProgram) -> int:
        # deleting a constant mov only removes uses, so liveness facts
        # computed once per scan stay conservative for later rewrites
        rewrites = 0
        changed = True
        while changed:
            changed = False
            analysis = BytecodeAnalysis(sym)
            skip_until = -1
            for index in sym.live_indices():
                if index <= skip_until or sym.insns[index].deleted:
                    continue
                insn = sym.insns[index].insn
                if not (
                    insn.is_alu64
                    and insn.alu_op == op.BPF_MOV
                    and insn.uses_imm
                ):
                    continue
                nxt = sym.next_live(index)
                if nxt is None:
                    continue
                store = sym.insns[nxt].insn
                if not (
                    store.insn_class == op.BPF_STX
                    and not store.is_atomic
                    and store.src == insn.dst
                    and store.dst != insn.dst
                ):
                    continue
                if not analysis.straightline(index, nxt):
                    continue
                if not analysis.reg_dead_after(nxt, insn.dst):
                    continue
                imm = _as_signed32(insn.imm)
                if imm is None:
                    continue
                snap = self._snapshot(sym)
                sym.replace(
                    nxt,
                    ins.store_imm(store.size_bytes, store.dst, store.off, imm),
                )
                sym.delete(index)
                self._witness_region(sym, snap, index, nxt,
                                     clobbered=(insn.dst,),
                                     note="store-immediate fold")
                rewrites += 1
                changed = True
                skip_until = nxt
        return rewrites

    # ------------------------------------------------------------------
    def _dead_stack_stores(self, sym: SymbolicProgram) -> int:
        """Remove stack stores fully overwritten before any possible read."""
        rewrites = 0
        analysis = BytecodeAnalysis(sym)
        live = sym.live_indices()
        for pos, index in enumerate(live):
            insn = sym.insns[index].insn
            if not self._is_stack_store(insn):
                continue
            lo, hi = insn.off, insn.off + insn.size_bytes
            overwriter = self._overwritten_before_read(
                sym, analysis, live, pos, lo, hi)
            if overwriter is not None:
                snap = self._snapshot(sym)
                sym.delete(index)
                self._witness_region(sym, snap, index, overwriter,
                                     note="dead stack store")
                rewrites += 1
        return rewrites

    @staticmethod
    def _is_stack_store(insn: Instruction) -> bool:
        return (
            insn.is_store
            and not insn.is_atomic
            and insn.dst == op.FP
        )

    def _overwritten_before_read(
        self,
        sym: SymbolicProgram,
        analysis: BytecodeAnalysis,
        live: List[int],
        pos: int,
        lo: int,
        hi: int,
    ) -> Optional[int]:
        """Logical index of the store that fully overwrites [lo, hi)
        before any possible read, or None."""
        for later_pos in range(pos + 1, len(live)):
            index = live[later_pos]
            if analysis.is_branch_target(index):
                return None
            insn = sym.insns[index].insn
            if insn.is_jump or insn.is_exit or insn.is_call:
                return None
            # r10 escaping into another register makes aliasing possible
            if insn.is_alu and not insn.uses_imm and insn.src == op.FP:
                return None
            if insn.is_load and insn.src == op.FP:
                if insn.off < hi and insn.off + insn.size_bytes > lo:
                    return None
            if insn.is_atomic and insn.dst == op.FP:
                if insn.off < hi and insn.off + insn.size_bytes > lo:
                    return None
            if self._is_stack_store(insn):
                if insn.off <= lo and insn.off + insn.size_bytes >= hi:
                    return index  # fully overwritten
                if insn.off < hi and insn.off + insn.size_bytes > lo:
                    return None  # partial overlap: keep it simple
        return None

    # ------------------------------------------------------------------
    def _dead_defs(self, sym: SymbolicProgram) -> int:
        rewrites = 0
        while True:
            analysis = BytecodeAnalysis(sym)
            dead = analysis.dead_defs()
            if not dead:
                return rewrites
            for index in dead:
                snap = self._snapshot(sym)
                sym.delete(index)
                self._witness_delete(snap, index, "dead-def")
                rewrites += 1
