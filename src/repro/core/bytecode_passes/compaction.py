"""Code compaction with ALU32 instructions (Opt 5, CC).

The shl/shr zero-extension idiom LLVM emits for "take the low 32 bits"::

    67 00 00 00 20 00 00 00   // shlq $0x20, r0
    77 00 00 00 20 00 00 00   // shrq $0x20, r0
->  bc 00 00 00 00 00 00 00   // movl w0, w0

The 32-bit mov zero-extends its destination, so the pair collapses to
one instruction.  LLVM cannot emit this at IR level (no IR instruction
maps to ``movl rX, rX``), which is the paper's argument for the
bytecode tier.  The rewrite is gated on the target accepting v3 (ALU32)
instructions — older kernels would reject or mistrack them.
"""

from __future__ import annotations

from ...isa import BpfProgram
from ...isa import instruction as ins
from ...isa import opcodes as op
from ..pass_manager import BytecodePass
from .analysis import BytecodeAnalysis
from .symbolic import SymbolicProgram


class CodeCompactionPass(BytecodePass):
    """Rewrite zero-extension shift pairs into 32-bit moves."""

    name = "cc"

    def __init__(self, allow_alu32: bool = True):
        self.allow_alu32 = allow_alu32

    def run(self, program: BpfProgram) -> int:
        if not self.allow_alu32:
            return 0
        sym = SymbolicProgram.from_program(program)
        analysis = BytecodeAnalysis(sym)
        rewrites = 0
        skip_until = -1
        for index in sym.live_indices():
            if index <= skip_until:
                continue
            first = sym.insns[index].insn
            if not (
                first.is_alu64
                and first.alu_op == op.BPF_LSH
                and first.uses_imm
                and first.imm == 32
            ):
                continue
            nxt = sym.next_live(index)
            if nxt is None:
                continue
            second = sym.insns[nxt].insn
            if not (
                second.is_alu64
                and second.alu_op == op.BPF_RSH
                and second.uses_imm
                and second.imm == 32
                and second.dst == first.dst
            ):
                continue
            if not analysis.straightline(index, nxt):
                continue
            snap = self._snapshot(sym)
            sym.replace(index, ins.mov32_reg(first.dst, first.dst))
            sym.delete(nxt)
            self._witness_region(sym, snap, index, nxt,
                                 note="zero-extension shift pair")
            rewrites += 1
            skip_until = nxt
        program.insns = sym.to_insns()
        if rewrites:
            program.mcpu = "v3"  # the program now requires v3 support
        return rewrites
