"""Symbolic (index-relocated) view of a bytecode program.

Bytecode rewriting changes instruction counts, which would silently
corrupt every relative branch.  ``SymbolicProgram`` converts branch
offsets into logical instruction indices, lets passes insert/delete/
replace instructions freely, and recomputes correct slot-relative
offsets on the way out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from ...isa import BpfProgram, Instruction


class RelocationError(Exception):
    """Raised when branch targets cannot be resolved."""


@dataclass
class SymInsn:
    insn: Instruction
    target: Optional[int] = None  # logical index of the jump target
    deleted: bool = False


class SymbolicProgram:
    """A mutable, index-addressed program."""

    def __init__(self, insns: List[SymInsn]):
        self.insns = insns

    # --- conversion ---------------------------------------------------------
    @classmethod
    def from_program(cls, program: BpfProgram) -> "SymbolicProgram":
        slot_to_index = {}
        slot = 0
        for index, insn in enumerate(program.insns):
            slot_to_index[slot] = index
            slot += insn.slots
        end_slot = slot

        sym: List[SymInsn] = []
        slot = 0
        for insn in program.insns:
            target = None
            if insn.is_jump and not insn.is_call and not insn.is_exit:
                target_slot = slot + insn.slots + insn.off
                if target_slot == end_slot:
                    target = len(program.insns)
                elif target_slot not in slot_to_index:
                    raise RelocationError(
                        f"branch at slot {slot} lands inside an instruction"
                    )
                else:
                    target = slot_to_index[target_slot]
            sym.append(SymInsn(insn, target))
            slot += insn.slots
        return cls(sym)

    def to_insns(self) -> List[Instruction]:
        """Drop deletions, recompute offsets, return final instructions."""
        # map old index -> new index of the next surviving instruction
        survivors: List[int] = []
        remap: List[int] = []
        for sym in self.insns:
            remap.append(len(survivors))
            if not sym.deleted:
                survivors.append(len(remap) - 1)
        end_index = len(survivors)

        live = [sym for sym in self.insns if not sym.deleted]
        slots: List[int] = []
        slot = 0
        for sym in live:
            slots.append(slot)
            slot += sym.insn.slots
        end_slot = slot

        result: List[Instruction] = []
        for new_index, sym in enumerate(live):
            insn = sym.insn
            if sym.target is not None:
                if sym.target >= len(self.insns):
                    target_slot = end_slot
                else:
                    new_target = remap[sym.target]
                    target_slot = (
                        end_slot if new_target >= len(live) else slots[new_target]
                    )
                rel = target_slot - (slots[new_index] + insn.slots)
                insn = insn.with_(off=rel)
            result.append(insn)
        return result

    def apply_to(self, program: BpfProgram) -> BpfProgram:
        """Return a copy of *program* with the rewritten instructions."""
        return program.copy(insns=self.to_insns())

    # --- queries ------------------------------------------------------------
    def branch_targets(self) -> Set[int]:
        """Logical indices some branch may land on (rewrite barriers)."""
        targets = set()
        for sym in self.insns:
            if not sym.deleted and sym.target is not None:
                target = sym.target
                # a deleted target means control lands on the next live insn
                while target < len(self.insns) and self.insns[target].deleted:
                    target += 1
                targets.add(target)
        return targets

    def live_indices(self) -> List[int]:
        return [i for i, sym in enumerate(self.insns) if not sym.deleted]

    def next_live(self, index: int) -> Optional[int]:
        for i in range(index + 1, len(self.insns)):
            if not self.insns[i].deleted:
                return i
        return None

    # --- mutation ---------------------------------------------------------------
    def delete(self, index: int) -> None:
        self.insns[index].deleted = True

    def replace(self, index: int, insn: Instruction,
                target: Optional[int] = None) -> None:
        self.insns[index] = SymInsn(insn, target)

    def insert_before(self, index: int, insn: Instruction,
                      target: Optional[int] = None) -> None:
        """Insert *insn* at logical *index*, shifting later indices up.

        Branches that targeted *index* keep targeting the original
        instruction (now at ``index + 1``) — the inserted instruction
        executes on fall-through only.  Pass *target* (pre-insertion
        index) to make the inserted instruction itself a branch.
        """
        if not 0 <= index <= len(self.insns):
            raise RelocationError(
                f"insert position {index} outside program of "
                f"{len(self.insns)} instructions")
        for sym in self.insns:
            if sym.target is not None and sym.target >= index:
                sym.target += 1
        if target is not None and target >= index:
            target += 1
        self.insns.insert(index, SymInsn(insn, target))
