"""Bytecode-tier superword-level merging (Opt 2, SLM).

Merges pairs of adjacent constant stores into one store of twice the
width (paper Fig. 5)::

    62 0a fc ff 00 00 00 00   // movl $0, -0x4(r10)
    62 0a f8 ff 01 00 00 00   // movl $1, -0x8(r10)
->  7a 0a f8 ff 01 00 00 00   // movq $1, -0x8(r10)

The merged value is assembled little-endian (value at the lower address
fills the low bytes).  Pairs keep merging bottom-up, so four adjacent
``u8`` stores can collapse all the way into one ``u32``.
"""

from __future__ import annotations

from typing import Optional

from ...isa import BpfProgram
from ...isa import instruction as ins
from ...isa import opcodes as op
from ..pass_manager import BytecodePass
from .analysis import BytecodeAnalysis
from .symbolic import SymbolicProgram

_S32_MIN, _S32_MAX = -(1 << 31), (1 << 31) - 1

#: test-only fault injection: when True, merged stores land one byte
#: past the pair's base offset.  Exists so the differential fuzzer's
#: self-test can prove it detects, bisects, and minimizes a real
#: miscompile; never set outside tests.
PLANTED_OFFSET_BUG = False


def merged_immediate(lo_value: int, hi_value: int, size: int) -> Optional[int]:
    """Combine two *size*-byte store immediates into one 2*size value.

    Returns None when the merged constant cannot be encoded in the
    sign-extended 32-bit immediate of a store instruction.
    """
    bits = size * 8
    mask = (1 << bits) - 1
    combined = (lo_value & mask) | ((hi_value & mask) << bits)
    merged_bits = bits * 2
    if merged_bits < 64:
        # interpret as the signed immediate that reproduces the pattern
        if combined >> (merged_bits - 1):
            combined -= 1 << merged_bits
        return combined if _S32_MIN <= combined <= _S32_MAX else None
    # 8-byte store sign-extends a 32-bit immediate
    as_signed = combined - (1 << 64) if combined >> 63 else combined
    return as_signed if _S32_MIN <= as_signed <= _S32_MAX else None


class SuperwordMergePass(BytecodePass):
    """Merge adjacent constant stores to consecutive addresses."""

    name = "slm"

    def run(self, program: BpfProgram) -> int:
        sym = SymbolicProgram.from_program(program)
        rewrites = 0
        changed = True
        while changed:
            changed = False
            analysis = BytecodeAnalysis(sym)
            for index in sym.live_indices():
                if sym.insns[index].deleted:
                    continue
                if self._try_merge(sym, analysis, index):
                    rewrites += 1
                    changed = True
        program.insns = sym.to_insns()
        return rewrites

    def _try_merge(self, sym: SymbolicProgram, analysis: BytecodeAnalysis,
                   index: int) -> bool:
        first = sym.insns[index].insn
        if not (first.is_store_imm and first.size_bytes < 8):
            return False
        nxt = sym.next_live(index)
        if nxt is None:
            return False
        second = sym.insns[nxt].insn
        if not (second.is_store_imm and second.size_bytes == first.size_bytes
                and second.dst == first.dst):
            return False
        if not analysis.straightline(index, nxt):
            return False
        size = first.size_bytes
        if second.off == first.off + size:
            lo, hi = first, second
        elif first.off == second.off + size:
            lo, hi = second, first
        else:
            return False
        if lo.off % (size * 2):
            return False  # merged access would be misaligned
        imm = merged_immediate(lo.imm, hi.imm, size)
        if imm is None:
            return False
        off = lo.off + 1 if PLANTED_OFFSET_BUG else lo.off
        snap = self._snapshot(sym)
        sym.replace(index, ins.store_imm(size * 2, lo.dst, off, imm))
        sym.delete(nxt)
        self._witness_region(sym, snap, index, nxt,
                             note="adjacent store merge")
        return True
