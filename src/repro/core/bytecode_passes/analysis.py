"""Bytecode dependency analysis (the paper's "Dep" component).

Builds a CFG over logical instruction indices and solves register
liveness; the rewriting passes consult it to prove that a register is
dead after an instruction (CP/DCE, peephole) or that no branch target
splits a candidate pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ...isa import Instruction
from ...isa import opcodes as op
from .symbolic import SymbolicProgram, SymInsn


def insn_uses(insn: Instruction) -> Set[int]:
    """Registers read, conservatively (calls read all arg registers)."""
    return set(insn.uses())


def insn_defs(insn: Instruction) -> Set[int]:
    """Registers written, including call clobbers of r1-r5."""
    defs = set(insn.defs())
    if insn.is_call:
        defs.update(op.CALLER_SAVED)
    return defs


@dataclass
class _Block:
    first: int  # position into the live-instruction list
    last: int
    succs: List[int] = field(default_factory=list)
    live_in: Set[int] = field(default_factory=set)
    live_out: Set[int] = field(default_factory=set)


class BytecodeAnalysis:
    """Liveness + CFG facts for the live instructions of a symbolic
    program.  Positions refer to indices in ``sym.insns`` (original
    logical indices), restricted to non-deleted entries."""

    def __init__(self, sym: SymbolicProgram):
        self.sym = sym
        self.live = sym.live_indices()
        self.pos_of: Dict[int, int] = {idx: p for p, idx in enumerate(self.live)}
        self.targets = sym.branch_targets()
        self._resolved_targets = self._resolve_all_targets()
        self._blocks = self._build_blocks()
        self._solve()
        self._live_after = self._per_insn_liveness()

    def _resolve_all_targets(self) -> Set[int]:
        resolved: Set[int] = set()
        for target in self.targets:
            idx = target
            while idx < len(self.sym.insns) and self.sym.insns[idx].deleted:
                idx += 1
            resolved.add(idx)
        return resolved

    # --------------------------------------------------------------- building
    def _resolve_target_pos(self, target: int) -> Optional[int]:
        idx = target
        while idx < len(self.sym.insns) and self.sym.insns[idx].deleted:
            idx += 1
        return self.pos_of.get(idx)

    def _build_blocks(self) -> List[_Block]:
        n = len(self.live)
        leaders: Set[int] = {0} if n else set()
        for target in self.targets:
            pos = self._resolve_target_pos(target)
            if pos is not None:
                leaders.add(pos)
        for p, idx in enumerate(self.live):
            insn = self.sym.insns[idx].insn
            if (insn.is_jump and not insn.is_call) or insn.is_exit:
                if p + 1 < n:
                    leaders.add(p + 1)
        ordered = sorted(leaders)
        block_of_pos = {}
        blocks: List[_Block] = []
        bounds = ordered + [n]
        for bi, start in enumerate(ordered):
            blocks.append(_Block(first=start, last=bounds[bi + 1] - 1))
            block_of_pos[start] = bi
        for bi, block in enumerate(blocks):
            idx = self.live[block.last]
            sym = self.sym.insns[idx]
            insn = sym.insn
            if insn.is_exit:
                continue
            if insn.is_jump and not insn.is_call:
                if sym.target is not None:
                    tpos = self._resolve_target_pos(sym.target)
                    if tpos is not None:
                        block.succs.append(block_of_pos[tpos])
                if insn.jmp_op != op.BPF_JA and block.last + 1 < len(self.live):
                    block.succs.append(block_of_pos[block.last + 1])
            elif block.last + 1 < len(self.live):
                block.succs.append(block_of_pos[block.last + 1])
        return blocks

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for block in reversed(self._blocks):
                out: Set[int] = set()
                for si in block.succs:
                    out |= self._blocks[si].live_in
                new_in = set(out)
                for p in range(block.last, block.first - 1, -1):
                    insn = self.sym.insns[self.live[p]].insn
                    new_in -= insn_defs(insn)
                    new_in |= insn_uses(insn)
                if out != block.live_out or new_in != block.live_in:
                    block.live_out = out
                    block.live_in = new_in
                    changed = True

    def _per_insn_liveness(self) -> List[FrozenSet[int]]:
        """live_after[p]: registers live immediately after position p."""
        result: List[Optional[FrozenSet[int]]] = [None] * len(self.live)
        for block in self._blocks:
            live = set(block.live_out)
            for p in range(block.last, block.first - 1, -1):
                result[p] = frozenset(live)
                insn = self.sym.insns[self.live[p]].insn
                live -= insn_defs(insn)
                live |= insn_uses(insn)
        return [r if r is not None else frozenset() for r in result]

    # ----------------------------------------------------------------- queries
    def reg_dead_after(self, index: int, reg: int) -> bool:
        """True when *reg* is not read after the instruction at logical
        *index* before being redefined."""
        pos = self.pos_of.get(index)
        if pos is None:
            raise KeyError(f"instruction {index} is deleted")
        return reg not in self._live_after[pos]

    def is_branch_target(self, index: int) -> bool:
        return index in self._resolved_targets

    def straightline(self, first: int, last: int) -> bool:
        """True when control cannot enter or leave (first, last] except by
        falling through: no branch targets strictly inside, and no jumps,
        calls or exits in [first, last)."""
        p1, p2 = self.pos_of.get(first), self.pos_of.get(last)
        if p1 is None or p2 is None or p2 < p1:
            return False
        for p in range(p1, p2 + 1):
            idx = self.live[p]
            if p > p1 and self.is_branch_target(idx):
                return False
            insn = self.sym.insns[idx].insn
            if p < p2 and (insn.is_jump or insn.is_exit):
                return False
        return True

    def dead_defs(self) -> List[int]:
        """Logical indices whose only effect is defining never-read,
        side-effect-free registers (includes self-moves)."""
        dead: List[int] = []
        for p, idx in enumerate(self.live):
            insn = self.sym.insns[idx].insn
            if insn.is_memory or insn.is_call or insn.is_jump or insn.is_exit:
                continue
            if insn.is_alu or insn.is_ld_imm64:
                # self-move: mov rX, rX is a no-op regardless of liveness
                if (
                    insn.is_alu
                    and insn.alu_op == op.BPF_MOV
                    and not insn.uses_imm
                    and insn.dst == insn.src
                    and insn.is_alu64
                ):
                    dead.append(idx)
                    continue
                defs = insn.defs()
                if defs and all(reg not in self._live_after[p] for reg in defs):
                    dead.append(idx)
        return dead
