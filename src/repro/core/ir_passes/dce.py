"""IR dead code elimination (the other half of Opt 1).

Removes unused side-effect-free values, unreachable blocks, write-only
allocas (stack variables that are stored to but never read — the
``a = 0; // No usage. Eliminated.`` case of paper Fig. 5), and trivial
single-predecessor phis.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ... import ir
from ...ir import instructions as iri
from ..pass_manager import IRPass


class DeadCodeEliminationPass(IRPass):
    name = "dce"

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        rewrites = 0
        changed = True
        while changed:
            changed = False
            n = self._drop_unreachable_blocks(func)
            n += self._drop_dead_values(func)
            n += self._drop_writeonly_allocas(func)
            n += self._simplify_phis(func)
            rewrites += n
            changed = n > 0
        return rewrites

    # ------------------------------------------------------------------
    @staticmethod
    def _drop_unreachable_blocks(func: ir.Function) -> int:
        reachable: Set[ir.BasicBlock] = set()
        stack: List[ir.BasicBlock] = [func.entry]
        while stack:
            block = stack.pop()
            if block in reachable:
                continue
            reachable.add(block)
            stack.extend(block.successors())
        dead = [b for b in func.blocks if b not in reachable]
        for block in dead:
            func.remove_block(block)
        return len(dead)

    @staticmethod
    def _drop_dead_values(func: ir.Function) -> int:
        removed = 0
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for insn in reversed(list(block.instructions)):
                    if insn.uses or insn.has_side_effects() or insn.is_terminator:
                        continue
                    insn.erase()
                    removed += 1
                    changed = True
        return removed

    # ------------------------------------------------------------------
    def _drop_writeonly_allocas(self, func: ir.Function) -> int:
        """Delete stores into stack slots that can never be observed."""
        removed = 0
        for block in func.blocks:
            for insn in list(block.instructions):
                if not isinstance(insn, iri.Alloca):
                    continue
                stores = self._writeonly_stores(insn)
                if stores is None:
                    continue
                for store in stores:
                    store.erase()
                    removed += 1
        return removed

    def _writeonly_stores(self, alloca: iri.Alloca):
        """If the alloca is only ever written, return all its stores."""
        stores: List[iri.IRInstruction] = []
        worklist: List[ir.Value] = [alloca]
        seen = set()
        while worklist:
            pointer = worklist.pop()
            if id(pointer) in seen:
                continue
            seen.add(id(pointer))
            for user in pointer.uses:
                if isinstance(user, iri.Store) and user.ptr is pointer and \
                        user.value is not pointer:
                    stores.append(user)
                elif isinstance(user, iri.Gep) and user.ptr is pointer:
                    worklist.append(user)
                else:
                    return None  # read, escaped, or address taken
        return stores

    # ------------------------------------------------------------------
    @staticmethod
    def _simplify_phis(func: ir.Function) -> int:
        removed = 0
        preds = func.predecessors()
        for block in func.blocks:
            if len(preds[block]) != 1:
                continue
            for phi in block.phis():
                value = phi.incoming_for(preds[block][0])
                phi.replace_all_uses_with(value)
                phi.erase()
                removed += 1
        return removed
