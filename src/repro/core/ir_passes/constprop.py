"""IR constant propagation (half of Opt 1).

Folds constant expressions, algebraic identities, constant selects and
constant conditional branches.  Works hand in hand with
:class:`~repro.core.ir_passes.dce.DeadCodeEliminationPass`, which sweeps
the defs this pass makes unused.
"""

from __future__ import annotations

from typing import Optional

from ... import ir
from ...ir import instructions as iri
from ..pass_manager import IRPass

_U64 = (1 << 64) - 1


def _fold_binop(opcode: str, lhs: ir.Constant, rhs: ir.Constant) -> Optional[int]:
    bits = lhs.type.bits
    mask = (1 << bits) - 1
    a, b = lhs.value, rhs.value

    def signed(x: int) -> int:
        return x - (1 << bits) if x >> (bits - 1) else x

    if opcode == "add":
        return (a + b) & mask
    if opcode == "sub":
        return (a - b) & mask
    if opcode == "mul":
        return (a * b) & mask
    if opcode == "udiv":
        return (a // b) & mask if b else None
    if opcode == "urem":
        return (a % b) & mask if b else None
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return (a << (b % bits)) & mask
    if opcode == "lshr":
        return (a >> (b % bits)) & mask
    if opcode == "ashr":
        return (signed(a) >> (b % bits)) & mask
    return None


_ICMP_FOLD = {
    "eq": lambda a, b, sa, sb: a == b,
    "ne": lambda a, b, sa, sb: a != b,
    "ugt": lambda a, b, sa, sb: a > b,
    "uge": lambda a, b, sa, sb: a >= b,
    "ult": lambda a, b, sa, sb: a < b,
    "ule": lambda a, b, sa, sb: a <= b,
    "sgt": lambda a, b, sa, sb: sa > sb,
    "sge": lambda a, b, sa, sb: sa >= sb,
    "slt": lambda a, b, sa, sb: sa < sb,
    "sle": lambda a, b, sa, sb: sa <= sb,
}


class ConstantPropagationPass(IRPass):
    """SSA constant folding and branch simplification."""

    name = "constprop"

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        rewrites = 0
        changed = True
        while changed:
            changed = False
            for block in list(func.blocks):
                for insn in list(block.instructions):
                    replacement = self._simplify(insn)
                    if replacement is not None:
                        insn.replace_all_uses_with(replacement)
                        insn.erase()
                        rewrites += 1
                        changed = True
            rewrites += self._fold_branches(func)
        return rewrites

    # ------------------------------------------------------------------
    def _simplify(self, insn: iri.IRInstruction) -> Optional[ir.Value]:
        if isinstance(insn, iri.BinaryOp):
            return self._simplify_binop(insn)
        if isinstance(insn, iri.ICmp):
            if isinstance(insn.lhs, ir.Constant) and isinstance(insn.rhs, ir.Constant):
                fold = _ICMP_FOLD[insn.predicate]
                result = fold(
                    insn.lhs.value, insn.rhs.value, insn.lhs.signed, insn.rhs.signed
                )
                return ir.Constant(ir.I1, int(result))
            return None
        if isinstance(insn, iri.Cast):
            return self._simplify_cast(insn)
        if isinstance(insn, iri.Select):
            cond = insn.cond
            if isinstance(cond, ir.Constant):
                return insn.operands[1] if cond.value else insn.operands[2]
            if insn.operands[1] is insn.operands[2]:
                return insn.operands[1]
            return None
        if isinstance(insn, iri.Phi):
            distinct = {id(v) for v in insn.operands}
            if len(distinct) == 1 and insn.operands:
                return insn.operands[0]
            return None
        if isinstance(insn, iri.Gep):
            offset = insn.offset
            if isinstance(offset, ir.Constant) and offset.value == 0 and \
                    insn.ptr.type == insn.type:
                return insn.ptr
            return None
        return None

    def _simplify_binop(self, insn: iri.BinaryOp) -> Optional[ir.Value]:
        lhs, rhs = insn.lhs, insn.rhs
        if isinstance(lhs, ir.Constant) and isinstance(rhs, ir.Constant):
            folded = _fold_binop(insn.opcode, lhs, rhs)
            if folded is not None:
                return ir.Constant(insn.type, folded)
            return None
        # canonical identities
        if isinstance(rhs, ir.Constant):
            v = rhs.value
            if v == 0 and insn.opcode in ("add", "sub", "or", "xor", "shl",
                                          "lshr", "ashr"):
                return lhs
            if v == 1 and insn.opcode in ("mul", "udiv"):
                return lhs
            if v == 0 and insn.opcode in ("mul", "and"):
                return ir.Constant(insn.type, 0)
            if insn.opcode == "and" and v == insn.type.mask:
                return lhs
        if isinstance(lhs, ir.Constant):
            v = lhs.value
            if v == 0 and insn.opcode in ("add", "or", "xor"):
                return rhs
            if v == 0 and insn.opcode in ("mul", "and", "udiv", "urem",
                                          "shl", "lshr", "ashr"):
                return ir.Constant(insn.type, 0)
            if v == 1 and insn.opcode == "mul":
                return rhs
        if lhs is rhs:
            if insn.opcode in ("sub", "xor"):
                return ir.Constant(insn.type, 0)
            if insn.opcode in ("and", "or"):
                return lhs
        return None

    @staticmethod
    def _simplify_cast(insn: iri.Cast) -> Optional[ir.Value]:
        value = insn.value
        if insn.type == value.type and insn.opcode in ("zext", "sext", "trunc",
                                                       "bitcast"):
            return value
        if not isinstance(value, ir.Constant):
            return None
        if not isinstance(insn.type, ir.IntType):
            return None
        if insn.opcode in ("zext", "trunc", "bitcast"):
            return ir.Constant(insn.type, value.value)
        if insn.opcode == "sext":
            return ir.Constant(insn.type, value.signed)
        return None

    # ------------------------------------------------------------------
    def _fold_branches(self, func: ir.Function) -> int:
        rewrites = 0
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, iri.CondBr):
                continue
            if not isinstance(term.cond, ir.Constant):
                continue
            taken = term.if_true if term.cond.value else term.if_false
            dead = term.if_false if term.cond.value else term.if_true
            term.erase()
            block.append(iri.Br(taken))
            if dead is not taken:
                for phi in dead.phis():
                    phi.remove_incoming(block)
            rewrites += 1
        return rewrites
