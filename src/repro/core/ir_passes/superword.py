"""IR-tier superword level merging (Opt 2, SLM).

Merges pairs of adjacent narrow constant stores into one store of twice
the width when the merged access is provably aligned.  Works on
constant-offset addresses (stack slots, context scratch), the dominant
case in real programs; it runs after DAO so ``align`` attributes are
already maximal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ... import ir
from ...ir import instructions as iri
from ..pass_manager import IRPass


def _resolve(ptr: ir.Value) -> Optional[Tuple[int, ir.Value, int]]:
    """(base id, base value, const byte offset), or None if dynamic."""
    offset = 0
    current = ptr
    while True:
        if isinstance(current, iri.Gep):
            if not isinstance(current.offset, ir.Constant):
                return None
            offset += current.offset.signed
            current = current.ptr
        elif isinstance(current, iri.Cast) and current.opcode == "bitcast":
            current = current.value
        else:
            break
    return id(current), current, offset


class SuperwordMergeIRPass(IRPass):
    name = "slm-ir"

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        rewrites = 0
        for block in func.blocks:
            changed = True
            while changed:
                changed = False
                if self._merge_in_block(func, block):
                    rewrites += 1
                    changed = True
        return rewrites

    def _merge_in_block(self, func: ir.Function, block: ir.BasicBlock) -> bool:
        insns = block.instructions
        for i, first in enumerate(insns):
            if not self._is_const_store(first):
                continue
            second_index = self._find_partner(insns, i)
            if second_index is None:
                continue
            if self._merge(func, block, i, second_index):
                return True
        return False

    @staticmethod
    def _is_const_store(insn) -> bool:
        return (
            isinstance(insn, iri.Store)
            and isinstance(insn.value, ir.Constant)
            and isinstance(insn.value.type, ir.IntType)
            and insn.value.type.size_bytes < 8
            and _resolve(insn.ptr) is not None
        )

    def _find_partner(self, insns: List, i: int) -> Optional[int]:
        first = insns[i]
        size = first.value.type.size_bytes
        base_id, _, off = _resolve(first.ptr)
        for j in range(i + 1, len(insns)):
            insn = insns[j]
            if isinstance(insn, (iri.AtomicRMW, iri.Call)):
                return None
            if isinstance(insn, iri.Load):
                resolved = _resolve(insn.ptr)
                if resolved is None or resolved[0] == base_id:
                    return None
                continue
            if not isinstance(insn, iri.Store):
                if insn.is_terminator:
                    return None
                continue
            if not self._is_const_store(insn):
                # an unknown store could alias: stop the search
                resolved = _resolve(insn.ptr)
                if resolved is None or resolved[0] == base_id:
                    return None
                continue
            other_base, _, other_off = _resolve(insn.ptr)
            if other_base != base_id:
                continue
            if insn.value.type.size_bytes != size:
                return None
            if other_off in (off - size, off + size):
                return j
            if abs(other_off - off) < size:
                return None  # overlapping store
        return None

    def _merge(self, func: ir.Function, block: ir.BasicBlock, i: int,
               j: int) -> bool:
        first, second = block.instructions[i], block.instructions[j]
        size = first.value.type.size_bytes
        _, base_value, first_off = _resolve(first.ptr)
        _, __, second_off = _resolve(second.ptr)
        lo, lo_off = (first, first_off) if first_off < second_off else (
            second, second_off)
        hi = second if lo is first else first

        merged_size = size * 2
        if lo_off % merged_size:
            return False
        # alignment of the merged access must be provable
        if max(first.align, second.align) < size:
            return False
        lo_base_align = self._base_align(base_value)
        if min(lo_base_align, _pow2(lo_off)) < merged_size:
            return False

        bits = size * 8
        combined = (lo.value.value & ((1 << bits) - 1)) | (
            (hi.value.value & ((1 << bits) - 1)) << bits
        )
        wide = ir.int_type(bits * 2)
        offset_const = ir.Constant(ir.I64, lo_off)
        gep = iri.Gep(base_value, offset_const, ir.pointer(wide),
                      name=func.next_name())
        store = iri.Store(ir.Constant(wide, combined), gep, align=merged_size)

        index = block.instructions.index(lo)
        block.insert(index, gep)
        block.insert(index + 1, store)
        first.erase()
        second.erase()
        return True

    @staticmethod
    def _base_align(value: ir.Value) -> int:
        if isinstance(value, iri.Alloca):
            return value.align
        if isinstance(value, ir.Argument):
            return 8
        if isinstance(value, iri.Call) and value.callee == "map_lookup_elem":
            return 8
        return 1


def _pow2(offset: int) -> int:
    if offset == 0:
        return 16
    offset = abs(offset)
    align = 1
    while offset % (align * 2) == 0 and align < 16:
        align *= 2
    return align
