"""Data alignment optimization (Opt 3, DAO) — the paper's biggest win.

LLVM frequently tags loads/stores ``align 1`` (packed kernel structs,
lowered memcpys), forcing the eBPF backend to assemble wide values
byte-by-byte (paper Fig. 6).  Merlin "calculates the offset of every
pointer to infer and adjust the maximum possible alignment for memory
instructions": a pointer's provable alignment is propagated from its
base (alloca alignment, ABI-aligned context/map pointers) through
constant-offset GEPs, and each access's ``align`` is raised to it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ... import ir
from ...ir import instructions as iri
from ..pass_manager import IRPass

#: alignment the kernel ABI guarantees for pointers of unknown provenance
CTX_ALIGN = 8
MAP_VALUE_ALIGN = 8
PACKET_ALIGN = 2  # NET_IP_ALIGN leaves packet data 2-byte aligned
DEFAULT_ALIGN = 1


def _pow2_of(offset: int) -> int:
    """Largest power of two dividing *offset* (capped at 8); 8 for 0."""
    if offset == 0:
        return 8
    offset = abs(offset)
    align = 1
    while offset % (align * 2) == 0 and align < 8:
        align *= 2
    return align


class AlignmentInferencePass(IRPass):
    """Raise ``align`` attributes to the provable pointer alignment."""

    name = "dao"

    def __init__(self, ctx_align: int = CTX_ALIGN,
                 packet_align: int = PACKET_ALIGN):
        self.ctx_align = ctx_align
        self.packet_align = packet_align
        self.alignments_before: Dict[str, float] = {}

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        cache: Dict[int, int] = {}
        rewrites = 0
        for block in func.blocks:
            for insn in block.instructions:
                if isinstance(insn, (iri.Load, iri.Store)):
                    pointee = insn.ptr.type.pointee  # type: ignore[attr-defined]
                    size = pointee.size_bytes
                    inferred = min(self._align_of(insn.ptr, cache), 8)
                    if inferred > insn.align:
                        insn.align = min(inferred, max(size, 1))
                        rewrites += 1
                elif isinstance(insn, iri.AtomicRMW):
                    inferred = min(self._align_of(insn.ptr, cache), 8)
                    if inferred > insn.align:
                        insn.align = inferred
                        rewrites += 1
        return rewrites

    # ------------------------------------------------------------------
    def _align_of(self, pointer: ir.Value, cache: Dict[int, int]) -> int:
        key = id(pointer)
        if key in cache:
            return cache[key]
        cache[key] = DEFAULT_ALIGN  # cycle guard (phis)
        result = self._compute_align(pointer, cache)
        cache[key] = result
        return result

    def _compute_align(self, pointer: ir.Value, cache: Dict[int, int]) -> int:
        if isinstance(pointer, iri.Alloca):
            return pointer.align
        if isinstance(pointer, ir.Argument):
            # program context pointers are ABI-aligned by the kernel
            return self.ctx_align
        if isinstance(pointer, iri.Gep):
            base = self._align_of(pointer.ptr, cache)
            offset = pointer.offset
            if isinstance(offset, ir.Constant):
                return min(base, _pow2_of(offset.signed))
            return DEFAULT_ALIGN
        if isinstance(pointer, iri.Call):
            if pointer.callee in ("map_lookup_elem",):
                return MAP_VALUE_ALIGN
            return DEFAULT_ALIGN
        if isinstance(pointer, iri.Cast):
            if pointer.opcode == "inttoptr":
                # packet data pointers come from ctx fields
                return self.packet_align
            if pointer.opcode == "bitcast":
                return self._align_of(pointer.value, cache)
            return DEFAULT_ALIGN
        if isinstance(pointer, iri.Phi):
            incoming = [self._align_of(v, cache) for v, _ in pointer.incoming()]
            return min(incoming) if incoming else DEFAULT_ALIGN
        if isinstance(pointer, iri.Select):
            return min(
                self._align_of(pointer.operands[1], cache),
                self._align_of(pointer.operands[2], cache),
            )
        return DEFAULT_ALIGN


def infer_pointer_alignment(pointer: ir.Value) -> int:
    """Provable alignment of one pointer value (stateless helper for
    other passes, e.g. macro-op fusion checking atomics feasibility)."""
    return AlignmentInferencePass()._align_of(pointer, {})


def average_alignment(func: ir.Function) -> float:
    """Mean ``align`` across memory instructions (paper §5.6 reports
    3.85 -> 4.81 for Sysdig)."""
    aligns = [
        insn.align
        for block in func.blocks
        for insn in block.instructions
        if isinstance(insn, (iri.Load, iri.Store))
    ]
    return sum(aligns) / len(aligns) if aligns else 0.0
