"""Macro-op fusion (Opt 4, MoF): RMW consolidation into ``atomicrmw``.

Paper Fig. 7: a load / modify / store triple on one address::

    %131 = load i64, ptr %128, align 8
    %132 = add i64 %131, %130
    store i64 %132, ptr %128, align 8

becomes a single instruction the backend lowers to eBPF ``xadd``::

    %132 = atomicrmw add ptr %128, i64 %130 monotonic, align 8

Fusion requires: the load feeds only the modify, the modify feeds only
the store, both access the same address, the width is 32/64-bit and
naturally aligned (eBPF atomics demand it), and nothing between the
load and the store can write memory.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ... import ir
from ...ir import instructions as iri
from ..pass_manager import IRPass

FUSIBLE_OPS = {"add", "and", "or", "xor"}


def _resolve(ptr: ir.Value) -> Tuple[int, int]:
    """(identity of base value, accumulated constant offset)."""
    offset = 0
    current = ptr
    while True:
        if isinstance(current, iri.Gep) and isinstance(current.offset,
                                                       ir.Constant):
            offset += current.offset.signed
            current = current.ptr
        elif isinstance(current, iri.Cast) and current.opcode == "bitcast":
            current = current.value
        else:
            break
    return id(current), offset


def _same_address(a: ir.Value, b: ir.Value) -> bool:
    return a is b or _resolve(a) == _resolve(b)


class MacroOpFusionPass(IRPass):
    name = "macro-fusion"

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        rewrites = 0
        for block in func.blocks:
            changed = True
            while changed:
                changed = False
                for store in list(block.instructions):
                    if not isinstance(store, iri.Store):
                        continue
                    triple = self._match(block, store)
                    if triple is None:
                        continue
                    load, modify = triple
                    self._fuse(block, load, modify, store)
                    rewrites += 1
                    changed = True
                    break
        return rewrites

    # ------------------------------------------------------------------
    def _match(
        self, block: ir.BasicBlock, store: iri.Store
    ) -> Optional[Tuple[iri.Load, iri.BinaryOp]]:
        modify = store.value
        if not isinstance(modify, iri.BinaryOp) or modify.opcode not in FUSIBLE_OPS:
            return None
        if len(modify.uses) != 1 or modify.parent is not block:
            return None
        load = modify.lhs if isinstance(modify.lhs, iri.Load) else modify.rhs
        if not isinstance(load, iri.Load) or load.parent is not block:
            return None
        if len(load.uses) != 1:
            return None
        # for non-commutative shapes the load must be the lhs
        if load is modify.rhs and modify.opcode not in ("add", "and", "or", "xor"):
            return None
        if not _same_address(load.ptr, store.ptr):
            return None
        size = load.type.size_bytes
        if size not in (4, 8):
            return None  # eBPF atomics are 32/64-bit only
        from .alignment import infer_pointer_alignment

        align = max(load.align, store.align,
                    infer_pointer_alignment(store.ptr))
        if align < size:
            return None  # atomics require natural alignment
        if not self._no_clobbers_between(block, load, store):
            return None
        return load, modify

    @staticmethod
    def _no_clobbers_between(block: ir.BasicBlock, load: iri.Load,
                             store: iri.Store) -> bool:
        insns = block.instructions
        try:
            start = insns.index(load)
            end = insns.index(store)
        except ValueError:
            return False
        if end <= start:
            return False
        for insn in insns[start + 1 : end]:
            if isinstance(insn, (iri.Store, iri.AtomicRMW, iri.Call)):
                return False
        return True

    @staticmethod
    def _fuse(block: ir.BasicBlock, load: iri.Load, modify: iri.BinaryOp,
              store: iri.Store) -> None:
        from .alignment import infer_pointer_alignment

        other = modify.rhs if modify.lhs is load else modify.lhs
        rmw = iri.AtomicRMW(
            modify.opcode,
            store.ptr,
            other,
            align=max(load.align, store.align,
                      infer_pointer_alignment(store.ptr)),
            name=modify.name or "rmw",
        )
        index = block.instructions.index(store)
        store.erase()
        block.insert(index, rmw)
        modify.erase()
        load.erase()
