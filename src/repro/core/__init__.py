"""Merlin: the paper's multi-tier eBPF optimization framework."""

from .bytecode_passes.analysis import BytecodeAnalysis, insn_defs, insn_uses
from .bytecode_passes.compaction import CodeCompactionPass
from .bytecode_passes.peephole import PeepholePass
from .bytecode_passes.store_imm import StoreImmediatePass
from .bytecode_passes.superword import SuperwordMergePass
from .bytecode_passes.symbolic import RelocationError, SymbolicProgram, SymInsn
from .ir_passes.alignment import AlignmentInferencePass, average_alignment
from .ir_passes.constprop import ConstantPropagationPass
from .ir_passes.dce import DeadCodeEliminationPass
from .ir_passes.macro_fusion import MacroOpFusionPass
from .ir_passes.superword import SuperwordMergeIRPass
from .batch import BatchReport, CompileJob, compile_many, default_jobs, optimize_many
from .pass_manager import BytecodePass, IRPass, PassStats
from .pipeline import (
    ALL_OPTIMIZERS,
    MerlinPipeline,
    MerlinReport,
    OPTIMIZER_NAMES,
    compile_with_merlin,
)
from .superopt import SuperoptSpec, SuperoptimizerPass

__all__ = [
    "BytecodeAnalysis",
    "insn_defs",
    "insn_uses",
    "CodeCompactionPass",
    "PeepholePass",
    "StoreImmediatePass",
    "SuperwordMergePass",
    "RelocationError",
    "SymbolicProgram",
    "SymInsn",
    "AlignmentInferencePass",
    "average_alignment",
    "ConstantPropagationPass",
    "DeadCodeEliminationPass",
    "MacroOpFusionPass",
    "SuperwordMergeIRPass",
    "BatchReport",
    "CompileJob",
    "compile_many",
    "default_jobs",
    "optimize_many",
    "BytecodePass",
    "IRPass",
    "PassStats",
    "ALL_OPTIMIZERS",
    "MerlinPipeline",
    "MerlinReport",
    "OPTIMIZER_NAMES",
    "compile_with_merlin",
    "SuperoptSpec",
    "SuperoptimizerPass",
]
