"""The Merlin pipeline: IR refinement + bytecode refinement.

Mirrors the paper's Fig. 1 integration: IR passes run after clang's own
optimizations (our frontend) and before llc (our backend); bytecode
passes run on the final program right before it would be loaded via
``bpf()``.  Merlin never touches the verifier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import CompilationCache

from .. import ir
from ..codegen import compile_function
from ..isa import BpfProgram, ProgramType
from ..verifier import DEFAULT_KERNEL, KernelConfig, VerificationResult, verify
from .bytecode_passes.compaction import CodeCompactionPass
from .bytecode_passes.peephole import PeepholePass
from .bytecode_passes.store_imm import StoreImmediatePass
from .bytecode_passes.superword import SuperwordMergePass
from .ir_passes.alignment import AlignmentInferencePass
from .ir_passes.constprop import ConstantPropagationPass
from .ir_passes.dce import DeadCodeEliminationPass
from .ir_passes.macro_fusion import MacroOpFusionPass
from .ir_passes.superword import SuperwordMergeIRPass
from .pass_manager import BytecodePass, IRPass, PassStats

#: canonical short names used throughout the evaluation (paper Fig. 13)
OPTIMIZER_NAMES = ("dao", "mof", "dep", "cc", "po", "slm", "cpdce")
ALL_OPTIMIZERS = frozenset(OPTIMIZER_NAMES)


@dataclass
class MerlinReport:
    """Everything Merlin did to one program."""

    name: str
    ni_original: int
    ni_optimized: int
    pass_stats: List[PassStats] = field(default_factory=list)
    verification: Optional[VerificationResult] = None
    compile_seconds: float = 0.0
    cached: bool = False  # served from a CompilationCache, not recompiled
    #: the content-addressed cache key this result lives under (None
    #: when compiled without a cache); lets a service memoize
    #: source-text -> key and skip the frontend on repeat requests
    cache_key: Optional[str] = None
    #: per-pass-application equivalence certificates
    #: (:class:`repro.tv.Certificate`), populated by ``validate=`` modes
    certificates: List = field(default_factory=list)

    @property
    def ni_reduction(self) -> float:
        """Fraction of instructions removed (the paper's headline metric)."""
        if not self.ni_original:
            return 0.0
        return 1.0 - self.ni_optimized / self.ni_original

    def time_of(self, pass_name: str) -> float:
        return sum(s.time_seconds for s in self.pass_stats if s.name == pass_name)

    def rewrites_of(self, pass_name: str) -> int:
        return sum(s.rewrites for s in self.pass_stats if s.name == pass_name)


class MerlinPipeline:
    """Configurable multi-tier optimizer.

    ``enabled`` selects optimizers by short name: ``dao`` (data
    alignment), ``mof`` (macro-op fusion), ``cpdce`` (constant
    propagation + DCE, both tiers), ``slm`` (superword merging, both
    tiers), ``cc`` (code compaction), ``po`` (peephole).  ``dep`` (the
    bytecode dependency analysis) is implied by any bytecode pass.
    """

    def __init__(
        self,
        kernel: KernelConfig = DEFAULT_KERNEL,
        enabled: Optional[Iterable[str]] = None,
        verify_after: bool = False,
    ):
        self.kernel = kernel
        self.enabled = frozenset(enabled) if enabled is not None else ALL_OPTIMIZERS
        unknown = self.enabled - ALL_OPTIMIZERS
        if unknown:
            raise ValueError(f"unknown optimizers: {sorted(unknown)}")
        self.verify_after = verify_after

    # ------------------------------------------------------------------
    def ir_passes(self) -> List[IRPass]:
        passes: List[IRPass] = []
        if "cpdce" in self.enabled:
            passes.append(ConstantPropagationPass())
            passes.append(DeadCodeEliminationPass())
        if "dao" in self.enabled:
            # runs before fusion/merging: both need the proven alignments
            passes.append(AlignmentInferencePass())
        if "mof" in self.enabled:
            passes.append(MacroOpFusionPass())
        if "slm" in self.enabled:
            passes.append(SuperwordMergeIRPass())
        if "cpdce" in self.enabled:
            passes.append(DeadCodeEliminationPass())
        return passes

    def bytecode_passes(self, mcpu: str) -> List[BytecodePass]:
        passes: List[BytecodePass] = []
        if "cpdce" in self.enabled:
            passes.append(StoreImmediatePass())
        if "slm" in self.enabled:
            passes.append(SuperwordMergePass())
        if "cc" in self.enabled:
            # Gate on the *loading kernel* only: a v2-compiled program may
            # still gain ALU32 instructions when the kernel accepts them —
            # the pass then promotes program.mcpu to "v3" (compaction.py).
            passes.append(CodeCompactionPass(allow_alu32=self.kernel.supports_v3))
        if "po" in self.enabled:
            passes.append(PeepholePass())
        if "cpdce" in self.enabled:
            passes.append(StoreImmediatePass())  # sweep newly dead defs
        return passes

    # ------------------------------------------------------------------
    def optimize_ir(self, func: ir.Function,
                    module: Optional[ir.Module] = None,
                    recorder=None) -> List[PassStats]:
        stats = []
        for p in self.ir_passes():
            if recorder is not None:
                p.recorder = recorder
                stats.append(p.run_witnessed(func, module))
            else:
                stats.append(p.run_timed(func, module))
        return stats

    def optimize_bytecode(self, program: BpfProgram,
                          recorder=None) -> List[PassStats]:
        stats = []
        for p in self.bytecode_passes(program.mcpu):
            if recorder is not None:
                p.recorder = recorder
            stats.append(p.run_timed(program))
        return stats

    def compile(
        self,
        func: ir.Function,
        module: Optional[ir.Module] = None,
        prog_type: ProgramType = ProgramType.XDP,
        mcpu: str = "v2",
        ctx_size: int = 64,
        cache: Optional["CompilationCache"] = None,
        validate=False,
        pgo=None,
        superopt=None,
    ) -> Tuple[BpfProgram, MerlinReport]:
        """Full pipeline: baseline compile for reference, IR refinement,
        re-compile, bytecode refinement, optional superoptimization,
        optional profile-guided layout, optional verification.

        ``pgo`` enables the BOLT-style layout tier: pass a
        :class:`repro.core.bytecode_passes.layout.PgoSpec` (or ``True``
        for the defaults) and the optimized program is executed on a
        deterministic generated workload to collect per-branch profiles,
        then hot/cold-split, straightened, and chain-reordered.  The
        spec's fingerprint is folded into the cache key, and under
        ``validate`` every re-layout carries its own certified witness.

        ``superopt`` enables the caching windowed superoptimizer tier
        (:mod:`repro.core.superopt`): pass a
        :class:`~repro.core.superopt.SuperoptSpec` (or ``True`` for the
        defaults) and every straightline window of the Merlin-optimized
        bytecode is searched for a certified smaller equivalent.  It
        runs after the hand-written passes and before layout; *cache*
        doubles as the shared rewrite memo, so discoveries replay
        across programs.  The spec's fingerprint is folded into the
        cache key.

        ``compile`` is pure: the IR passes run on a private clone, so the
        caller's *func*/*module* are never mutated and a second call
        yields an identical report.  With *cache*, the result is looked
        up / stored under the content-addressed key of the canonical IR
        text plus the full pipeline configuration.

        ``validate`` turns on translation validation: every pass
        application reports a rewrite witness and the :mod:`repro.tv`
        validator certifies it.  Certificates land in
        ``report.certificates``; with ``validate=True`` a non-certified
        application raises
        :class:`repro.tv.TranslationValidationError`, while
        ``validate="report"`` only records the verdicts.

        Validation composes with *cache*: certificates are stored in
        the cached report (under a key that folds in the validate
        flag, so validated and unvalidated entries never mix), and a
        warm validated request replays the stored verdicts instead of
        re-certifying — with ``validate=True`` a cached refuted
        certificate still raises, exactly like a fresh one.
        """
        pgo = self._pgo_spec(pgo)
        superopt = self._superopt_spec(superopt)
        key = None
        if cache is not None:
            key = cache.key_for_function(
                func, module, enabled=self.enabled, kernel=self.kernel,
                prog_type=prog_type, mcpu=mcpu, ctx_size=ctx_size,
                verify_after=self.verify_after, validate=bool(validate),
                pgo=pgo.fingerprint() if pgo is not None else None,
                superopt=(superopt.fingerprint()
                          if superopt is not None else None),
            )
            hit = cache.get(key)
            if hit is not None:
                program, report = hit
                report.cached = True
                report.cache_key = key
                if validate is True:
                    from ..tv import raise_on_alarm

                    raise_on_alarm(report.certificates)
                return program, report

        recorder = None
        if validate:
            from ..tv import WitnessRecorder

            recorder = WitnessRecorder()

        start = time.perf_counter()
        baseline = compile_function(func, module, prog_type=prog_type,
                                    mcpu=mcpu, ctx_size=ctx_size)
        # IR passes rewrite in place: run them on a clone so the caller's
        # function stays pristine.  Cloning goes through the textual IR
        # (the same lossless round-trip the fuzzer relies on) — a
        # deepcopy would recurse along arbitrarily long SSA use-def
        # chains.  The module is never mutated by IR passes.
        work_func = ir.parse_function(ir.print_function(func))
        stats = self.optimize_ir(work_func, module, recorder=recorder)
        program = compile_function(work_func, module, prog_type=prog_type,
                                   mcpu=mcpu, ctx_size=ctx_size)
        stats += self.optimize_bytecode(program, recorder=recorder)
        if superopt is not None:
            stats.append(self._apply_superopt(program, superopt, memo=cache,
                                              recorder=recorder))
        if pgo is not None:
            stats.append(self._apply_layout(program, pgo, recorder=recorder))
        elapsed = time.perf_counter() - start

        report = MerlinReport(
            name=func.name,
            ni_original=baseline.ni,
            ni_optimized=program.ni,
            pass_stats=stats,
            compile_seconds=elapsed,
            cache_key=key,
        )
        if recorder is not None:
            report.certificates = self._certify(
                recorder, module=module, prog_type=prog_type, mcpu=mcpu,
                ctx_size=ctx_size)
            if validate is True:
                from ..tv import raise_on_alarm

                raise_on_alarm(report.certificates)
        if self.verify_after:
            report.verification = verify(program, self.kernel)
        if cache is not None and key is not None:
            cache.put(key, program, report)
        return program, report

    @staticmethod
    def _pgo_spec(pgo):
        """Normalize the ``pgo`` argument: ``None``/``False`` -> off,
        ``True`` -> default spec, mapping -> parsed spec."""
        if pgo is None or pgo is False:
            return None
        from .bytecode_passes.layout import PgoSpec

        if pgo is True:
            return PgoSpec()
        if isinstance(pgo, dict):
            return PgoSpec.from_dict(pgo)
        return pgo

    @staticmethod
    def _superopt_spec(superopt):
        """Normalize the ``superopt`` argument: ``None``/``False`` ->
        off, ``True`` -> default spec, mapping -> parsed spec."""
        if superopt is None or superopt is False:
            return None
        from .superopt import SuperoptSpec

        if superopt is True:
            return SuperoptSpec()
        if isinstance(superopt, dict):
            return SuperoptSpec.from_dict(superopt)
        return superopt

    def _apply_superopt(self, program: BpfProgram, spec, memo=None,
                        recorder=None) -> PassStats:
        """Run the superoptimizer tier over the Merlin-optimized
        bytecode.  *memo* is the shared rewrite-memo store (normally
        the compilation cache itself)."""
        from .superopt import SuperoptimizerPass

        superopt = SuperoptimizerPass(spec, memo=memo)
        if recorder is not None:
            superopt.recorder = recorder
        stats = superopt.run_timed(program)
        stats.details.update(superopt.counters)
        return stats

    def _apply_layout(self, program: BpfProgram, spec,
                      recorder=None) -> PassStats:
        """Run the profile-guided layout tier: collect a branch profile
        on the generated workload, then reorder/straighten in place."""
        from .bytecode_passes.layout import (ProfileGuidedLayoutPass,
                                             collect_profile)

        start = time.perf_counter()
        profile = collect_profile(program, spec=spec)
        layout = ProfileGuidedLayoutPass(profile)
        if recorder is not None:
            layout.recorder = recorder
        stats = layout.run_timed(program)
        stats.time_seconds = time.perf_counter() - start  # include profiling
        stats.details["profiled_runs"] = profile.entries
        stats.details["profiled_faults"] = profile.faults
        return stats

    def _certify(self, recorder, module=None, prog_type=None,
                 mcpu: str = "v2", ctx_size: int = 64):
        from ..tv import TranslationValidator

        validator = TranslationValidator()
        return validator.validate_all(
            recorder.witnesses, module=module, prog_type=prog_type,
            mcpu=mcpu, ctx_size=ctx_size)

    def compile_many(self, batch, jobs: int = 1, cache=None):
        """Batch-compile :class:`repro.core.batch.CompileJob` sources,
        fanning out over *jobs* worker processes (see
        :func:`repro.core.batch.compile_many`)."""
        from .batch import compile_many as _compile_many

        return _compile_many(self, batch, jobs=jobs, cache=cache)

    def optimize_many(self, programs, jobs: int = 1):
        """Batch bytecode-tier optimization of compiled programs."""
        from .batch import optimize_many as _optimize_many

        return _optimize_many(self, programs, jobs=jobs)

    def optimize_program(self, program: BpfProgram, validate=False,
                         pgo=None, superopt=None,
                         cache=None) -> Tuple[BpfProgram, MerlinReport]:
        """Bytecode tier only, for programs without IR (assembled code).

        ``validate``, ``pgo`` and ``superopt`` work as in
        :meth:`compile` (bytecode-tier witnesses only); *cache* is only
        used as the superopt rewrite-memo store here."""
        pgo = self._pgo_spec(pgo)
        superopt = self._superopt_spec(superopt)
        recorder = None
        if validate:
            from ..tv import WitnessRecorder

            recorder = WitnessRecorder()
        start = time.perf_counter()
        optimized = program.copy()
        ni_before = program.ni
        stats = self.optimize_bytecode(optimized, recorder=recorder)
        if superopt is not None:
            stats.append(self._apply_superopt(optimized, superopt,
                                              memo=cache,
                                              recorder=recorder))
        if pgo is not None:
            stats.append(self._apply_layout(optimized, pgo,
                                            recorder=recorder))
        report = MerlinReport(
            name=program.name,
            ni_original=ni_before,
            ni_optimized=optimized.ni,
            pass_stats=stats,
            compile_seconds=time.perf_counter() - start,
        )
        if recorder is not None:
            report.certificates = self._certify(recorder, mcpu=program.mcpu)
            if validate is True:
                from ..tv import raise_on_alarm

                raise_on_alarm(report.certificates)
        if self.verify_after:
            report.verification = verify(optimized, self.kernel)
        return optimized, report


def compile_with_merlin(
    func: ir.Function,
    module: Optional[ir.Module] = None,
    kernel: KernelConfig = DEFAULT_KERNEL,
    **kwargs,
) -> Tuple[BpfProgram, MerlinReport]:
    """One-call convenience API: Merlin with every optimizer enabled."""
    return MerlinPipeline(kernel=kernel).compile(func, module, **kwargs)
