"""The Merlin pipeline: IR refinement + bytecode refinement.

Mirrors the paper's Fig. 1 integration: IR passes run after clang's own
optimizations (our frontend) and before llc (our backend); bytecode
passes run on the final program right before it would be loaded via
``bpf()``.  Merlin never touches the verifier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import ir
from ..codegen import compile_function
from ..isa import BpfProgram, ProgramType
from ..verifier import DEFAULT_KERNEL, KernelConfig, VerificationResult, verify
from .bytecode_passes.compaction import CodeCompactionPass
from .bytecode_passes.peephole import PeepholePass
from .bytecode_passes.store_imm import StoreImmediatePass
from .bytecode_passes.superword import SuperwordMergePass
from .ir_passes.alignment import AlignmentInferencePass
from .ir_passes.constprop import ConstantPropagationPass
from .ir_passes.dce import DeadCodeEliminationPass
from .ir_passes.macro_fusion import MacroOpFusionPass
from .ir_passes.superword import SuperwordMergeIRPass
from .pass_manager import BytecodePass, IRPass, PassStats

#: canonical short names used throughout the evaluation (paper Fig. 13)
OPTIMIZER_NAMES = ("dao", "mof", "dep", "cc", "po", "slm", "cpdce")
ALL_OPTIMIZERS = frozenset(OPTIMIZER_NAMES)


@dataclass
class MerlinReport:
    """Everything Merlin did to one program."""

    name: str
    ni_original: int
    ni_optimized: int
    pass_stats: List[PassStats] = field(default_factory=list)
    verification: Optional[VerificationResult] = None
    compile_seconds: float = 0.0

    @property
    def ni_reduction(self) -> float:
        """Fraction of instructions removed (the paper's headline metric)."""
        if not self.ni_original:
            return 0.0
        return 1.0 - self.ni_optimized / self.ni_original

    def time_of(self, pass_name: str) -> float:
        return sum(s.time_seconds for s in self.pass_stats if s.name == pass_name)

    def rewrites_of(self, pass_name: str) -> int:
        return sum(s.rewrites for s in self.pass_stats if s.name == pass_name)


class MerlinPipeline:
    """Configurable multi-tier optimizer.

    ``enabled`` selects optimizers by short name: ``dao`` (data
    alignment), ``mof`` (macro-op fusion), ``cpdce`` (constant
    propagation + DCE, both tiers), ``slm`` (superword merging, both
    tiers), ``cc`` (code compaction), ``po`` (peephole).  ``dep`` (the
    bytecode dependency analysis) is implied by any bytecode pass.
    """

    def __init__(
        self,
        kernel: KernelConfig = DEFAULT_KERNEL,
        enabled: Optional[Iterable[str]] = None,
        verify_after: bool = False,
    ):
        self.kernel = kernel
        self.enabled = frozenset(enabled) if enabled is not None else ALL_OPTIMIZERS
        unknown = self.enabled - ALL_OPTIMIZERS
        if unknown:
            raise ValueError(f"unknown optimizers: {sorted(unknown)}")
        self.verify_after = verify_after

    # ------------------------------------------------------------------
    def ir_passes(self) -> List[IRPass]:
        passes: List[IRPass] = []
        if "cpdce" in self.enabled:
            passes.append(ConstantPropagationPass())
            passes.append(DeadCodeEliminationPass())
        if "dao" in self.enabled:
            # runs before fusion/merging: both need the proven alignments
            passes.append(AlignmentInferencePass())
        if "mof" in self.enabled:
            passes.append(MacroOpFusionPass())
        if "slm" in self.enabled:
            passes.append(SuperwordMergeIRPass())
        if "cpdce" in self.enabled:
            passes.append(DeadCodeEliminationPass())
        return passes

    def bytecode_passes(self, mcpu: str) -> List[BytecodePass]:
        passes: List[BytecodePass] = []
        if "cpdce" in self.enabled:
            passes.append(StoreImmediatePass())
        if "slm" in self.enabled:
            passes.append(SuperwordMergePass())
        if "cc" in self.enabled:
            allow = self.kernel.supports_v3 and mcpu == "v3"
            passes.append(CodeCompactionPass(allow_alu32=allow))
        if "po" in self.enabled:
            passes.append(PeepholePass())
        if "cpdce" in self.enabled:
            passes.append(StoreImmediatePass())  # sweep newly dead defs
        return passes

    # ------------------------------------------------------------------
    def optimize_ir(self, func: ir.Function,
                    module: Optional[ir.Module] = None) -> List[PassStats]:
        return [p.run_timed(func, module) for p in self.ir_passes()]

    def optimize_bytecode(self, program: BpfProgram) -> List[PassStats]:
        return [p.run_timed(program) for p in self.bytecode_passes(program.mcpu)]

    def compile(
        self,
        func: ir.Function,
        module: Optional[ir.Module] = None,
        prog_type: ProgramType = ProgramType.XDP,
        mcpu: str = "v2",
        ctx_size: int = 64,
    ) -> Tuple[BpfProgram, MerlinReport]:
        """Full pipeline: baseline compile for reference, IR refinement,
        re-compile, bytecode refinement, optional verification.

        *func* is mutated by the IR passes (compile the pristine function
        first if you need the baseline program object too).
        """
        start = time.perf_counter()
        baseline = compile_function(func, module, prog_type=prog_type,
                                    mcpu=mcpu, ctx_size=ctx_size)
        stats = self.optimize_ir(func, module)
        program = compile_function(func, module, prog_type=prog_type,
                                   mcpu=mcpu, ctx_size=ctx_size)
        stats += self.optimize_bytecode(program)
        elapsed = time.perf_counter() - start

        report = MerlinReport(
            name=func.name,
            ni_original=baseline.ni,
            ni_optimized=program.ni,
            pass_stats=stats,
            compile_seconds=elapsed,
        )
        if self.verify_after:
            report.verification = verify(program, self.kernel)
        return program, report

    def optimize_program(self, program: BpfProgram) -> Tuple[BpfProgram, MerlinReport]:
        """Bytecode tier only, for programs without IR (assembled code)."""
        start = time.perf_counter()
        optimized = program.copy()
        ni_before = program.ni
        stats = self.optimize_bytecode(optimized)
        report = MerlinReport(
            name=program.name,
            ni_original=ni_before,
            ni_optimized=optimized.ni,
            pass_stats=stats,
            compile_seconds=time.perf_counter() - start,
        )
        if self.verify_after:
            report.verification = verify(optimized, self.kernel)
        return optimized, report


def compile_with_merlin(
    func: ir.Function,
    module: Optional[ir.Module] = None,
    kernel: KernelConfig = DEFAULT_KERNEL,
    **kwargs,
) -> Tuple[BpfProgram, MerlinReport]:
    """One-call convenience API: Merlin with every optimizer enabled."""
    return MerlinPipeline(kernel=kernel).compile(func, module, **kwargs)
