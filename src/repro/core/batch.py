"""Parallel batch compilation: many programs, many processes, one cache.

``compile_many`` fans a list of :class:`CompileJob` source programs out
over a ``ProcessPoolExecutor`` (``jobs=1`` stays in-process, which also
lets a purely in-memory cache participate); each worker runs the full
Merlin pipeline and ships its per-pass :class:`PassStats` back inside
the job's :class:`MerlinReport`, so a batched compile is report-for-
report identical to a sequential loop.  ``optimize_many`` is the
bytecode-tier-only sibling for already-compiled programs.

Caching across processes goes through the cache's *disk* store (the
memory layer is per-process); worker hit/miss counters are merged into
the parent's :class:`CacheStats` so a batch run reports one coherent
hit rate.

Long-running callers (the ``repro serve`` daemon) pass a persistent
``executor`` so worker processes are spawned once per service lifetime
instead of once per batch, and ``on_error="capture"`` so one broken
request degrades to an error slot in the report instead of poisoning
the whole batch.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from ..isa import BpfProgram, ProgramType
from ..verifier import DEFAULT_KERNEL, KernelConfig
from .pipeline import MerlinPipeline, MerlinReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import CacheStats, CompilationCache
    from .bytecode_passes.layout import PgoSpec
    from .superopt import SuperoptSpec


@dataclass(frozen=True)
class CompileJob:
    """One source program to push through the pipeline.

    ``entry=""`` selects the module's first function, mirroring the
    CLI's default.  ``pgo`` is an optional
    :class:`~repro.core.bytecode_passes.layout.PgoSpec` enabling the
    profile-guided layout tier for this job, ``superopt`` an optional
    :class:`~repro.core.superopt.SuperoptSpec` enabling the
    superoptimizer tier (both frozen dataclasses, so the job stays
    hashable and picklable for worker processes).
    """

    name: str
    source: str
    entry: str = ""
    prog_type: ProgramType = ProgramType.XDP
    mcpu: str = "v2"
    ctx_size: int = 64
    pgo: Optional["PgoSpec"] = None
    superopt: Optional["SuperoptSpec"] = None


@dataclass
class BatchReport:
    """The outcome of one ``compile_many``/``optimize_many`` run.

    With ``on_error="capture"`` a failed job leaves ``None`` in
    ``programs``/``reports`` and the formatted cause in the matching
    ``errors`` slot; the default ``on_error="raise"`` keeps every slot
    populated (the first failure propagates instead).
    """

    programs: List[Optional[BpfProgram]] = field(default_factory=list)
    reports: List[Optional[MerlinReport]] = field(default_factory=list)
    errors: List[Optional[str]] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    cache_stats: Optional["CacheStats"] = None

    def __iter__(self):
        return iter(zip(self.programs, self.reports))

    def __len__(self) -> int:
        return len(self.programs)

    @property
    def failed(self) -> int:
        return sum(1 for e in self.errors if e is not None)

    @property
    def ni_original(self) -> int:
        return sum(r.ni_original for r in self.reports if r is not None)

    @property
    def ni_optimized(self) -> int:
        return sum(r.ni_optimized for r in self.reports if r is not None)

    @property
    def ni_reduction(self) -> float:
        if not self.ni_original:
            return 0.0
        return 1.0 - self.ni_optimized / self.ni_original


def _pipeline_spec(pipeline: MerlinPipeline) -> tuple:
    return (pipeline.kernel, tuple(sorted(pipeline.enabled)),
            pipeline.verify_after)


def _job_error(exc: Exception) -> str:
    return "".join(traceback.format_exception_only(type(exc), exc)).strip()


def _compile_one(spec: tuple, job: CompileJob, cache_dir: Optional[str],
                 validate: Union[bool, str] = False,
                 on_error: str = "raise",
                 ) -> Tuple[Optional[BpfProgram], Optional[MerlinReport],
                            Optional[dict], Optional[str]]:
    """Worker entry point: compile one job, report cache counters."""
    kernel, enabled, verify_after = spec
    pipeline = MerlinPipeline(kernel=kernel, enabled=frozenset(enabled),
                              verify_after=verify_after)
    cache = None
    if cache_dir is not None:
        from ..cache import CompilationCache

        cache = CompilationCache(directory=cache_dir)
    try:
        program, report = _compile_job(pipeline, job, cache, validate)
    except Exception as exc:
        if on_error != "capture":
            raise
        stats = cache.stats.to_dict() if cache is not None else None
        return None, None, stats, _job_error(exc)
    stats = cache.stats.to_dict() if cache is not None else None
    return program, report, stats, None


def _compile_job(pipeline: MerlinPipeline, job: CompileJob,
                 cache: Optional["CompilationCache"],
                 validate: Union[bool, str] = False
                 ) -> Tuple[BpfProgram, MerlinReport]:
    from ..frontend import compile_source

    module = compile_source(job.source, job.name)
    entry = job.entry or next(iter(module.functions))
    func = module.get(entry)
    return pipeline.compile(
        func, module, prog_type=job.prog_type, mcpu=job.mcpu,
        ctx_size=job.ctx_size, cache=cache, validate=validate,
        pgo=job.pgo, superopt=job.superopt)


def _optimize_one(spec: tuple, program: BpfProgram
                  ) -> Tuple[BpfProgram, MerlinReport]:
    kernel, enabled, verify_after = spec
    pipeline = MerlinPipeline(kernel=kernel, enabled=frozenset(enabled),
                              verify_after=verify_after)
    return pipeline.optimize_program(program)


def _merge_worker_stats(cache: Optional["CompilationCache"],
                        dicts: Sequence[Optional[dict]]
                        ) -> Optional["CacheStats"]:
    from ..cache import CacheStats

    merged = CacheStats()
    seen = False
    for entry in dicts:
        if entry is None:
            continue
        seen = True
        merged.hits += entry["hits"]
        merged.misses += entry["misses"]
        merged.stores += entry["stores"]
        merged.evictions += entry["evictions"]
        merged.memory_hits += entry["memory_hits"]
        merged.disk_hits += entry["disk_hits"]
        merged.write_errors += entry.get("write_errors", 0)
        merged.read_errors += entry.get("read_errors", 0)
        merged.expired += entry.get("expired", 0)
        merged.disk_evictions += entry.get("disk_evictions", 0)
    if not seen:
        return None
    if cache is not None:
        cache.stats.merge(merged)
    return merged


def _snapshot_stats(cache: Optional["CompilationCache"]):
    if cache is None:
        return None
    import dataclasses

    return dataclasses.replace(cache.stats)


def _stats_delta(now: "CacheStats", before: "CacheStats") -> "CacheStats":
    """Counters attributable to one batch run (stats are cumulative)."""
    from ..cache import CacheStats

    return CacheStats(
        hits=now.hits - before.hits,
        misses=now.misses - before.misses,
        stores=now.stores - before.stores,
        evictions=now.evictions - before.evictions,
        memory_hits=now.memory_hits - before.memory_hits,
        disk_hits=now.disk_hits - before.disk_hits,
        write_errors=now.write_errors - before.write_errors,
        read_errors=now.read_errors - before.read_errors,
        expired=now.expired - before.expired,
        disk_evictions=now.disk_evictions - before.disk_evictions,
    )


def default_jobs() -> int:
    """A sensible worker count: the machine's cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def compile_many(pipeline: MerlinPipeline, batch: Sequence[CompileJob],
                 jobs: int = 1, cache: Optional["CompilationCache"] = None,
                 executor: Optional[ProcessPoolExecutor] = None,
                 validate: Union[bool, str] = False,
                 on_error: str = "raise") -> BatchReport:
    """Compile every job, optionally in parallel and/or cached.

    Results come back in input order regardless of worker scheduling.
    With ``jobs > 1`` only a *directory-backed* cache is shared between
    workers (each worker process opens its own handle on the same
    store); a memory-only cache is used as-is when ``jobs == 1`` and
    ignored by the worker processes otherwise.

    ``executor`` supplies a caller-owned process pool (reused across
    batches, never shut down here); without one, ``jobs > 1`` spins up
    a pool per call.  ``validate`` is forwarded to
    :meth:`MerlinPipeline.compile` per job.  ``on_error="capture"``
    turns per-job exceptions into ``report.errors`` slots.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if on_error not in ("raise", "capture"):
        raise ValueError("on_error must be 'raise' or 'capture'")
    spec = _pipeline_spec(pipeline)
    started = time.perf_counter()
    report = BatchReport(jobs=jobs)

    if jobs == 1 and executor is None:
        before = _snapshot_stats(cache)
        report = _compile_sequential(pipeline, batch, cache,
                                     validate=validate, on_error=on_error)
        report.wall_seconds = time.perf_counter() - started
        if cache is not None:
            report.cache_stats = _stats_delta(cache.stats, before)
        return report

    cache_dir = cache.directory if cache is not None else None
    n = len(batch)
    args = ([spec] * n, batch, [cache_dir] * n, [validate] * n,
            [on_error] * n)
    if executor is not None:
        results = list(executor.map(_compile_one, *args))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_compile_one, *args))
    for program, rep, _, error in results:
        report.programs.append(program)
        report.reports.append(rep)
        report.errors.append(error)
    report.wall_seconds = time.perf_counter() - started
    report.cache_stats = _merge_worker_stats(cache,
                                             [r[2] for r in results])
    return report


def _compile_sequential(pipeline: MerlinPipeline,
                        batch: Sequence[CompileJob],
                        cache: Optional["CompilationCache"],
                        validate: Union[bool, str] = False,
                        on_error: str = "raise") -> BatchReport:
    report = BatchReport(jobs=1)
    for job in batch:
        try:
            program, rep = _compile_job(pipeline, job, cache, validate)
        except Exception as exc:
            if on_error != "capture":
                raise
            report.programs.append(None)
            report.reports.append(None)
            report.errors.append(_job_error(exc))
            continue
        report.programs.append(program)
        report.reports.append(rep)
        report.errors.append(None)
    return report


def optimize_many(pipeline: MerlinPipeline,
                  programs: Sequence[BpfProgram],
                  jobs: int = 1) -> BatchReport:
    """Bytecode tier only, batched (for assembled/loaded programs)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    spec = _pipeline_spec(pipeline)
    started = time.perf_counter()
    report = BatchReport(jobs=jobs)
    if jobs == 1:
        results = [_optimize_one(spec, p) for p in programs]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_optimize_one, [spec] * len(programs),
                                    programs))
    for program, rep in results:
        report.programs.append(program)
        report.reports.append(rep)
        report.errors.append(None)
    report.wall_seconds = time.perf_counter() - started
    return report
