"""Pass infrastructure: stats, timing, and the two pass base classes.

Merlin is multi-tier: IR passes transform :class:`repro.ir.Function`
objects before code generation; bytecode passes rewrite the final
:class:`repro.isa.BpfProgram` right before it would be loaded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import ir
from ..isa import BpfProgram


@dataclass
class PassStats:
    """What one pass did to one function/program."""

    name: str
    tier: str  # "ir" or "bytecode"
    rewrites: int = 0
    time_seconds: float = 0.0
    ni_before: int = 0
    ni_after: int = 0
    details: Dict[str, int] = field(default_factory=dict)

    @property
    def ni_saved(self) -> int:
        return self.ni_before - self.ni_after


class IRPass:
    """Base class for IR-tier passes (the custom LLVM passes of the paper)."""

    name = "ir-pass"

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        """Transform *func* in place; return the number of rewrites."""
        raise NotImplementedError

    def run_timed(self, func: ir.Function,
                  module: Optional[ir.Module] = None) -> PassStats:
        start = time.perf_counter()
        rewrites = self.run(func, module)
        elapsed = time.perf_counter() - start
        return PassStats(self.name, "ir", rewrites=rewrites,
                         time_seconds=elapsed)


class BytecodePass:
    """Base class for bytecode-tier passes (Merlin's bytecode refinement)."""

    name = "bytecode-pass"

    def run(self, program: BpfProgram) -> int:
        """Rewrite *program* in place; return the number of rewrites."""
        raise NotImplementedError

    def run_timed(self, program: BpfProgram) -> PassStats:
        ni_before = program.ni
        start = time.perf_counter()
        rewrites = self.run(program)
        elapsed = time.perf_counter() - start
        return PassStats(self.name, "bytecode", rewrites=rewrites,
                         time_seconds=elapsed, ni_before=ni_before,
                         ni_after=program.ni)
