"""Pass infrastructure: stats, timing, and the two pass base classes.

Merlin is multi-tier: IR passes transform :class:`repro.ir.Function`
objects before code generation; bytecode passes rewrite the final
:class:`repro.isa.BpfProgram` right before it would be loaded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import ir
from ..isa import BpfProgram


@dataclass
class PassStats:
    """What one pass did to one function/program."""

    name: str
    tier: str  # "ir" or "bytecode"
    rewrites: int = 0
    time_seconds: float = 0.0
    ni_before: int = 0
    ni_after: int = 0
    details: Dict[str, int] = field(default_factory=dict)

    @property
    def ni_saved(self) -> int:
        return self.ni_before - self.ni_after


class IRPass:
    """Base class for IR-tier passes (the custom LLVM passes of the paper)."""

    name = "ir-pass"

    #: translation-validation hook: a :class:`repro.tv.WitnessRecorder`
    #: (or None).  IR passes rewrite whole functions, so the pipeline
    #: emits one whole-function witness per pass via
    #: :meth:`run_witnessed` rather than per-rewrite hooks.
    recorder = None

    def run(self, func: ir.Function, module: Optional[ir.Module] = None) -> int:
        """Transform *func* in place; return the number of rewrites."""
        raise NotImplementedError

    def run_timed(self, func: ir.Function,
                  module: Optional[ir.Module] = None) -> PassStats:
        start = time.perf_counter()
        rewrites = self.run(func, module)
        elapsed = time.perf_counter() - start
        return PassStats(self.name, "ir", rewrites=rewrites,
                         time_seconds=elapsed)

    def run_witnessed(self, func: ir.Function,
                      module: Optional[ir.Module] = None) -> PassStats:
        """Like :meth:`run_timed`, but snapshot the textual IR around the
        pass and emit an ``ir-pass`` witness when anything changed."""
        if self.recorder is None:
            return self.run_timed(func, module)
        from ..tv.witness import RewriteWitness

        before_text = ir.print_function(func)
        stats = self.run_timed(func, module)
        if stats.rewrites:
            after_text = ir.print_function(func)
            self.recorder.emit(RewriteWitness(
                pass_name=self.name, tier="ir", kind="ir-pass",
                before_text=before_text, after_text=after_text,
                note=f"{stats.rewrites} rewrite(s)",
            ))
        return stats


class BytecodePass:
    """Base class for bytecode-tier passes (Merlin's bytecode refinement)."""

    name = "bytecode-pass"

    #: translation-validation hook: a :class:`repro.tv.WitnessRecorder`
    #: (or None).  When set, every individual rewrite the pass performs
    #: must be reported through the ``_witness_*`` helpers below —
    #: each call deposits a :class:`repro.tv.RewriteWitness` that the
    #: validator certifies independently of the pass.
    recorder = None

    def run(self, program: BpfProgram) -> int:
        """Rewrite *program* in place; return the number of rewrites."""
        raise NotImplementedError

    def run_timed(self, program: BpfProgram) -> PassStats:
        ni_before = program.ni
        start = time.perf_counter()
        rewrites = self.run(program)
        elapsed = time.perf_counter() - start
        return PassStats(self.name, "bytecode", rewrites=rewrites,
                         time_seconds=elapsed, ni_before=ni_before,
                         ni_after=program.ni)

    # ------------------------------------------------- witness emission
    def _snapshot(self, sym):
        """Freeze the pre-rewrite SymbolicProgram state, or None when no
        recorder is attached (the common, zero-overhead path).

        Call *before* mutating; pass the result to a ``_witness_*``
        helper after.  ``replace``/``delete`` keep logical indices
        stable, so region bounds survive the mutation.
        """
        if self.recorder is None:
            return None
        return tuple((item.insn, item.target, item.deleted)
                     for item in sym.insns)

    def _witness_region(self, sym, snapshot, first: int, last: int,
                        clobbered=(), note: str = "") -> None:
        """Report a straightline in-place rewrite of [first, last]."""
        if snapshot is None:
            return
        from ..tv.witness import RewriteWitness

        before = [insn for insn, _target, deleted
                  in snapshot[first:last + 1] if not deleted]
        after = [sym.insns[i].insn for i in range(first, last + 1)
                 if not sym.insns[i].deleted]
        self.recorder.emit(RewriteWitness(
            pass_name=self.name, tier="bytecode", kind="region",
            first=first, last=last, slot=_slot_of(snapshot, first),
            before_insns=before, after_insns=after,
            clobbered=tuple(clobbered), snapshot=snapshot, note=note,
        ))

    def _witness_delete(self, snapshot, index: int, kind: str,
                        note: str = "") -> None:
        """Report a deletion-only rewrite (``dead-def``/``jump-thread``)."""
        if snapshot is None:
            return
        from ..tv.witness import RewriteWitness

        self.recorder.emit(RewriteWitness(
            pass_name=self.name, tier="bytecode", kind=kind,
            first=index, last=index, slot=_slot_of(snapshot, index),
            snapshot=snapshot, note=note,
        ))

    def _witness_layout(self, snapshot, after_insns, note: str = "") -> None:
        """Report a whole-program re-layout: the snapshot is the entire
        pre-rewrite program, ``after_insns`` the final relocated
        instruction list.  The validator certifies the two CFGs
        isomorphic (bodies equal, terminators matched up to condition
        inversion and ``ja`` insertion/removal)."""
        if snapshot is None:
            return
        from ..tv.witness import RewriteWitness

        self.recorder.emit(RewriteWitness(
            pass_name=self.name, tier="bytecode", kind="layout",
            first=0, last=max(len(snapshot) - 1, 0), slot=0,
            after_insns=list(after_insns), snapshot=snapshot, note=note,
        ))


def _slot_of(snapshot, index: int) -> int:
    """Encoded slot offset of logical *index* in a program snapshot."""
    slot = 0
    for insn, _target, deleted in snapshot[:index]:
        if not deleted:
            slot += insn.slots
    return slot
