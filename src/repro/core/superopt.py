"""Caching windowed superoptimizer tier (EPSO-style).

A third optimization tier that runs after Merlin's hand-written
bytecode passes: slide a short window over the optimized program,
search for a strictly smaller instruction sequence computing the same
thing, and certify every applied rewrite with a standard ``region``
witness through :mod:`repro.tv`.

What makes the tier practical is the *rewrite memo*: windows are
canonicalized — registers renamed to first-use order (r10 pinned),
offsets rebased per never-redefined base register — so the same
discovery made on one program replays on every other program (and
every serve worker) that contains the same shape, without re-running
the search.  Entries live in the content-addressed compilation cache
under their own key namespace (:func:`repro.cache.keys.key_for_window`).

Soundness does not depend on the memo or on canonicalization at all:
a memo entry is only a *hint*.  Every rewrite — fresh or replayed — is
re-certified at the apply site on the actual instantiated instructions
(:func:`certify_rewrite`): the window and its replacement are run
through the validator's symbolic state, every differing register must
be provably-dead after the window, r10 and every written memory byte
must prove equal (``proved`` status only; ``checked`` is not good
enough here).  A poisoned or stale memo entry therefore costs a wasted
lookup, never a miscompile.  Warm replay skips the *search*, not the
cheap site certification — the ``memo_hits``/``searches`` counters let
tests assert exactly that.

The search itself is two-phase and fully deterministic for a given
(canonical window, spec): an enumerative pass over a small rewrite
library (single-instruction drops, ``ld_imm64`` narrowing, constant
folding, the K2 pair collapses, store/load merges), then an optional
MCMC walk reusing the K2 proposal/cost machinery
(:mod:`repro.baselines.search`) with the RNG seeded from the spec seed
plus the canonical window content.  Determinism is what makes
``cached == fresh`` hold bit-for-bit.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..isa import BpfProgram, Instruction
from ..isa import instruction as ins
from ..isa import opcodes as op
from ..tv.expr import prove_equal
from ..tv.state import SymState, Unsupported, initial_byte, run_region
from .bytecode_passes.analysis import BytecodeAnalysis
from .bytecode_passes.symbolic import SymbolicProgram
from .pass_manager import BytecodePass

_U64 = (1 << 64) - 1

#: rewrite-memo entry layout revision; entries with any other value are
#: treated as invalid and fall back to a fresh search
MEMO_SCHEMA = 1

#: counter names the pass exposes (and tests assert on)
COUNTERS = ("windows", "searches", "memo_hits", "memo_misses",
            "memo_invalid", "site_rejects", "applied")


class UncanonicalError(ValueError):
    """The window cannot be canonicalized (or a memoized rewrite cannot
    be instantiated at this site)."""


# --------------------------------------------------------------------- spec
@dataclass(frozen=True)
class SuperoptSpec:
    """Parameters of the superoptimizer tier.

    Frozen so requests and cache keys stay hashable.  ``window`` is the
    maximum window length in instructions; ``iterations`` the MCMC
    proposal budget per window (0 disables the stochastic phase, the
    enumerative library still runs); ``seed`` feeds both the prover
    sampling and the per-window MCMC RNG.
    """

    window: int = 4
    iterations: int = 32
    seed: int = 2024

    def fingerprint(self) -> str:
        """Stable identity for compilation-cache keys."""
        return (f"window={self.window},iterations={self.iterations},"
                f"seed={self.seed}")

    def search_fingerprint(self) -> str:
        """The parts that change what ``search_window`` can discover —
        folded into rewrite-memo keys so entries produced under
        different search budgets never mix."""
        return f"iterations={self.iterations},seed={self.seed}"

    @classmethod
    def from_dict(cls, data: dict) -> "SuperoptSpec":
        return cls(window=data.get("window", cls.window),
                   iterations=data.get("iterations", cls.iterations),
                   seed=data.get("seed", cls.seed))

    def to_dict(self) -> dict:
        return {"window": self.window, "iterations": self.iterations,
                "seed": self.seed}


# ----------------------------------------------------------- canonical form
def _reg_fields(insn: Instruction) -> Tuple[str, ...]:
    """The instruction fields that actually name registers.  Everything
    else (the ``src`` of an immediate-operand ALU op, say) is encoding
    noise that canonicalization zeroes."""
    if insn.is_ld_imm64:
        return ("dst",)
    if insn.is_alu:
        if insn.alu_op in (op.BPF_NEG, op.BPF_END):
            return ("dst",)
        return ("dst",) if insn.uses_imm else ("dst", "src")
    if insn.is_load:
        return ("dst", "src")
    if insn.is_atomic:
        return ("dst", "src")
    if insn.is_store:
        return ("dst",) if insn.is_store_imm else ("dst", "src")
    return ("dst", "src")


def window_supported(window: Sequence[Instruction]) -> bool:
    """Windows the tier considers: straightline computation only.  No
    control flow, no map-fd ``ld_imm64`` (program-local relocation), no
    cmpxchg (r0 side channel the window rename does not model)."""
    for insn in window:
        if insn.is_jump or insn.is_call or insn.is_exit:
            return False
        if insn.is_ld_imm64 and insn.src != 0:
            return False
        if insn.is_atomic and insn.imm == op.BPF_CMPXCHG:
            return False
    return True


def canonicalize_window(
    window: Sequence[Instruction],
) -> Tuple[Tuple[Instruction, ...], Dict[int, int], Dict[int, int]]:
    """Rename a window into its canonical form.

    Registers are renamed to first-visit order over the meaningful
    register fields (r10, the frame pointer, maps to itself); memory
    offsets are rebased to zero per base register, but only when that
    base is never redefined inside the window (r10 always qualifies,
    which is what lets stack idioms at different frame offsets share
    one memo entry).

    Returns ``(canonical, rename, deltas)`` where ``rename`` maps site
    register -> canonical register and ``deltas`` maps canonical base
    register -> the offset that :func:`instantiate` must add back.
    """
    insns = list(window)
    if not window_supported(insns):
        raise UncanonicalError("window contains unsupported instructions")
    rename: Dict[int, int] = {10: 10}
    for insn in insns:
        for name in _reg_fields(insn):
            reg = getattr(insn, name)
            if reg not in rename:
                rename[reg] = len(rename) - 1  # r10 pinned; others 0,1,...
    defined = set()
    for insn in insns:
        defined.update(insn.defs())
    rebase: Dict[int, int] = {}
    for insn in insns:
        if insn.is_memory:
            base = insn.src if insn.is_load else insn.dst
            if base in defined:
                continue
            rebase[base] = min(rebase.get(base, insn.off), insn.off)
    canonical: List[Instruction] = []
    for insn in insns:
        fields: Dict[str, int] = {}
        names = _reg_fields(insn)
        for name in names:
            fields[name] = rename[getattr(insn, name)]
        if "src" not in names and insn.src:
            fields["src"] = 0
        if insn.is_memory:
            base = insn.src if insn.is_load else insn.dst
            if base in rebase:
                off = insn.off - rebase[base]
                if not -(1 << 15) <= off < (1 << 15):
                    raise UncanonicalError(
                        f"rebased offset {off} out of s16 range")
                fields["off"] = off
        canonical.append(insn.with_(**fields))
    deltas = {rename[base]: delta for base, delta in rebase.items()}
    return tuple(canonical), rename, deltas


def instantiate(rewrite: Sequence[Instruction], rename: Dict[int, int],
                deltas: Dict[int, int]) -> List[Instruction]:
    """Map a canonical-space rewrite back into site registers/offsets —
    the inverse of :func:`canonicalize_window` for the rename domain."""
    inverse = {canon: site for site, canon in rename.items()}
    out: List[Instruction] = []
    for insn in rewrite:
        fields: Dict[str, int] = {}
        names = _reg_fields(insn)
        for name in names:
            canon = getattr(insn, name)
            if canon not in inverse:
                raise UncanonicalError(
                    f"rewrite names r{canon} outside the window rename")
            fields[name] = inverse[canon]
        if insn.is_memory:
            base = insn.src if insn.is_load else insn.dst
            if base in deltas:
                fields["off"] = insn.off + deltas[base]
        out.append(insn.with_(**fields))
    return out


def _window_registers(window: Sequence[Instruction]) -> FrozenSet[int]:
    regs = {10}
    for insn in window:
        for name in _reg_fields(insn):
            regs.add(getattr(insn, name))
    return frozenset(regs)


# ------------------------------------------------------------ certification
def _diff_states(before: SymState, after: SymState,
                 seed: int) -> Optional[Tuple[int, ...]]:
    """Compare two symbolic end states.

    Returns the (sorted) clobber set — registers whose values provably
    may differ — or None when the states cannot be certified
    equivalent.  Equality must be *proved* (``checked`` does not
    count): r10 and every written memory byte must match, any other
    differing register becomes a clobber the caller must show dead.
    """
    clobbered: List[int] = []
    for reg in range(11):
        lhs, rhs = before.regs[reg], after.regs[reg]
        if lhs == rhs:
            continue
        status, _, _ = prove_equal(lhs, rhs, seed=seed)
        if status == "proved":
            continue
        if reg == 10:
            return None
        clobbered.append(reg)
    keys = set(before.memory) | set(after.memory)
    for base, off in keys:
        lhs = before.memory.get((base, off), initial_byte(base, off))
        rhs = after.memory.get((base, off), initial_byte(base, off))
        if lhs == rhs:
            continue
        status, _, _ = prove_equal(lhs, rhs, seed=seed)
        if status != "proved":
            return None
    return tuple(clobbered)


def certify_rewrite(window: Sequence[Instruction],
                    replacement: Sequence[Instruction],
                    seed: int = 0) -> Optional[Tuple[int, ...]]:
    """Site-level certification: run both sequences through the
    validator's symbolic state and return the clobber set, or None when
    the replacement cannot be certified.  This runs on the *actual*
    instructions about to be spliced in, which is why memo entries can
    never poison a program."""
    try:
        before = run_region(list(window))
        after = run_region(list(replacement))
    except Unsupported:
        return None
    return _diff_states(before, after, seed)


def _candidate_clobbers(candidate: Sequence[Instruction], before: SymState,
                        allowed: FrozenSet[int],
                        seed: int) -> Optional[Tuple[int, ...]]:
    """Evaluate one search candidate against the window's end state.
    Rejects candidates that could not be instantiated or verified at an
    apply site (foreign registers, control flow, misaligned r10
    access)."""
    for insn in candidate:
        if insn.is_jump or insn.is_call or insn.is_exit:
            return None
        if insn.is_ld_imm64 and insn.src != 0:
            return None
        for name in _reg_fields(insn):
            if getattr(insn, name) not in allowed:
                return None
        if insn.is_memory:
            base = insn.src if insn.is_load else insn.dst
            if base == 10 and insn.off % insn.size_bytes:
                return None  # would trip the verifier's stack alignment
    try:
        after = run_region(list(candidate))
    except Unsupported:
        return None
    return _diff_states(before, after, seed)


# ------------------------------------------------------------------- search
_FOLDABLE = (op.BPF_ADD, op.BPF_SUB, op.BPF_MUL, op.BPF_AND, op.BPF_OR,
             op.BPF_XOR, op.BPF_LSH, op.BPF_RSH, op.BPF_ARSH, op.BPF_MOV)


def _as_s32(value: int) -> Optional[int]:
    """The signed value whose 64-bit sign extension is *value*, if it
    fits in an s32 immediate."""
    signed = value - (1 << 64) if value >> 63 else value
    if -(1 << 31) <= signed < (1 << 31):
        return signed
    return None


def narrow_ld_imm64(insn: Instruction) -> Optional[Instruction]:
    """``ld_imm64 r, C`` -> ``mov64 r, C`` when C sign-extends from
    s32: same value, half the encoding slots."""
    if not (insn.is_ld_imm64 and insn.src == 0):
        return None
    signed = _as_s32(insn.imm & _U64)
    if signed is None:
        return None
    return ins.mov64_imm(insn.dst, signed)


def fold_constant_pair(a: Instruction, b: Instruction) -> Optional[Instruction]:
    """``mov64 r, C ; alu64 r, K``  ->  ``mov64 r, (C op K)`` when the
    folded constant still fits an s32 immediate."""
    if not (a.is_alu64 and a.alu_op == op.BPF_MOV and a.uses_imm):
        return None
    if not (b.is_alu64 and b.uses_imm and b.dst == a.dst
            and b.alu_op in _FOLDABLE):
        return None
    value = a.imm & _U64
    operand = b.imm & _U64
    alu = b.alu_op
    if alu == op.BPF_ADD:
        value = (value + operand) & _U64
    elif alu == op.BPF_SUB:
        value = (value - operand) & _U64
    elif alu == op.BPF_MUL:
        value = (value * operand) & _U64
    elif alu == op.BPF_AND:
        value &= operand
    elif alu == op.BPF_OR:
        value |= operand
    elif alu == op.BPF_XOR:
        value ^= operand
    elif alu == op.BPF_LSH:
        value = (value << (b.imm & 63)) & _U64
    elif alu == op.BPF_RSH:
        value >>= (b.imm & 63)
    elif alu == op.BPF_ARSH:
        signed = value - (1 << 64) if value >> 63 else value
        value = (signed >> (b.imm & 63)) & _U64
    else:  # BPF_MOV: the second constant simply wins
        value = operand
    signed = _as_s32(value)
    if signed is None:
        return None
    return ins.mov64_imm(a.dst, signed)


def merge_store_imm(a: Instruction, b: Instruction) -> Optional[Instruction]:
    """Two adjacent same-width immediate stores -> one double-width
    immediate store (little-endian byte concatenation), kept aligned so
    the merged access stays verifier-clean on the stack."""
    if not (a.is_store_imm and b.is_store_imm and a.dst == b.dst):
        return None
    size = a.size_bytes
    if size != b.size_bytes or size >= 8 or b.off != a.off + size:
        return None
    if a.off % (2 * size):
        return None
    mask = (1 << (8 * size)) - 1
    combined = (a.imm & mask) | ((b.imm & mask) << (8 * size))
    width = 2 * size
    if width == 8:
        signed = _as_s32(combined)
    else:
        bits = 8 * width
        signed = combined - (1 << bits) if combined >> (bits - 1) else combined
    if signed is None:
        return None
    return ins.store_imm(width, a.dst, a.off, signed)


def _enumerate_candidates(window: Tuple[Instruction, ...]):
    """The deterministic rewrite library, in a fixed order."""
    from ..baselines.search import (collapse_shift_pair, collapse_store_imm,
                                    match_load_merge)

    n = len(window)
    for i in range(n):  # single-instruction drops
        yield window[:i] + window[i + 1:]
    for i, insn in enumerate(window):
        narrowed = narrow_ld_imm64(insn)
        if narrowed is not None:
            yield window[:i] + (narrowed,) + window[i + 1:]
    for i in range(n - 1):
        for matcher in (collapse_store_imm, collapse_shift_pair,
                        fold_constant_pair, merge_store_imm):
            merged = matcher(window[i], window[i + 1])
            if merged is not None:
                yield window[:i] + (merged,) + window[i + 2:]
    for i in range(n - 3):
        merged = match_load_merge(*window[i:i + 4])
        if merged is not None:
            yield window[:i] + (merged,) + window[i + 4:]


def _window_seed(seed: int, window: Sequence[Instruction]) -> int:
    digest = hashlib.sha256(f"superopt:{seed}:".encode())
    for insn in window:
        digest.update(insn.encode())
    return int.from_bytes(digest.digest()[:8], "big")


def _mcmc_candidates(window: Tuple[Instruction, ...], spec: SuperoptSpec):
    """MCMC phase: drive the K2 proposal/cost machinery over the window
    as a miniature program.  Deterministic: the RNG is seeded from the
    spec seed plus the canonical window content."""
    from ..baselines import search

    current = BpfProgram("superopt.window", list(window))
    current_cost = search.program_cost(current)
    rng = random.Random(_window_seed(spec.seed, window))
    for step in range(spec.iterations):
        temperature = search.anneal_temperature(4.0, step, spec.iterations)
        candidate = search.mutate_program(current, rng)
        if candidate is None:
            continue
        cost = search.program_cost(candidate)
        accepted = yield tuple(candidate.insns)
        if not accepted:
            continue
        delta = cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_cost = candidate, cost


# --------------------------------------------------------------- memo entry
@dataclass(frozen=True)
class RewriteMemoEntry:
    """One memoized search outcome for a canonical window.

    ``rewrite is None`` records a *negative* result — the search ran
    and found nothing — so cold windows are only ever searched once
    fleet-wide.  ``clobbered`` is advisory (the clobbers the search
    observed in canonical space); the apply site recomputes its own.
    """

    schema: int
    canonical: Tuple[Instruction, ...]
    rewrite: Optional[Tuple[Instruction, ...]]
    clobbered: Tuple[int, ...]
    searched: int
    search: str  # SuperoptSpec.search_fingerprint() that produced it

    @property
    def found(self) -> bool:
        return self.rewrite is not None


def validate_memo_entry(entry: object,
                        canonical: Sequence[Instruction],
                        search: str) -> bool:
    """Structural screen for memo entries read back from disk.  This is
    defense-in-depth against poisoned or stale stores — the apply-site
    certification is what actually guarantees soundness."""
    if not isinstance(entry, RewriteMemoEntry):
        return False
    if entry.schema != MEMO_SCHEMA or entry.search != search:
        return False
    try:
        if tuple(entry.canonical) != tuple(canonical):
            return False
        if entry.rewrite is not None:
            if not all(isinstance(i, Instruction) for i in entry.rewrite):
                return False
            if not all(isinstance(r, int) and 0 <= r < 10
                       for r in entry.clobbered):
                return False
    except TypeError:
        return False
    return True


def search_window(canonical: Sequence[Instruction],
                  spec: SuperoptSpec) -> RewriteMemoEntry:
    """Search one canonical window for a strictly smaller equivalent.

    A pure function of ``(canonical, spec)`` — both phases are
    deterministic — which is what makes memo replay byte-identical to a
    fresh search.  The best candidate minimizes ``(ni, clobber count)``
    and must beat the window's own NI.
    """
    canonical = tuple(canonical)
    fingerprint = spec.search_fingerprint()
    try:
        before = run_region(list(canonical))
    except Unsupported:
        return RewriteMemoEntry(MEMO_SCHEMA, canonical, None, (), 0,
                                fingerprint)
    allowed = _window_registers(canonical)
    best: Optional[Tuple[Tuple[Instruction, ...], Tuple[int, ...]]] = None
    best_key = (ins.ni(canonical), len(allowed) + 1)
    searched = 0
    for candidate in _enumerate_candidates(canonical):
        searched += 1
        clobbers = _candidate_clobbers(candidate, before, allowed, spec.seed)
        if clobbers is None:
            continue
        key = (ins.ni(candidate), len(clobbers))
        if key < best_key:
            best, best_key = (tuple(candidate), clobbers), key
    if spec.iterations > 0:
        walk = _mcmc_candidates(canonical, spec)
        try:
            candidate = next(walk)
            while True:
                searched += 1
                clobbers = _candidate_clobbers(candidate, before, allowed,
                                               spec.seed)
                if clobbers is not None:
                    key = (ins.ni(candidate), len(clobbers))
                    if key < best_key:
                        best, best_key = (tuple(candidate), clobbers), key
                candidate = walk.send(clobbers is not None)
        except StopIteration:
            pass
    if best is None:
        return RewriteMemoEntry(MEMO_SCHEMA, canonical, None, (), searched,
                                fingerprint)
    return RewriteMemoEntry(MEMO_SCHEMA, canonical, best[0], best[1],
                            searched, fingerprint)


# --------------------------------------------------------------------- pass
class SuperoptimizerPass(BytecodePass):
    """The windowed superoptimizer as a standard bytecode pass.

    ``memo`` is any object with the :class:`repro.cache.store
    .CompilationCache` object interface (``get_object``/``put_object``)
    or None for search-only operation.  Counters (:data:`COUNTERS`)
    expose the memo behaviour for tests and the serve payload.
    """

    name = "superopt"

    def __init__(self, spec: Optional[SuperoptSpec] = None, memo=None):
        self.spec = spec if spec is not None else SuperoptSpec()
        self.memo = memo
        self.counters: Dict[str, int] = {key: 0 for key in COUNTERS}

    # ------------------------------------------------------------- memo
    def _memo_key(self, canonical: Tuple[Instruction, ...]) -> str:
        from ..cache.keys import key_for_window

        return key_for_window(canonical, self.spec.search_fingerprint())

    def _lookup_or_search(
            self, canonical: Tuple[Instruction, ...]) -> RewriteMemoEntry:
        fingerprint = self.spec.search_fingerprint()
        key = None
        if self.memo is not None:
            key = self._memo_key(canonical)
            entry = self.memo.get_object(key)
            if entry is None:
                self.counters["memo_misses"] += 1
            elif validate_memo_entry(entry, canonical, fingerprint):
                self.counters["memo_hits"] += 1
                return entry
            else:
                self.counters["memo_invalid"] += 1
        entry = search_window(canonical, self.spec)
        self.counters["searches"] += 1
        if self.memo is not None:
            self.memo.put_object(key, entry)
        return entry

    # -------------------------------------------------------------- run
    def run(self, program: BpfProgram) -> int:
        sym = SymbolicProgram.from_program(program)
        analysis = BytecodeAnalysis(sym)
        rewrites = 0
        pos = 0
        while pos < len(analysis.live):
            if self._try_window(sym, analysis, pos):
                rewrites += 1
                # indices at/after pos changed; positions before did not
                analysis = BytecodeAnalysis(sym)
                continue  # retry the same position: rewrites can cascade
            pos += 1
        if rewrites:
            program.insns = sym.to_insns()
        return rewrites

    def _try_window(self, sym: SymbolicProgram, analysis: BytecodeAnalysis,
                    pos: int) -> bool:
        live = analysis.live
        longest = min(self.spec.window, len(live) - pos)
        for length in range(longest, 0, -1):
            first, last = live[pos], live[pos + length - 1]
            if not analysis.straightline(first, last):
                continue
            window = [sym.insns[live[pos + k]].insn for k in range(length)]
            if not window_supported(window):
                continue
            try:
                canonical, rename, deltas = canonicalize_window(window)
            except UncanonicalError:
                continue
            self.counters["windows"] += 1
            entry = self._lookup_or_search(canonical)
            if entry.rewrite is None:
                continue
            try:
                replacement = instantiate(entry.rewrite, rename, deltas)
            except UncanonicalError:
                continue
            if ins.ni(replacement) >= ins.ni(window):
                continue
            clobbers = certify_rewrite(window, replacement,
                                       seed=self.spec.seed)
            if clobbers is None or 10 in clobbers:
                self.counters["site_rejects"] += 1
                continue
            try:
                dead = all(analysis.reg_dead_after(last, reg)
                           for reg in clobbers)
            except KeyError:
                dead = False
            if not dead:
                self.counters["site_rejects"] += 1
                continue
            snapshot = self._snapshot(sym)
            for k in range(length):
                index = live[pos + k]
                if k < len(replacement):
                    sym.replace(index, replacement[k])
                else:
                    sym.delete(index)
            self._witness_region(
                sym, snapshot, first, last, clobbered=clobbers,
                note=f"superopt window {length}->{len(replacement)} insns")
            self.counters["applied"] += 1
            return True
        return False
