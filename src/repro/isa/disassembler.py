"""Textual disassembly of eBPF instructions (kernel-style syntax)."""

from __future__ import annotations

from typing import Iterable, List

from . import opcodes as op
from .instruction import Instruction

_ALU_SYMBOL = {
    "add": "+=",
    "sub": "-=",
    "mul": "*=",
    "div": "/=",
    "or": "|=",
    "and": "&=",
    "lsh": "<<=",
    "rsh": ">>=",
    "mod": "%=",
    "xor": "^=",
    "arsh": "s>>=",
}

_JMP_SYMBOL = {
    "jeq": "==",
    "jne": "!=",
    "jgt": ">",
    "jge": ">=",
    "jlt": "<",
    "jle": "<=",
    "jsgt": "s>",
    "jsge": "s>=",
    "jslt": "s<",
    "jsle": "s<=",
    "jset": "&",
}

_SIZE_NAME = {1: "u8", 2: "u16", 4: "u32", 8: "u64"}


def _reg(insn_class_is_32: bool, reg: int) -> str:
    return f"{'w' if insn_class_is_32 else 'r'}{reg}"


def _mem(insn: Instruction, base: int) -> str:
    size = _SIZE_NAME[insn.size_bytes]
    off = insn.off
    sign = "+" if off >= 0 else "-"
    return f"*({size} *)(r{base} {sign} {abs(off)})"


def format_instruction(insn: Instruction) -> str:
    """Render one instruction in kernel-assembler-like syntax."""
    if insn.is_ld_imm64:
        if insn.src:  # BPF_PSEUDO_MAP_FD: imm is a map fd, not a constant
            return f"r{insn.dst} = map_fd {insn.imm} ll"
        return f"r{insn.dst} = {insn.imm:#x} ll"

    if insn.is_alu:
        is32 = insn.is_alu32
        dst = _reg(is32, insn.dst)
        name = op.ALU_OP_NAMES[insn.alu_op]
        if name == "neg":
            return f"{dst} = -{dst}"
        if name == "end":
            kind = "be" if (insn.opcode & op.SRC_MASK) == op.BPF_X else "le"
            return f"{dst} = {kind}{insn.imm} {dst}"
        operand = _reg(is32, insn.src) if not insn.uses_imm else str(insn.imm)
        if name == "mov":
            return f"{dst} = {operand}"
        return f"{dst} {_ALU_SYMBOL[name]} {operand}"

    if insn.is_atomic:
        name = op.ATOMIC_OP_NAMES.get(insn.imm, f"atomic_{insn.imm:#x}")
        mem = _mem(insn, insn.dst)
        if name == "xchg":
            return f"r{insn.src} = xchg({mem}, r{insn.src})"
        if name == "cmpxchg":
            return f"r0 = cmpxchg({mem}, r0, r{insn.src})"
        symbol = _ALU_SYMBOL.get(name.replace("_fetch", ""), "?=")
        prefix = f"r{insn.src} = " if name.endswith("_fetch") else ""
        return f"{prefix}lock {mem} {symbol} r{insn.src}"

    if insn.is_load:
        return f"r{insn.dst} = {_mem(insn, insn.src)}"

    if insn.is_store:
        value = str(insn.imm) if insn.is_store_imm else f"r{insn.src}"
        return f"{_mem(insn, insn.dst)} = {value}"

    if insn.is_call:
        return f"call {insn.imm}"
    if insn.is_exit:
        return "exit"

    if insn.is_jump:
        name = op.JMP_OP_NAMES[insn.jmp_op]
        target = f"{'+' if insn.off >= 0 else ''}{insn.off}"
        if name == "ja":
            return f"goto {target}"
        is32 = insn.insn_class == op.BPF_JMP32
        dst = _reg(is32, insn.dst)
        operand = _reg(is32, insn.src) if not insn.uses_imm else str(insn.imm)
        return f"if {dst} {_JMP_SYMBOL[name]} {operand} goto {target}"

    return f".byte {insn.opcode:#04x}  ; unknown"


def disassemble(insns: Iterable[Instruction]) -> str:
    """Multi-line disassembly with slot offsets."""
    lines: List[str] = []
    slot = 0
    for insn in insns:
        lines.append(f"{slot:4d}: {format_instruction(insn)}")
        slot += insn.slots
    return "\n".join(lines)
