"""The eBPF ``Instruction`` value type with binary encode/decode.

An :class:`Instruction` models one *logical* instruction.  ``ld_imm64``
is represented as a single object with a 64-bit immediate but encodes to
two 8-byte slots (and therefore counts as 2 toward NI, the paper's
"Number of Instructions" metric).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from . import opcodes as op

_STRUCT = struct.Struct("<BBhi")

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


def _s32(value: int) -> int:
    """Wrap *value* to a signed 32-bit integer."""
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def _s16(value: int) -> int:
    value &= 0xFFFF
    return value - (1 << 16) if value >= (1 << 15) else value


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


@dataclass(frozen=True)
class Instruction:
    """One eBPF instruction.

    Attributes mirror the wire format: ``opcode``, ``dst``/``src``
    register numbers, a signed 16-bit ``off`` and a signed immediate
    (32-bit for everything except ``ld_imm64``, which stores the full
    64-bit constant in ``imm``).
    """

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    # --- classification ---------------------------------------------------
    @property
    def insn_class(self) -> int:
        return op.insn_class(self.opcode)

    @property
    def is_ld_imm64(self) -> bool:
        return self.opcode == (op.BPF_LD | op.BPF_IMM | op.BPF_DW)

    @property
    def is_alu(self) -> bool:
        return op.is_alu(self.opcode)

    @property
    def is_alu64(self) -> bool:
        return self.insn_class == op.BPF_ALU64

    @property
    def is_alu32(self) -> bool:
        return self.insn_class == op.BPF_ALU

    @property
    def is_jump(self) -> bool:
        return op.is_jump(self.opcode)

    @property
    def is_call(self) -> bool:
        return self.insn_class == op.BPF_JMP and self.jmp_op == op.BPF_CALL

    @property
    def is_exit(self) -> bool:
        return self.insn_class == op.BPF_JMP and self.jmp_op == op.BPF_EXIT

    @property
    def is_load(self) -> bool:
        return op.is_load(self.opcode) and not self.is_ld_imm64

    @property
    def is_store(self) -> bool:
        return op.is_store(self.opcode)

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_atomic(self) -> bool:
        return (
            self.insn_class == op.BPF_STX
            and (self.opcode & op.MODE_MASK) == op.BPF_ATOMIC
        )

    @property
    def is_store_imm(self) -> bool:
        """A ``ST`` class store of an immediate value to memory."""
        return self.insn_class == op.BPF_ST

    @property
    def alu_op(self) -> int:
        return self.opcode & op.ALU_OP_MASK

    @property
    def jmp_op(self) -> int:
        return self.opcode & op.JMP_OP_MASK

    @property
    def uses_imm(self) -> bool:
        """True when the instruction's operand is the immediate field."""
        if self.is_alu or self.is_jump:
            return (self.opcode & op.SRC_MASK) == op.BPF_K
        return True

    @property
    def size_bytes(self) -> int:
        """Memory access width in bytes (loads/stores only)."""
        if not (self.is_memory or self.is_ld_imm64):
            raise EncodingError(f"not a memory instruction: {self!r}")
        return op.SIZE_BYTES[self.opcode & op.SIZE_MASK]

    @property
    def slots(self) -> int:
        """Number of 8-byte encoding slots (2 for ``ld_imm64``)."""
        return 2 if self.is_ld_imm64 else 1

    # --- use/def sets -------------------------------------------------------
    def defs(self) -> Tuple[int, ...]:
        """Registers written by this instruction."""
        if self.is_alu or self.is_ld_imm64:
            return (self.dst,)
        if self.is_load:
            return (self.dst,)
        if self.is_call:
            return (op.R0,)
        if self.is_atomic and (self.imm & op.BPF_FETCH):
            # fetch variants write the old value back into src
            if self.imm == op.BPF_CMPXCHG:
                return (op.R0,)
            return (self.src,)
        return ()

    def uses(self) -> Tuple[int, ...]:
        """Registers read by this instruction."""
        if self.is_ld_imm64:
            return ()
        if self.is_alu:
            if self.alu_op in (op.BPF_NEG, op.BPF_END):
                return (self.dst,)
            if self.alu_op == op.BPF_MOV:
                return () if self.uses_imm else (self.src,)
            if self.uses_imm:
                return (self.dst,)
            return (self.dst, self.src)
        if self.is_load:
            return (self.src,)
        if self.is_atomic:
            regs = [self.dst, self.src]
            if self.imm == op.BPF_CMPXCHG:
                regs.append(op.R0)
            return tuple(regs)
        if self.is_store:
            if self.insn_class == op.BPF_ST:
                return (self.dst,)
            return (self.dst, self.src)
        if self.is_call:
            return op.ARG_REGS
        if self.is_exit:
            return (op.R0,)
        if self.is_jump:
            if self.jmp_op == op.BPF_JA:
                return ()
            if self.uses_imm:
                return (self.dst,)
            return (self.dst, self.src)
        return ()

    # --- encoding -----------------------------------------------------------
    def encode(self) -> bytes:
        """Binary encoding: 8 bytes, or 16 for ``ld_imm64``."""
        for reg in (self.dst, self.src):
            if not 0 <= reg <= op.R10:
                raise EncodingError(f"register out of range: r{reg}")
        regs = (self.src << 4) | self.dst
        if self.is_ld_imm64:
            imm = self.imm & _U64
            lo = _s32(imm & _U32)
            hi = _s32(imm >> 32)
            return _STRUCT.pack(self.opcode, regs, _s16(self.off), lo) + _STRUCT.pack(
                0, 0, 0, hi
            )
        return _STRUCT.pack(self.opcode, regs, _s16(self.off), _s32(self.imm))

    @classmethod
    def decode_stream(cls, data: bytes) -> List["Instruction"]:
        """Decode a byte string into a list of logical instructions."""
        if len(data) % 8:
            raise EncodingError("encoded program length must be a multiple of 8")
        insns: List[Instruction] = []
        offset = 0
        while offset < len(data):
            opcode, regs, off, imm = _STRUCT.unpack_from(data, offset)
            offset += 8
            dst, src = regs & 0x0F, regs >> 4
            if opcode == (op.BPF_LD | op.BPF_IMM | op.BPF_DW):
                if offset >= len(data) + 1 and offset + 8 > len(data):
                    raise EncodingError("truncated ld_imm64")
                if offset + 8 > len(data):
                    raise EncodingError("truncated ld_imm64")
                _, _, _, hi = _STRUCT.unpack_from(data, offset)
                offset += 8
                imm64 = ((hi & _U32) << 32) | (imm & _U32)
                insns.append(cls(opcode, dst, src, off, imm64))
            else:
                insns.append(cls(opcode, dst, src, off, imm))
        return insns

    # --- convenience --------------------------------------------------------
    def with_(self, **kwargs) -> "Instruction":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def __str__(self) -> str:  # pragma: no cover - thin wrapper
        from .disassembler import format_instruction

        return format_instruction(self)


def encoded_length(insns: Iterable[Instruction]) -> int:
    """Total encoded size in bytes of *insns*."""
    return sum(8 * insn.slots for insn in insns)


def ni(insns: Iterable[Instruction]) -> int:
    """The paper's NI metric: encoded size in bytes divided by 8."""
    return sum(insn.slots for insn in insns)


# --- constructor helpers ----------------------------------------------------


def _alu(cls_bits: int, name: str, dst: int, src: Optional[int], imm: int) -> Instruction:
    alu_op = op.ALU_OP_BY_NAME[name]
    if src is None:
        return Instruction(cls_bits | alu_op | op.BPF_K, dst=dst, imm=imm)
    return Instruction(cls_bits | alu_op | op.BPF_X, dst=dst, src=src)


def alu64(name: str, dst: int, src: Optional[int] = None, imm: int = 0) -> Instruction:
    """64-bit ALU instruction, register form if *src* given else immediate."""
    return _alu(op.BPF_ALU64, name, dst, src, imm)


def alu32(name: str, dst: int, src: Optional[int] = None, imm: int = 0) -> Instruction:
    """32-bit ALU instruction (zero-extends the destination)."""
    return _alu(op.BPF_ALU, name, dst, src, imm)


def mov64_imm(dst: int, imm: int) -> Instruction:
    return alu64("mov", dst, imm=imm)


def mov64_reg(dst: int, src: int) -> Instruction:
    return alu64("mov", dst, src=src)


def mov32_imm(dst: int, imm: int) -> Instruction:
    return alu32("mov", dst, imm=imm)


def mov32_reg(dst: int, src: int) -> Instruction:
    return alu32("mov", dst, src=src)


def ld_imm64(dst: int, imm: int, src: int = 0) -> Instruction:
    """Load a full 64-bit immediate (occupies two encoding slots).

    *src* carries the pseudo-relocation kind (``BPF_PSEUDO_MAP_FD``
    marks *imm* as a map file descriptor rather than a plain constant).
    """
    return Instruction(
        op.BPF_LD | op.BPF_IMM | op.BPF_DW, dst=dst, src=src, imm=imm & _U64
    )


def load(size: int, dst: int, src: int, off: int = 0) -> Instruction:
    """``dst = *(uN *)(src + off)`` where *size* is the width in bytes."""
    return Instruction(
        op.BPF_LDX | op.BYTES_SIZE[size] | op.BPF_MEM, dst=dst, src=src, off=off
    )


def store_reg(size: int, dst: int, off: int, src: int) -> Instruction:
    """``*(uN *)(dst + off) = src``."""
    return Instruction(
        op.BPF_STX | op.BYTES_SIZE[size] | op.BPF_MEM, dst=dst, src=src, off=off
    )


def store_imm(size: int, dst: int, off: int, imm: int) -> Instruction:
    """``*(uN *)(dst + off) = imm``."""
    return Instruction(
        op.BPF_ST | op.BYTES_SIZE[size] | op.BPF_MEM, dst=dst, off=off, imm=imm
    )


def atomic(size: int, atomic_op: int, dst: int, off: int, src: int) -> Instruction:
    """Atomic read-modify-write: ``lock *(uN*)(dst+off) op= src``."""
    if size not in (4, 8):
        raise EncodingError("atomic operations require 4- or 8-byte width")
    return Instruction(
        op.BPF_STX | op.BYTES_SIZE[size] | op.BPF_ATOMIC,
        dst=dst,
        src=src,
        off=off,
        imm=atomic_op,
    )


def jump(name: str, dst: int = 0, src: Optional[int] = None, imm: int = 0,
         off: int = 0) -> Instruction:
    """Conditional or unconditional jump with a relative *off*."""
    jmp_op = op.JMP_OP_BY_NAME[name]
    if name in ("ja", "exit"):
        return Instruction(op.BPF_JMP | jmp_op, off=off)
    if src is None:
        return Instruction(op.BPF_JMP | jmp_op | op.BPF_K, dst=dst, imm=imm, off=off)
    return Instruction(op.BPF_JMP | jmp_op | op.BPF_X, dst=dst, src=src, off=off)


def jump32(name: str, dst: int = 0, src: Optional[int] = None, imm: int = 0,
           off: int = 0) -> Instruction:
    """32-bit compare jump (JMP32 class)."""
    jmp_op = op.JMP_OP_BY_NAME[name]
    if src is None:
        return Instruction(op.BPF_JMP32 | jmp_op | op.BPF_K, dst=dst, imm=imm, off=off)
    return Instruction(op.BPF_JMP32 | jmp_op | op.BPF_X, dst=dst, src=src, off=off)


def call(helper_id: int) -> Instruction:
    """Call a helper function by numeric id."""
    return Instruction(op.BPF_JMP | op.BPF_CALL, imm=helper_id)


def exit_() -> Instruction:
    return Instruction(op.BPF_JMP | op.BPF_EXIT)
