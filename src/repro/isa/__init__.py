"""eBPF instruction set: encoding, decoding, assembly, disassembly."""

from . import opcodes
from .assembler import AssemblerError, assemble
from .disassembler import disassemble, format_instruction
from .instruction import (
    EncodingError,
    Instruction,
    alu32,
    alu64,
    atomic,
    call,
    encoded_length,
    exit_,
    jump,
    jump32,
    ld_imm64,
    load,
    mov32_imm,
    mov32_reg,
    mov64_imm,
    mov64_reg,
    ni,
    store_imm,
    store_reg,
)
from .program import BpfProgram, MapSpec, ProgramType, XdpAction, total_ni

__all__ = [
    "opcodes",
    "AssemblerError",
    "assemble",
    "disassemble",
    "format_instruction",
    "EncodingError",
    "Instruction",
    "alu32",
    "alu64",
    "atomic",
    "call",
    "encoded_length",
    "exit_",
    "jump",
    "jump32",
    "ld_imm64",
    "load",
    "mov32_imm",
    "mov32_reg",
    "mov64_imm",
    "mov64_reg",
    "ni",
    "store_imm",
    "store_reg",
    "BpfProgram",
    "MapSpec",
    "ProgramType",
    "XdpAction",
    "total_ni",
]
