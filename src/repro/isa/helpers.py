"""eBPF helper-function ABI: stable numeric ids (subset of the kernel's).

The ids match ``enum bpf_func_id`` in the Linux UAPI so disassembly of
real-world-style programs reads naturally.
"""

from __future__ import annotations

from typing import Dict

HELPER_IDS: Dict[str, int] = {
    "map_lookup_elem": 1,
    "map_update_elem": 2,
    "map_delete_elem": 3,
    "probe_read": 4,
    "ktime_get_ns": 5,
    "trace_printk": 6,
    "get_prandom_u32": 7,
    "get_smp_processor_id": 8,
    "tail_call": 12,
    "get_current_pid_tgid": 14,
    "get_current_uid_gid": 15,
    "get_current_comm": 16,
    "redirect": 23,
    "perf_event_output": 25,
    "csum_diff": 28,
    "xdp_adjust_head": 44,
    "probe_read_str": 45,
    "fib_lookup": 69,
    "redirect_map": 51,
    "ktime_get_boot_ns": 125,
    "ringbuf_output": 130,
    "ringbuf_reserve": 131,
    "ringbuf_submit": 132,
}

HELPER_NAMES: Dict[int, str] = {v: k for k, v in HELPER_IDS.items()}

#: ld_imm64 src_reg value marking a map-fd pseudo load
BPF_PSEUDO_MAP_FD = 1
