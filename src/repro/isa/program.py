"""Program container: a named sequence of eBPF instructions plus metadata."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .instruction import Instruction, encoded_length, ni


class ProgramType(enum.Enum):
    """Attachment type, mirroring ``bpf_prog_type``."""

    XDP = "xdp"
    TRACEPOINT = "tracepoint"
    KPROBE = "kprobe"
    SOCKET_FILTER = "socket_filter"
    CGROUP_SKB = "cgroup_skb"
    LSM = "lsm"


class XdpAction(enum.IntEnum):
    """Return codes of an XDP program."""

    ABORTED = 0
    DROP = 1
    PASS = 2
    TX = 3
    REDIRECT = 4


@dataclass
class MapSpec:
    """Declaration of an eBPF map used by a program."""

    name: str
    map_type: str  # "array", "hash", "percpu_array", "lru_hash"
    key_size: int
    value_size: int
    max_entries: int

    def __post_init__(self) -> None:
        if self.key_size <= 0 or self.value_size <= 0:
            raise ValueError("map key/value sizes must be positive")
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")


@dataclass
class BpfProgram:
    """A loadable eBPF program.

    ``insns`` is a flat list of logical instructions; branch offsets are
    relative slot counts exactly as in the kernel (an ``ld_imm64``
    occupies two slots).
    """

    name: str
    insns: List[Instruction]
    prog_type: ProgramType = ProgramType.XDP
    maps: Dict[str, MapSpec] = field(default_factory=dict)
    mcpu: str = "v2"
    ctx_size: int = 64  # bytes of context accessible via r1 at entry

    @property
    def ni(self) -> int:
        """Number of Instructions: encoded bytes / 8 (paper's metric)."""
        return ni(self.insns)

    @property
    def size_bytes(self) -> int:
        return encoded_length(self.insns)

    def encode(self) -> bytes:
        return b"".join(insn.encode() for insn in self.insns)

    @classmethod
    def from_bytes(cls, name: str, data: bytes, **kwargs) -> "BpfProgram":
        return cls(name, Instruction.decode_stream(data), **kwargs)

    def copy(self, insns: Optional[Sequence[Instruction]] = None) -> "BpfProgram":
        """A shallow copy, optionally with a replacement instruction list."""
        return BpfProgram(
            name=self.name,
            insns=list(self.insns if insns is None else insns),
            prog_type=self.prog_type,
            maps=dict(self.maps),
            mcpu=self.mcpu,
            ctx_size=self.ctx_size,
        )

    # --- slot <-> index mapping ------------------------------------------
    def slot_offsets(self) -> List[int]:
        """Slot offset of each logical instruction."""
        offsets, slot = [], 0
        for insn in self.insns:
            offsets.append(slot)
            slot += insn.slots
        return offsets

    def index_of_slot(self, slot: int) -> int:
        """Logical instruction index at encoded *slot* offset."""
        for idx, offset in enumerate(self.slot_offsets()):
            if offset == slot:
                return idx
        raise IndexError(f"no instruction begins at slot {slot}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        from .disassembler import disassemble

        return disassemble(self.insns)


def total_ni(programs: Iterable[BpfProgram]) -> int:
    """Summed NI across a collection of programs."""
    return sum(program.ni for program in programs)
