"""eBPF opcode constants and tables.

Follows the kernel's instruction-set specification
(Documentation/bpf/standardization/instruction-set.rst).  Every eBPF
instruction is 8 bytes::

    byte 0   : opcode
    byte 1   : dst_reg (low nibble) | src_reg (high nibble)
    bytes 2-3: signed 16-bit offset
    bytes 4-7: signed 32-bit immediate

The only exception is ``ld_imm64`` (opcode 0x18), which occupies two
consecutive 8-byte slots; the second slot carries the upper 32 bits of
the immediate in its imm field.
"""

from __future__ import annotations

# --- instruction classes (low 3 bits of opcode) -------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04  # 32-bit ALU ("ALU32")
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

CLASS_MASK = 0x07

# --- size field for load/store (bits 3-4) --------------------------------
BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_MASK = 0x18

#: opcode size field -> access width in bytes
SIZE_BYTES = {BPF_W: 4, BPF_H: 2, BPF_B: 1, BPF_DW: 8}
#: access width in bytes -> opcode size field
BYTES_SIZE = {v: k for k, v in SIZE_BYTES.items()}

# --- mode field for load/store (bits 5-7) --------------------------------
BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_ATOMIC = 0xC0

MODE_MASK = 0xE0

# --- source operand flag for ALU/JMP (bit 3) -----------------------------
BPF_K = 0x00  # use the 32-bit immediate
BPF_X = 0x08  # use src_reg

SRC_MASK = 0x08

# --- ALU operations (bits 4-7) --------------------------------------------
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0
BPF_MOV = 0xB0
BPF_ARSH = 0xC0
BPF_END = 0xD0

ALU_OP_MASK = 0xF0

ALU_OP_NAMES = {
    BPF_ADD: "add",
    BPF_SUB: "sub",
    BPF_MUL: "mul",
    BPF_DIV: "div",
    BPF_OR: "or",
    BPF_AND: "and",
    BPF_LSH: "lsh",
    BPF_RSH: "rsh",
    BPF_NEG: "neg",
    BPF_MOD: "mod",
    BPF_XOR: "xor",
    BPF_MOV: "mov",
    BPF_ARSH: "arsh",
    BPF_END: "end",
}
ALU_OP_BY_NAME = {v: k for k, v in ALU_OP_NAMES.items()}

# --- JMP operations (bits 4-7) ---------------------------------------------
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_JNE = 0x50
BPF_JSGT = 0x60
BPF_JSGE = 0x70
BPF_CALL = 0x80
BPF_EXIT = 0x90
BPF_JLT = 0xA0
BPF_JLE = 0xB0
BPF_JSLT = 0xC0
BPF_JSLE = 0xD0

JMP_OP_MASK = 0xF0

JMP_OP_NAMES = {
    BPF_JA: "ja",
    BPF_JEQ: "jeq",
    BPF_JGT: "jgt",
    BPF_JGE: "jge",
    BPF_JSET: "jset",
    BPF_JNE: "jne",
    BPF_JSGT: "jsgt",
    BPF_JSGE: "jsge",
    BPF_CALL: "call",
    BPF_EXIT: "exit",
    BPF_JLT: "jlt",
    BPF_JLE: "jle",
    BPF_JSLT: "jslt",
    BPF_JSLE: "jsle",
}
JMP_OP_BY_NAME = {v: k for k, v in JMP_OP_NAMES.items()}

#: comparison name -> python predicate over (dst, src) unsigned/signed views
JMP_CONDITIONS = (
    "jeq",
    "jgt",
    "jge",
    "jset",
    "jne",
    "jsgt",
    "jsge",
    "jlt",
    "jle",
    "jslt",
    "jsle",
)

# --- atomic op encodings (in the imm field of a BPF_ATOMIC instruction) ---
BPF_ATOMIC_ADD = BPF_ADD
BPF_ATOMIC_OR = BPF_OR
BPF_ATOMIC_AND = BPF_AND
BPF_ATOMIC_XOR = BPF_XOR
BPF_FETCH = 0x01
BPF_XCHG = 0xE0 | BPF_FETCH
BPF_CMPXCHG = 0xF0 | BPF_FETCH

ATOMIC_OP_NAMES = {
    BPF_ATOMIC_ADD: "add",
    BPF_ATOMIC_OR: "or",
    BPF_ATOMIC_AND: "and",
    BPF_ATOMIC_XOR: "xor",
    BPF_ATOMIC_ADD | BPF_FETCH: "add_fetch",
    BPF_ATOMIC_OR | BPF_FETCH: "or_fetch",
    BPF_ATOMIC_AND | BPF_FETCH: "and_fetch",
    BPF_ATOMIC_XOR | BPF_FETCH: "xor_fetch",
    BPF_XCHG: "xchg",
    BPF_CMPXCHG: "cmpxchg",
}

# --- registers -------------------------------------------------------------
NUM_REGS = 11  # r0..r10
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(11)
FP = R10  # read-only frame pointer
CALLER_SAVED = (R0, R1, R2, R3, R4, R5)
CALLEE_SAVED = (R6, R7, R8, R9)
ARG_REGS = (R1, R2, R3, R4, R5)

STACK_SIZE = 512  # bytes of stack below r10


def insn_class(opcode: int) -> int:
    """Return the instruction class bits of *opcode*."""
    return opcode & CLASS_MASK


def is_alu(opcode: int) -> bool:
    """True for both 32- and 64-bit ALU instructions."""
    return insn_class(opcode) in (BPF_ALU, BPF_ALU64)


def is_jump(opcode: int) -> bool:
    """True for both 64- and 32-bit compare jump classes."""
    return insn_class(opcode) in (BPF_JMP, BPF_JMP32)


def is_load(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_LD, BPF_LDX)


def is_store(opcode: int) -> bool:
    return insn_class(opcode) in (BPF_ST, BPF_STX)


def is_memory(opcode: int) -> bool:
    return is_load(opcode) or is_store(opcode)
