"""A small two-pass assembler for the kernel-style eBPF text syntax.

Accepts the same syntax :mod:`repro.isa.disassembler` emits, plus named
labels, so round-tripping ``disassemble`` output re-assembles exactly.

Example::

    prog = assemble('''
        r0 = 0
        r2 = *(u32 *)(r1 + 0)
        if r2 != 42 goto drop
        r0 = 2
    drop:
        exit
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import opcodes as op
from . import instruction as ins
from .helpers import BPF_PSEUDO_MAP_FD
from .instruction import Instruction

_SIZE_BY_NAME = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}

_ALU_BY_SYMBOL = {
    "+=": "add",
    "-=": "sub",
    "*=": "mul",
    "/=": "div",
    "|=": "or",
    "&=": "and",
    "<<=": "lsh",
    ">>=": "rsh",
    "%=": "mod",
    "^=": "xor",
    "s>>=": "arsh",
}

_JMP_BY_SYMBOL = {
    "==": "jeq",
    "!=": "jne",
    ">": "jgt",
    ">=": "jge",
    "<": "jlt",
    "<=": "jle",
    "s>": "jsgt",
    "s>=": "jsge",
    "s<": "jslt",
    "s<=": "jsle",
    "&": "jset",
}

_MEM_RE = re.compile(
    r"\*\(\s*(u8|u16|u32|u64)\s*\*\)\(\s*r(\d+)\s*([+-])\s*(\w+)\s*\)"
)
_REG_RE = re.compile(r"^([rw])(\d+)$")


class AssemblerError(ValueError):
    """Raised on unparsable assembly input."""

    def __init__(self, line_no: int, line: str, message: str):
        super().__init__(f"line {line_no}: {message}: {line!r}")
        self.line_no = line_no


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_reg(text: str) -> Optional[Tuple[int, bool]]:
    """Return (reg_number, is_32bit) or None if not a register token."""
    match = _REG_RE.match(text.strip())
    if not match:
        return None
    reg = int(match.group(2))
    if reg > op.R10:
        return None
    return reg, match.group(1) == "w"


def _parse_mem(text: str) -> Optional[Tuple[int, int, int]]:
    """Return (size_bytes, base_reg, offset) or None."""
    match = _MEM_RE.match(text.strip())
    if not match:
        return None
    size = _SIZE_BY_NAME[match.group(1)]
    base = int(match.group(2))
    offset = _parse_int(match.group(4))
    if match.group(3) == "-":
        offset = -offset
    return size, base, offset


class _Pending:
    """An instruction whose jump target is a named label."""

    def __init__(self, insn: Instruction, label: str):
        self.insn = insn
        self.label = label


def assemble(text: str) -> List[Instruction]:
    """Assemble *text* into a list of instructions."""
    items: List[object] = []  # Instruction | _Pending
    labels: Dict[str, int] = {}  # label -> slot offset
    slot = 0

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("//")[0].strip()
        if not line:
            continue
        while line.endswith(":") or (":" in line and _is_label_prefix(line)):
            label, _, rest = line.partition(":")
            label = label.strip()
            if label in labels:
                raise AssemblerError(line_no, raw, f"duplicate label {label!r}")
            labels[label] = slot
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        insn, label_ref = _parse_line(line_no, line)
        items.append(_Pending(insn, label_ref) if label_ref else insn)
        slot += insn.slots

    # second pass: resolve labels to relative offsets
    insns: List[Instruction] = []
    slot = 0
    for item in items:
        insn = item.insn if isinstance(item, _Pending) else item
        if isinstance(item, _Pending):
            if item.label not in labels:
                raise AssemblerError(0, item.label, "undefined label")
            # relative offset is from the *next* instruction's slot
            insn = insn.with_(off=labels[item.label] - (slot + insn.slots))
        insns.append(insn)
        slot += insn.slots
    return insns


def _is_label_prefix(line: str) -> bool:
    head = line.split(":")[0].strip()
    return bool(re.match(r"^[A-Za-z_.][\w.]*$", head))


def _parse_line(line_no: int, line: str) -> Tuple[Instruction, Optional[str]]:
    """Parse one statement. Returns (instruction, unresolved-label-or-None)."""
    line = re.sub(r"^\s*\d+\s*:\s*", "", line)  # strip "  12: " slot prefixes

    if line == "exit":
        return ins.exit_(), None

    match = re.match(r"^call\s+(\S+)$", line)
    if match:
        return ins.call(_parse_int(match.group(1))), None

    match = re.match(r"^goto\s+(\S+)$", line)
    if match:
        return _jump_target("ja", 0, None, 0, match.group(1), line_no, line)

    match = re.match(r"^if\s+(\S+)\s+(s?[=!<>&]+)\s+(\S+)\s+goto\s+(\S+)$", line)
    if match:
        return _parse_branch(line_no, line, *match.groups())

    # atomics:  "lock *(u64 *)(r1 + 0) += r2"  or "r2 = lock ... += r2" fetch
    match = re.match(
        r"^(?:r(\d+)\s*=\s*)?lock\s+(\*\([^)]*\)\([^)]*\))\s*([+&|^]=)\s*r(\d+)$",
        line,
    )
    if match:
        fetch_reg, mem_text, symbol, src = match.groups()
        mem = _parse_mem(mem_text)
        if mem is None:
            raise AssemblerError(line_no, line, "bad memory operand")
        size, base, offset = mem
        atomic_op = {
            "+=": op.BPF_ATOMIC_ADD,
            "&=": op.BPF_ATOMIC_AND,
            "|=": op.BPF_ATOMIC_OR,
            "^=": op.BPF_ATOMIC_XOR,
        }[symbol]
        if fetch_reg is not None:
            if int(fetch_reg) != int(src):
                raise AssemblerError(line_no, line, "fetch dst must equal src")
            atomic_op |= op.BPF_FETCH
        return ins.atomic(size, atomic_op, base, offset, int(src)), None

    # store:  *(u32 *)(r10 - 4) = r1 | imm
    match = re.match(r"^(\*\([^)]*\)\([^)]*\))\s*=\s*(\S+)$", line)
    if match:
        mem = _parse_mem(match.group(1))
        if mem is None:
            raise AssemblerError(line_no, line, "bad memory operand")
        size, base, offset = mem
        value = match.group(2)
        reg = _parse_reg(value)
        if reg is not None:
            return ins.store_reg(size, base, offset, reg[0]), None
        return ins.store_imm(size, base, offset, _parse_int(value)), None

    # everything else starts with a destination register
    match = re.match(r"^([rw]\d+)\s*(s?[-+*/%&|^<>]*=)\s*(.+)$", line)
    if match:
        return _parse_alu_or_load(line_no, line, *match.groups())

    raise AssemblerError(line_no, line, "unrecognized statement")


def _parse_branch(
    line_no: int, line: str, dst_text: str, symbol: str, rhs: str, target: str
) -> Tuple[Instruction, Optional[str]]:
    dst = _parse_reg(dst_text)
    if dst is None:
        raise AssemblerError(line_no, line, "bad register in branch")
    if symbol not in _JMP_BY_SYMBOL:
        raise AssemblerError(line_no, line, f"unknown comparison {symbol!r}")
    name = _JMP_BY_SYMBOL[symbol]
    rhs_reg = _parse_reg(rhs)
    dst_reg, is32 = dst
    src = None if rhs_reg is None else rhs_reg[0]
    imm = 0 if rhs_reg is not None else _parse_int(rhs)
    return _jump_target(name, dst_reg, src, imm, target, line_no, line, is32)


def _jump_target(
    name: str,
    dst: int,
    src: Optional[int],
    imm: int,
    target: str,
    line_no: int,
    line: str,
    is32: bool = False,
) -> Tuple[Instruction, Optional[str]]:
    maker = ins.jump32 if is32 else ins.jump
    if re.match(r"^[+-]\d+$", target):
        return maker(name, dst, src, imm, off=int(target)), None
    if not re.match(r"^[A-Za-z_.][\w.]*$", target):
        raise AssemblerError(line_no, line, f"bad jump target {target!r}")
    return maker(name, dst, src, imm, off=0), target


def _parse_alu_or_load(
    line_no: int, line: str, dst_text: str, symbol: str, rhs: str
) -> Tuple[Instruction, Optional[str]]:
    dst = _parse_reg(dst_text)
    if dst is None:
        raise AssemblerError(line_no, line, "bad destination register")
    dst_reg, is32 = dst
    rhs = rhs.strip()

    if symbol == "=":
        # ld_imm64:  r1 = 0x1234 ll   |   r1 = map_fd 3 ll
        match = re.match(r"^(?:(map_fd)\s+)?(\S+)\s+ll$", rhs)
        if match:
            if is32:
                raise AssemblerError(line_no, line, "ld_imm64 needs a 64-bit dst")
            src = BPF_PSEUDO_MAP_FD if match.group(1) else 0
            return ins.ld_imm64(dst_reg, _parse_int(match.group(2)), src), None
        # load
        mem = _parse_mem(rhs)
        if mem is not None:
            size, base, offset = mem
            return ins.load(size, dst_reg, base, offset), None
        # neg:  r1 = -r1
        match = re.match(r"^-\s*([rw]\d+)$", rhs)
        if match and _parse_reg(match.group(1)) == (dst_reg, is32):
            maker = ins.alu32 if is32 else ins.alu64
            return maker("neg", dst_reg), None
        # byte swap:  r1 = be16 r1 / le64 ...
        match = re.match(r"^(be|le)(16|32|64)\s+[rw]\d+$", rhs)
        if match:
            src_flag = op.BPF_X if match.group(1) == "be" else op.BPF_K
            return (
                Instruction(
                    op.BPF_ALU | op.BPF_END | src_flag,
                    dst=dst_reg,
                    imm=int(match.group(2)),
                ),
                None,
            )
        # mov
        maker = ins.alu32 if is32 else ins.alu64
        reg = _parse_reg(rhs)
        if reg is not None:
            return maker("mov", dst_reg, src=reg[0]), None
        return maker("mov", dst_reg, imm=_parse_int(rhs)), None

    if symbol not in _ALU_BY_SYMBOL:
        raise AssemblerError(line_no, line, f"unknown operator {symbol!r}")
    name = _ALU_BY_SYMBOL[symbol]
    maker = ins.alu32 if is32 else ins.alu64
    reg = _parse_reg(rhs)
    if reg is not None:
        return maker(name, dst_reg, src=reg[0]), None
    return maker(name, dst_reg, imm=_parse_int(rhs)), None
