"""Bitvector expression terms for translation validation.

The validator's symbolic executor computes one :class:`Expr` per
register / memory byte.  Three layers of reasoning are stacked on top:

* :func:`normalize` — rewrite to a canonical form (constant folding,
  algebraic identities, shift/mask compositions).  Two terms that
  normalize to the same tree are *proven* equal for every input.
* :func:`expr_tnum` — abstract a term into the verifier's
  :class:`~repro.verifier.tnum.Tnum` domain.  Disjoint tnums refute
  equality; it also narrows the value ranges the enumeration fallback
  samples from.
* :func:`evaluate` + :func:`sample_envs` — concrete enumeration over
  narrowed value ranges when symbolic terms don't normalize.  The
  evaluator mirrors :meth:`repro.vm.interpreter.Machine._alu` bit for
  bit, so a differing sample is a genuine semantic difference.

Semantics: every term denotes a u64.  An :class:`Op` carries the
operation width (``bits`` = 32 or 64); operands are truncated to the
width before the operation and the result is truncated after, exactly
like the VM (ALU32 zero-extends into the 64-bit register).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..verifier.tnum import Tnum

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


@dataclass(frozen=True)
class Const:
    value: int  # canonical: 0 <= value <= U64


@dataclass(frozen=True)
class Sym:
    """A free variable.  ``name`` is any hashable tag; the validator
    keys initial-memory symbols by structured tuples so the two sides
    of a witness mint *identical* symbols for identical quantities."""

    name: object


#: expression sizes saturate here; anything this large is "too big"
SIZE_CAP = 1 << 20


@dataclass(frozen=True)
class Op:
    op: str
    bits: int  # operation width: 32 or 64
    args: Tuple["Expr", ...]
    #: tree-size measure (saturating at SIZE_CAP) maintained at
    #: construction so growth checks are O(1); derived, so excluded
    #: from equality and hashing
    size: int = field(default=0, compare=False, repr=False)

    def __post_init__(self):
        total = 1 + sum(expr_size(a) for a in self.args)
        object.__setattr__(self, "size", min(total, SIZE_CAP))


def expr_size(expr: Expr) -> int:
    return expr.size if isinstance(expr, Op) else 1


Expr = object  # Union[Const, Sym, Op] — kept loose for 3.9 compatibility

#: binary ALU operations (VM ``_alu`` names)
_BINOPS = ("add", "sub", "mul", "div", "mod", "or", "and", "xor",
           "lsh", "rsh", "arsh")
#: comparison operations (produce 0/1; used as path conditions)
_CMPOPS = ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset",
           "jsgt", "jsge", "jslt", "jsle")


def const(value: int) -> Const:
    return Const(value & _U64)


def _signed(x: int, bits: int) -> int:
    return x - (1 << bits) if x >> (bits - 1) else x


# ---------------------------------------------------------------------------
# concrete evaluation (mirrors the VM exactly)
# ---------------------------------------------------------------------------
def evaluate(expr: Expr, env: Dict[Sym, int]) -> int:
    """Evaluate under *env* (symbol -> u64).  Missing symbols are 0."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return env.get(expr, 0) & _U64
    assert isinstance(expr, Op)
    bits = expr.bits
    mask = _U32 if bits == 32 else _U64
    name = expr.op
    if name == "byte":
        value, index = expr.args
        return (evaluate(value, env) >> (8 * index.value)) & 0xFF
    if name in ("be", "le"):
        width = bits  # 16 / 32 / 64 swap width
        value = evaluate(expr.args[0], env) & ((1 << width) - 1)
        data = value.to_bytes(width // 8, "little")
        order = "big" if name == "be" else "little"
        return int.from_bytes(data, order)
    if name == "neg":
        return (-(evaluate(expr.args[0], env) & mask)) & mask
    a = evaluate(expr.args[0], env) & mask
    if name in _CMPOPS:
        b = evaluate(expr.args[1], env) & mask
        return int(_compare(name, a, b, bits))
    b = evaluate(expr.args[1], env) & mask
    if name == "add":
        result = a + b
    elif name == "sub":
        result = a - b
    elif name == "mul":
        result = a * b
    elif name == "div":
        result = a // b if b else 0
    elif name == "mod":
        result = a % b if b else a
    elif name == "or":
        result = a | b
    elif name == "and":
        result = a & b
    elif name == "xor":
        result = a ^ b
    elif name == "lsh":
        result = a << (b % bits)
    elif name == "rsh":
        result = a >> (b % bits)
    elif name == "arsh":
        result = _signed(a, bits) >> (b % bits)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown op {name!r}")
    return result & mask


def _compare(name: str, a: int, b: int, bits: int) -> bool:
    if name == "jeq":
        return a == b
    if name == "jne":
        return a != b
    if name == "jgt":
        return a > b
    if name == "jge":
        return a >= b
    if name == "jlt":
        return a < b
    if name == "jle":
        return a <= b
    if name == "jset":
        return bool(a & b)
    sa, sb = _signed(a, bits), _signed(b, bits)
    if name == "jsgt":
        return sa > sb
    if name == "jsge":
        return sa >= sb
    if name == "jslt":
        return sa < sb
    if name == "jsle":
        return sa <= sb
    raise ValueError(f"unknown comparison {name!r}")


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------
def mkop(name: str, bits: int, *args: Expr) -> Expr:
    """Build and normalize an operation node."""
    return normalize(Op(name, bits, tuple(args)))


def normalize(expr: Expr) -> Expr:
    """Canonicalize a term (arguments are assumed already normalized).

    The rule set is small but covers what Merlin's rewrites need to
    discharge symbolically: constant folding, neutral elements,
    mask/shift compositions (``(x << c) >> d``, ``(x & m) >> k``), and
    flattened constant address arithmetic.
    """
    if not isinstance(expr, Op):
        return expr
    name, bits, args = expr.op, expr.bits, expr.args

    # constant folding (evaluate matches VM semantics, div-by-zero incl.)
    if all(isinstance(a, Const) for a in args):
        return Const(evaluate(expr, {}))

    if name == "byte":
        value, index = args
        if isinstance(value, Op) and value.op == "or" and value.bits == 64:
            pass  # no byte-of-or distribution; handled by memory layer
        return expr

    if name not in _BINOPS:
        return expr
    a, b = args

    # canonical operand order for commutative ops: constant on the right
    if name in ("add", "mul", "or", "and", "xor") and isinstance(a, Const):
        a, b = b, a

    if isinstance(b, Const):
        bv = b.value & (_U32 if bits == 32 else _U64)
        full = _U32 if bits == 32 else _U64
        # neutral / absorbing elements.  At 32-bit width the "identity"
        # still truncates the operand, so x op32 0 == and(x, U32), not x.
        if bits == 64:
            if bv == 0 and name in ("add", "sub", "or", "xor", "lsh",
                                    "rsh", "arsh"):
                return a
            if bv == 0 and name in ("and", "mul"):
                return Const(0)
            if bv == 1 and name == "mul":
                return a
        if name == "and":
            if bv == 0:
                return Const(0)
            if bv == full and bits == 64:
                return a
        # sub by constant -> add of the complement (flattens chains)
        if name == "sub" and bits == 64:
            return mkop("add", 64, a, Const((-bv) & _U64))
        # add-chain constant collection: (x + c1) + c2 -> x + (c1+c2)
        if name == "add" and bits == 64 and isinstance(a, Op) and \
                a.op == "add" and a.bits == 64 and \
                isinstance(a.args[1], Const):
            summed = (a.args[1].value + bv) & _U64
            if summed == 0:
                return a.args[0]
            return Op("add", 64, (a.args[0], Const(summed)))
        # and-chain mask merging: (x & m1) & m2 -> x & (m1&m2)
        if name == "and" and isinstance(a, Op) and a.op == "and" and \
                a.bits == bits and isinstance(a.args[1], Const):
            return mkop("and", bits, a.args[0], Const(a.args[1].value & bv))
        if name in ("lsh", "rsh", "arsh"):
            shift = bv % bits
            if shift == 0 and bits == 64:
                return a
            b = Const(shift)
            # (x << c) >> d at 64 bit: drop the round trip through the
            # high bits: == (x & (U64 >> c)) >> (d - c)   when d >= c
            if name == "rsh" and bits == 64 and isinstance(a, Op) and \
                    a.op == "lsh" and a.bits == 64 and \
                    isinstance(a.args[1], Const):
                c = a.args[1].value
                if shift >= c:
                    masked = mkop("and", 64, a.args[0], Const(_U64 >> c))
                    if shift == c:
                        return masked
                    return mkop("rsh", 64, masked, Const(shift - c))
            # (x & m) >> k: bits of m below k never reach the result
            if name == "rsh" and bits == 64 and shift and \
                    isinstance(a, Op) and a.op == "and" and a.bits == 64 and \
                    isinstance(a.args[1], Const):
                low = (1 << shift) - 1
                m = a.args[1].value
                if m & low:
                    trimmed = mkop("and", 64, a.args[0], Const(m & ~low))
                    return mkop("rsh", 64, trimmed, Const(shift))
    return Op(name, bits, (a, b))


# ---------------------------------------------------------------------------
# tnum abstraction
# ---------------------------------------------------------------------------
def expr_tnum(expr: Expr, env: Optional[Dict[Sym, Tnum]] = None) -> Tnum:
    """Abstract a term into the verifier's tnum domain."""
    if isinstance(expr, Const):
        return Tnum.const(expr.value)
    if isinstance(expr, Sym):
        if env is not None and expr in env:
            return env[expr]
        return Tnum.unknown()
    assert isinstance(expr, Op)
    name, bits = expr.op, expr.bits
    cast = 4 if bits == 32 else 8
    if name == "byte":
        value = expr_tnum(expr.args[0], env)
        return value.rshift(8 * expr.args[1].value).cast(1)
    if name in ("be", "le"):
        return Tnum.unknown().cast(bits // 8)
    if name == "neg":
        return Tnum.const(0).sub(expr_tnum(expr.args[0], env).cast(cast)).cast(cast)
    if name in _CMPOPS:
        decided = tnum_decide(expr, env)
        return Tnum.const(int(decided)) if decided is not None else Tnum(0, 1)
    a = expr_tnum(expr.args[0], env).cast(cast)
    b = expr_tnum(expr.args[1], env).cast(cast)
    if name == "add":
        out = a.add(b)
    elif name == "sub":
        out = a.sub(b)
    elif name == "mul":
        out = a.mul(b)
    elif name == "and":
        out = a.and_(b)
    elif name == "or":
        out = a.or_(b)
    elif name == "xor":
        out = a.xor(b)
    elif name == "lsh" and b.is_const:
        out = a.lshift(b.value % bits)
    elif name == "rsh" and b.is_const:
        out = a.rshift(b.value % bits)
    elif name == "arsh" and b.is_const:
        out = a.arshift(b.value % bits, bits)
    else:  # div/mod and variable shifts: no useful abstraction
        out = Tnum.unknown()
    return out.cast(cast)


def tnum_decide(cond: Expr, env: Optional[Dict[Sym, Tnum]] = None
                ) -> Optional[bool]:
    """Decide a comparison term from tnum bounds, if possible."""
    if isinstance(cond, Const):
        return bool(cond.value)
    if not (isinstance(cond, Op) and cond.op in _CMPOPS):
        return None
    bits = cond.bits
    cast = 4 if bits == 32 else 8
    a = expr_tnum(cond.args[0], env).cast(cast)
    b = expr_tnum(cond.args[1], env).cast(cast)
    name = cond.op
    if name in ("jeq", "jne"):
        if a.is_const and b.is_const:
            return (a.value == b.value) if name == "jeq" else (a.value != b.value)
        disjoint = (a.value ^ b.value) & ~a.mask & ~b.mask & _U64
        if disjoint:
            return False if name == "jeq" else True
        return None
    if name == "jset":
        both = a.and_(b)
        if both.is_const:
            return bool(both.value)
        if both.umax == 0:
            return False
        return None
    unsigned = {"jgt": (lambda: a.umin > b.umax, lambda: a.umax <= b.umin),
                "jge": (lambda: a.umin >= b.umax, lambda: a.umax < b.umin),
                "jlt": (lambda: a.umax < b.umin, lambda: a.umin >= b.umax),
                "jle": (lambda: a.umax <= b.umin, lambda: a.umin > b.umax)}
    if name in unsigned:
        definitely, definitely_not = unsigned[name]
        if definitely():
            return True
        if definitely_not():
            return False
    return None


# ---------------------------------------------------------------------------
# concrete enumeration over narrowed ranges
# ---------------------------------------------------------------------------
def symbols_of(expr: Expr, into: Optional[Set[Sym]] = None) -> Set[Sym]:
    if into is None:
        into = set()
    if isinstance(expr, Sym):
        into.add(expr)
    elif isinstance(expr, Op):
        for a in expr.args:
            symbols_of(a, into)
    return into


#: boundary values every sampled symbol cycles through
_CORNERS = (0, 1, 2, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000,
            0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x100000000,
            0x7FFFFFFFFFFFFFFF, 0x8000000000000000, _U64,
            0xA5A5A5A5A5A5A5A5)


def sample_envs(syms: Sequence[Sym], seed: int = 0, count: int = 48,
                narrow: Optional[Dict[Sym, Tnum]] = None,
                ) -> Iterable[Dict[Sym, int]]:
    """Yield assignments for *syms*: corner values first, then seeded
    random draws.  When *narrow* provides a tnum for a symbol, samples
    are folded into that tnum's value range (``value | (draw & mask)``)
    — the "narrowed value ranges" of the enumeration fallback."""
    syms = list(syms)
    rng = random.Random(seed)

    def clamp(sym: Sym, draw: int) -> int:
        if narrow is not None and sym in narrow:
            t = narrow[sym]
            return (t.value | (draw & t.mask)) & _U64
        return draw & _U64

    for i in range(count):
        env: Dict[Sym, int] = {}
        for j, sym in enumerate(syms):
            if i < len(_CORNERS):
                # rotate corners across symbols so pairs hit mixed corners
                draw = _CORNERS[(i + j) % len(_CORNERS)]
            else:
                draw = rng.getrandbits(64)
            env[sym] = clamp(sym, draw)
        yield env
        if not syms:
            return


def support_masks(expr: Expr, out_mask: int = _U64,
                  into: Optional[Dict[Sym, int]] = None) -> Dict[Sym, int]:
    """Which bits of which symbols can influence *expr*'s ``out_mask``
    bits.  Conservative (errs toward including bits): a bit absent from
    a symbol's support mask provably never changes the term's value.
    This is what narrows the enumeration fallback's value ranges."""
    if into is None:
        into = {}
    if isinstance(expr, Const) or not out_mask:
        return into
    if isinstance(expr, Sym):
        into[expr] = into.get(expr, 0) | out_mask
        return into
    assert isinstance(expr, Op)
    name, bits, args = expr.op, expr.bits, expr.args
    width_mask = _U32 if bits == 32 else _U64

    def carry_mask(mask: int) -> int:
        # carries/borrows propagate strictly low -> high
        return ((1 << mask.bit_length()) - 1) & width_mask

    if name == "byte":
        value, index = args
        return support_masks(value, (out_mask & 0xFF) << (8 * index.value),
                             into)
    if name in ("be", "le"):
        return support_masks(args[0], (1 << bits) - 1, into)
    if name == "neg":
        return support_masks(args[0], carry_mask(out_mask & width_mask), into)
    out = out_mask & width_mask
    if name in ("add", "sub", "mul"):
        support_masks(args[0], carry_mask(out), into)
        return support_masks(args[1], carry_mask(out), into)
    if name in ("or", "xor"):
        support_masks(args[0], out, into)
        return support_masks(args[1], out, into)
    if name == "and":
        a, b = args
        a_out = out & (b.value if isinstance(b, Const) else width_mask)
        b_out = out & (a.value if isinstance(a, Const) else width_mask)
        support_masks(a, a_out, into)
        return support_masks(b, b_out, into)
    if name in ("lsh", "rsh", "arsh") and isinstance(args[1], Const):
        shift = args[1].value % bits
        if name == "lsh":
            a_out = (out >> shift) & width_mask
        elif name == "rsh":
            a_out = (out << shift) & width_mask
        else:
            a_out = ((out << shift) | (1 << (bits - 1))) & width_mask
        return support_masks(args[0], a_out, into)
    # div/mod, variable shifts, comparisons: every operand bit matters
    for arg in args:
        support_masks(arg, width_mask, into)
    return into


def _bit_subsets(mask: int):
    """All values whose set bits are a subset of *mask* (2^popcount)."""
    value = 0
    while True:
        yield value
        if value == mask:
            return
        value = (value - mask) & mask


#: exhaustive enumeration budget: product of per-symbol ranges
_EXHAUSTIVE_LIMIT = 1 << 12


def _exhaustive_envs(supports: Dict[Sym, int]):
    """Every semantically distinct assignment, when the narrowed ranges
    multiply out under the budget; None when the space is too large."""
    total = 1
    for mask in supports.values():
        total *= 1 << bin(mask).count("1")
        if total > _EXHAUSTIVE_LIMIT:
            return None
    envs: List[Dict[Sym, int]] = [{}]
    for sym, mask in supports.items():
        envs = [{**env, sym: value}
                for env in envs for value in _bit_subsets(mask)]
    return envs


def prove_equal(a: Expr, b: Expr, seed: int = 0, samples: int = 48,
                narrow: Optional[Dict[Sym, Tnum]] = None,
                ) -> Tuple[str, str, Optional[Dict[Sym, int]]]:
    """Try to prove two terms equal for every input.

    Returns ``(status, method, counterexample)``:

    * ``("proved", "symbolic", None)`` — identical after normalization;
    * ``("proved", "enumeration", None)`` — the supports of both terms
      narrow to a small enough range that every semantically distinct
      assignment was enumerated;
    * ``("refuted", method, env)`` — a concrete assignment on which the
      terms evaluate differently (*method* says what found it);
    * ``("checked", "enumeration", None)`` — no proof, but corner +
      random sampling found no difference either.
    """
    na, nb = normalize_deep(a), normalize_deep(b)
    if na == nb:
        return "proved", "symbolic", None

    # narrowed exhaustive enumeration: bits outside a symbol's combined
    # support mask provably cannot affect either side
    supports = support_masks(na)
    support_masks(nb, into=supports)
    envs = _exhaustive_envs(supports)
    if envs is not None:
        for env in envs:
            if evaluate(na, env) != evaluate(nb, env):
                return "refuted", "enumeration", env
        return "proved", "enumeration", None

    ta, tb = expr_tnum(na, narrow), expr_tnum(nb, narrow)
    tnum_refutes = (ta.value ^ tb.value) & ~ta.mask & ~tb.mask & _U64
    syms = sorted(symbols_of(na) | symbols_of(nb), key=repr)
    for env in sample_envs(syms, seed=seed, count=samples, narrow=narrow):
        if evaluate(na, env) != evaluate(nb, env):
            method = "tnum" if tnum_refutes else "enumeration"
            return "refuted", method, env
    # a tnum disagreement without a separating sample means we distrust
    # the abstraction rather than raise a false alarm
    return "checked", "enumeration", None


def normalize_deep(expr: Expr, _memo: Optional[dict] = None) -> Expr:
    """Bottom-up normalization of a whole term.

    Memoized by node identity: symbolic execution builds heavily shared
    DAGs (a register fed back into itself doubles the *tree* each step
    while the DAG grows by one node), so a naive tree recursion would
    be exponential exactly on the programs worth validating."""
    if not isinstance(expr, Op):
        return expr
    if _memo is None:
        _memo = {}
    hit = _memo.get(id(expr))
    if hit is not None:
        return hit
    out = normalize(Op(expr.op, expr.bits,
                       tuple(normalize_deep(a, _memo) for a in expr.args)))
    _memo[id(expr)] = out
    return out


def render(expr: Expr) -> str:
    """Human-readable rendering for certificates and counterexamples."""
    if isinstance(expr, Const):
        return hex(expr.value)
    if isinstance(expr, Sym):
        name = expr.name
        if isinstance(name, tuple):
            if len(name) == 2 and name[0] == "r":
                return f"r{name[1]}"
            if len(name) == 3 and name[0] == "m":
                off = name[2]
                signed = off - (1 << 64) if off >> 63 else off
                return f"mem[{render(name[1])}{signed:+#x}]"
            return ":".join(str(part) if not isinstance(part, (Op, Sym, Const))
                            else render(part) for part in name)
        return str(name)
    assert isinstance(expr, Op)
    inner = ", ".join(render(a) for a in expr.args)
    suffix = "32" if expr.bits == 32 else ""
    return f"{expr.op}{suffix}({inner})"
