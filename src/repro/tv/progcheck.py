"""IR-tier witness validation: whole-function equivalence.

IR passes (constant propagation, DCE, alignment, macro-op fusion,
superword merging) rewrite arbitrary portions of a function, so their
witnesses snapshot the whole textual IR before and after.  The
validator compiles both snapshots to bytecode and tries two tiers:

1. **Symbolic**: execute both programs end to end over the expression
   domain.  Branches are followed only when their condition folds to a
   constant (constant propagation makes many do exactly that) or is
   decided by the tnum abstraction; helper calls become order-sensitive
   *effect events* whose scalar arguments — and, for the map helpers,
   the pointed-to key/value bytes — must prove equal pairwise.  If both
   sides complete, the proof obligation is r0, the effect traces, and
   every non-stack memory byte.  Stack contents at exit are deliberately
   *not* compared: IR DCE legitimately deletes write-only allocas.
   This tier only ever certifies — an inconclusive or failed comparison
   falls through, it never alarms.

2. **Concrete**: run both programs over the shared oracle battery
   (:func:`repro.fuzz.oracle.observe_battery`) — maps, output bytes,
   packet effects, faults.  A divergence here is a genuine
   counterexample, so this is the only IR-tier path that refutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import BpfProgram, Instruction
from ..isa import opcodes as op
from ..isa.helpers import BPF_PSEUDO_MAP_FD
from .expr import Const, Expr, Op, Sym, const, normalize_deep, prove_equal
from .state import SymState, Unsupported, split_addr
from .witness import Certificate, RewriteWitness

_U64 = (1 << 64) - 1

#: helpers the symbolic tier can model: helper id -> number of argument
#: registers actually read, plus which of them are stack/map pointers
#: whose pointed-to bytes must be captured: (args, key_ptr?, value_ptr?)
#: Sizes come from the map spec selected by the fd in r1.
_MAP_LOOKUP, _MAP_UPDATE, _MAP_DELETE = 1, 2, 3
_SCALAR_HELPERS = {
    5: 0,    # ktime_get_ns
    7: 0,    # get_prandom_u32
    8: 0,    # get_smp_processor_id
    14: 0,   # get_current_pid_tgid
    15: 0,   # get_current_uid_gid
    23: 2,   # redirect(ifindex, flags)
    51: 3,   # redirect_map(map, key, flags) — key is a scalar u32
    125: 0,  # ktime_get_boot_ns
}

_STEP_CAP = 4096
_FP_BASE = Sym(("r", 10))


class _ProgramRun:
    """Result of one whole-program symbolic execution."""

    def __init__(self, r0: Expr, trace: List[Tuple], state: SymState):
        self.r0 = r0
        self.trace = trace
        self.state = state


def _map_spec(program: BpfProgram, fd: int):
    specs = list(program.maps.values())
    if not 1 <= fd <= len(specs):
        raise Unsupported(f"helper call with unknown map fd {fd}")
    return specs[fd - 1]


def _pointed_bytes(state: SymState, ptr: Expr, size: int) -> Tuple:
    base, off = split_addr(normalize_deep(ptr))
    return tuple(state.read_byte(base, off + i) for i in range(size))


def run_program_symbolic(program: BpfProgram) -> _ProgramRun:
    """Execute *program* end to end symbolically, or raise Unsupported.

    Conditions must be decidable (constant-folded or tnum-decided);
    helper calls must be in the modeled set.
    """
    from ..core.bytecode_passes.symbolic import SymbolicProgram
    from .expr import tnum_decide

    sym = SymbolicProgram.from_program(program)
    state = SymState()
    trace: List[Tuple] = []
    index = 0
    steps = 0
    n = len(sym.insns)
    while True:
        if index >= n:
            raise Unsupported("control fell off the end of the program")
        item = sym.insns[index]
        insn = item.insn
        steps += 1
        if steps > _STEP_CAP:
            raise Unsupported(f"step cap {_STEP_CAP} exceeded")

        if insn.is_exit:
            return _ProgramRun(state.regs[op.R0], trace, state)
        if insn.is_call:
            _call(program, state, trace, insn)
            index += 1
            continue
        if insn.is_jump:
            if insn.jmp_op == op.BPF_JA:
                index = item.target
                continue
            cond = _condition_expr(state, insn)
            decided = None
            if isinstance(cond, Const):
                decided = bool(cond.value)
            else:
                decided = tnum_decide(cond)
            if decided is None:
                raise Unsupported(f"undecided branch at insn {index}: {insn}")
            index = item.target if decided else index + 1
            continue
        state.step(insn)  # Unsupported propagates
        index += 1


def _condition_expr(state: SymState, insn: Instruction) -> Expr:
    bits = 32 if insn.insn_class == op.BPF_JMP32 else 64
    name = op.JMP_OP_NAMES[insn.jmp_op]
    lhs = state.regs[insn.dst]
    rhs: Expr = const(insn.imm) if insn.uses_imm else state.regs[insn.src]
    return normalize_deep(Op(name, bits, (lhs, rhs)))


def _call(program: BpfProgram, state: SymState, trace: List[Tuple],
          insn: Instruction) -> None:
    helper_id = insn.imm
    call_index = len(trace)
    args = [normalize_deep(state.regs[r]) for r in op.ARG_REGS]

    if helper_id in _SCALAR_HELPERS:
        nargs = _SCALAR_HELPERS[helper_id]
        trace.append(("call", helper_id) + tuple(args[:nargs]))
    elif helper_id in (_MAP_LOOKUP, _MAP_UPDATE, _MAP_DELETE):
        fd_term = args[0]
        if not isinstance(fd_term, Const):
            raise Unsupported("map helper with symbolic map argument")
        spec = _map_spec(program, fd_term.value)
        key = _pointed_bytes(state, args[1], spec.key_size)
        event: Tuple = ("call", helper_id, fd_term.value) + key
        if helper_id == _MAP_UPDATE:
            value = _pointed_bytes(state, args[2], spec.value_size)
            event = event + value + (args[3],)
        trace.append(event)
    else:
        raise Unsupported(f"helper {helper_id} is outside the modeled set")

    # the call clobbers r0-r5; fresh symbols keyed by the call index so
    # aligned traces mint aligned values on both sides
    state.regs[op.R0] = Sym(("ret", call_index))
    for reg in (op.R1, op.R2, op.R3, op.R4, op.R5):
        state.regs[reg] = Sym(("clobber", call_index, reg))


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def _symbolic_verdict(a: _ProgramRun, b: _ProgramRun,
                      seed: int) -> Optional[str]:
    """"proved" when every obligation discharges, else None (defer)."""
    if len(a.trace) != len(b.trace):
        return None
    for ea, eb in zip(a.trace, b.trace):
        if len(ea) != len(eb) or ea[:2] != eb[:2]:
            return None
        for ta, tb in zip(ea[2:], eb[2:]):
            if _prove(ta, tb, seed) != "proved":
                return None
    if _prove(a.r0, b.r0, seed) != "proved":
        return None

    keys = {k for k in a.state.memory if k[0] != _FP_BASE}
    keys |= {k for k in b.state.memory if k[0] != _FP_BASE}
    for base, off in keys:
        from .state import initial_byte

        lhs = a.state.memory.get((base, off), initial_byte(base, off))
        rhs = b.state.memory.get((base, off), initial_byte(base, off))
        if _prove(lhs, rhs, seed) != "proved":
            return None
    return "proved"


def _prove(lhs, rhs, seed: int) -> str:
    if not isinstance(lhs, (Const, Sym, Op)) or \
            not isinstance(rhs, (Const, Sym, Op)):
        return "proved" if lhs == rhs else "checked"
    status, _, _ = prove_equal(lhs, rhs, seed=seed)
    return status


def _concrete_verdict(before: BpfProgram, after: BpfProgram, seed: int,
                      tests: int) -> Tuple[str, Optional[Dict[str, str]], str]:
    """Oracle battery over both programs; a divergence is a genuine
    counterexample."""
    from ..fuzz.oracle import first_divergence, generate_tests, observe_battery

    battery = generate_tests(before, count=tests, seed=seed + 7)
    obs_before = observe_battery(before, battery, seed=seed + 7)
    obs_after = observe_battery(after, battery, seed=seed + 7)
    hit = first_divergence(obs_before, obs_after)
    if hit is None:
        return "checked", None, f"{len(battery)}-test oracle battery agrees"
    test_index, kind = hit
    oa, ob = obs_before[test_index], obs_after[test_index]
    counterexample = {
        "test_index": str(test_index),
        "observable": kind,
        "before": _render_obs(oa),
        "after": _render_obs(ob),
        "ctx": battery[test_index].ctx.hex() or "-",
    }
    if battery[test_index].packet is not None:
        counterexample["packet"] = battery[test_index].packet.hex()
    return "refuted", counterexample, f"{kind} differs on test {test_index}"


def _render_obs(obs) -> str:
    if obs.fault is not None:
        return f"fault={obs.fault}"
    return f"r0={obs.return_value:#x}"


def validate_ir_witness(
    witness: RewriteWitness,
    module=None,
    prog_type=None,
    mcpu: str = "v2",
    ctx_size: int = 64,
    seed: int = 0,
    tests: int = 12,
    compiled: Optional[Dict[str, BpfProgram]] = None,
) -> Certificate:
    """Certificate for one IR-tier pass application.

    *compiled* is an optional text -> program memo shared across the
    witnesses of one compilation (pass N's after-text is pass N+1's
    before-text)."""
    from ..codegen import compile_function
    from ..ir import parse_function

    if witness.before_text == witness.after_text:
        return Certificate(witness.pass_name, witness.tier, witness.kind,
                           witness.point, "identical", "proved",
                           detail="pass reported rewrites but IR text is "
                                  "unchanged")

    def build(text: str) -> BpfProgram:
        if compiled is not None and text in compiled:
            return compiled[text]
        program = compile_function(parse_function(text), module,
                                   prog_type=prog_type, mcpu=mcpu,
                                   ctx_size=ctx_size)
        if compiled is not None:
            compiled[text] = program
        return program

    before = build(witness.before_text)
    after = build(witness.after_text)

    try:
        run_before = run_program_symbolic(before)
        run_after = run_program_symbolic(after)
    except Unsupported as exc:
        verdict, symbolic_note = None, str(exc)
    else:
        verdict = _symbolic_verdict(run_before, run_after, seed)
        symbolic_note = "symbolic obligations did not all discharge"

    if verdict == "proved":
        return Certificate(witness.pass_name, witness.tier, witness.kind,
                           witness.point, "symbolic", "proved",
                           detail="r0, effect trace, and non-stack memory "
                                  "proved equal on all paths taken")

    status, counterexample, detail = _concrete_verdict(before, after,
                                                       seed, tests)
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, "concrete", status,
                       counterexample=counterexample,
                       detail=f"{detail} (symbolic tier: {symbolic_note})")
