"""Translation validation: per-pass semantic equivalence certificates.

Every Merlin pass application — constant propagation/DCE, superword
merging, alignment inference, and macro-op fusion at the IR tier; code
compaction, peephole optimization and store-immediate folding at the
bytecode tier — reports a *rewrite witness* describing the region it
touched and the mapping it claims.  The validator re-derives the safety
argument independently: symbolic execution over a bitvector expression
domain (checked against the verifier's tnum abstraction), exhaustive
concrete enumeration over support-narrowed value ranges when symbolic
terms do not normalize, and the shared fuzzing oracle as the IR tier's
concrete fallback.  Each witness yields a :class:`Certificate`; a
non-certified application raises :class:`TranslationValidationError`
naming the pass, the program point, and a counterexample state.

Import discipline: this package root (and :mod:`repro.tv.witness`,
:mod:`repro.tv.validator`) is imported *by* ``repro.core`` pass modules,
so it must not import ``repro.core`` at module level.  The tier checkers
(:mod:`repro.tv.regioncheck`, :mod:`repro.tv.progcheck`) do depend on
core and are loaded lazily by the validator.
"""

from .expr import Const, Op, Sym, evaluate, normalize_deep, prove_equal
from .state import SymState, Unsupported, run_region
from .validator import CertificateReport, TranslationValidator, raise_on_alarm
from .witness import (
    Certificate,
    RewriteWitness,
    Snapshot,
    TranslationValidationError,
    WitnessRecorder,
)

__all__ = [
    "Certificate",
    "CertificateReport",
    "Const",
    "Op",
    "RewriteWitness",
    "Snapshot",
    "Sym",
    "SymState",
    "TranslationValidationError",
    "TranslationValidator",
    "Unsupported",
    "WitnessRecorder",
    "evaluate",
    "normalize_deep",
    "prove_equal",
    "raise_on_alarm",
    "run_region",
]
