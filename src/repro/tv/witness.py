"""Rewrite witnesses and equivalence certificates.

Every pass application reports what it did as a :class:`RewriteWitness`
through the recorder hook on :class:`repro.core.pass_manager`'s pass
base classes; the validator then re-derives the safety argument
independently and issues a :class:`Certificate` per witness.

Witness kinds:

``region``
    A straightline instruction range was rewritten in place.  Carries
    the before/after instruction lists, the region bounds (logical
    indices into the pre-rewrite program), and the registers the pass
    claims are dead afterwards (``clobbered``).
``dead-def``
    An instruction whose only effect is defining never-read registers
    was deleted.
``jump-thread``
    An unconditional jump to the immediately-following instruction was
    deleted.
``ir-pass``
    A whole-function IR-tier transformation; carries the before/after
    textual IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import Instruction

#: one pre-rewrite program entry: (instruction, logical jump target,
#: deleted flag) — enough to rebuild the SymbolicProgram for claim
#: rechecking
Snapshot = Tuple[Tuple[Instruction, Optional[int], bool], ...]


@dataclass
class RewriteWitness:
    """What one rewrite claims it did."""

    pass_name: str
    tier: str  # "ir" | "bytecode"
    kind: str  # "region" | "dead-def" | "jump-thread" | "ir-pass"
    #: logical index range [first, last] into the pre-rewrite program
    first: int = 0
    last: int = 0
    #: slot offset of ``first`` in the pre-rewrite encoding (reporting)
    slot: int = 0
    before_insns: List[Instruction] = field(default_factory=list)
    after_insns: List[Instruction] = field(default_factory=list)
    #: registers the pass claims are dead after the region
    clobbered: Tuple[int, ...] = ()
    #: full pre-rewrite program state, for independent claim rechecks
    snapshot: Snapshot = ()
    #: IR tier: textual function before/after
    before_text: str = ""
    after_text: str = ""
    note: str = ""

    @property
    def point(self) -> str:
        """Human-readable program point for reports and errors."""
        if self.kind == "ir-pass":
            return f"ir:{self.pass_name}"
        return f"insn {self.first} (slot {self.slot})"


@dataclass
class Certificate:
    """The validator's verdict on one witness."""

    pass_name: str
    tier: str
    kind: str
    point: str
    #: "symbolic" | "enumeration" | "tnum" | "structural" | "concrete"
    #: | "identical"
    method: str
    #: "proved" (equivalence established), "checked" (no proof, but no
    #: counterexample under narrowed sampling either), "refuted"
    status: str
    counterexample: Optional[Dict[str, str]] = None
    detail: str = ""

    @property
    def certified(self) -> bool:
        return self.status in ("proved", "checked")

    def to_dict(self) -> dict:
        out = {
            "pass": self.pass_name,
            "tier": self.tier,
            "kind": self.kind,
            "point": self.point,
            "method": self.method,
            "status": self.status,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.counterexample:
            out["counterexample"] = dict(self.counterexample)
        return out


class TranslationValidationError(Exception):
    """A pass application failed its equivalence certificate."""

    def __init__(self, pass_name: str, tier: str, point: str,
                 counterexample: Optional[Dict[str, str]] = None,
                 detail: str = "",
                 certificate: Optional[Certificate] = None):
        self.pass_name = pass_name
        self.tier = tier
        self.point = point
        self.counterexample = counterexample or {}
        self.detail = detail
        self.certificate = certificate
        message = (f"pass {pass_name!r} ({tier} tier) is not semantics-"
                   f"preserving at {point}")
        if detail:
            message += f": {detail}"
        if counterexample:
            rendered = ", ".join(f"{k}={v}"
                                 for k, v in sorted(counterexample.items()))
            message += f" [counterexample: {rendered}]"
        super().__init__(message)


class WitnessRecorder:
    """Collects witnesses as a pass runs; attached via the pass-manager
    hook (``BytecodePass.recorder``)."""

    def __init__(self) -> None:
        self.witnesses: List[RewriteWitness] = []

    def emit(self, witness: RewriteWitness) -> None:
        self.witnesses.append(witness)

    def __len__(self) -> int:
        return len(self.witnesses)
