"""Certificate orchestration and aggregate reporting.

:class:`TranslationValidator` turns the witnesses one compilation
emitted into :class:`~repro.tv.witness.Certificate` objects, dispatching
to the bytecode-tier region checker or the IR-tier whole-function
checker per witness.  :class:`CertificateReport` aggregates the
certificates of a whole suite or fuzz corpus into the JSON document the
``repro tv`` command writes.

The tier checkers are imported lazily: this module (and the ``repro.tv``
package root) must stay importable from inside ``repro.core`` pass
modules without creating an import cycle.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .witness import Certificate, RewriteWitness, TranslationValidationError


class TranslationValidator:
    """Validates rewrite witnesses and issues certificates."""

    def __init__(self, seed: int = 0, tests: int = 12):
        self.seed = seed
        #: oracle-battery size for the IR tier's concrete fallback
        self.tests = tests

    def validate_witness(
        self,
        witness: RewriteWitness,
        module=None,
        prog_type=None,
        mcpu: str = "v2",
        ctx_size: int = 64,
        compiled: Optional[Dict] = None,
    ) -> Certificate:
        """Certificate for a single witness (either tier)."""
        if witness.tier == "ir":
            from .progcheck import validate_ir_witness

            return validate_ir_witness(
                witness, module=module, prog_type=prog_type, mcpu=mcpu,
                ctx_size=ctx_size, seed=self.seed, tests=self.tests,
                compiled=compiled,
            )
        from .regioncheck import validate_bytecode_witness

        return validate_bytecode_witness(witness, seed=self.seed)

    def validate_all(
        self,
        witnesses: Sequence[RewriteWitness],
        module=None,
        prog_type=None,
        mcpu: str = "v2",
        ctx_size: int = 64,
    ) -> List[Certificate]:
        """Certificates for every witness of one compilation.

        IR-tier witnesses of the same compilation share a text->program
        memo: pass N's after-text is pass N+1's before-text.
        """
        compiled: Dict = {}
        return [
            self.validate_witness(w, module=module, prog_type=prog_type,
                                  mcpu=mcpu, ctx_size=ctx_size,
                                  compiled=compiled)
            for w in witnesses
        ]


def raise_on_alarm(certificates: Sequence[Certificate]) -> None:
    """Raise :class:`TranslationValidationError` for the first
    non-certified pass application, if any."""
    for cert in certificates:
        if not cert.certified:
            raise TranslationValidationError(
                cert.pass_name, cert.tier, cert.point,
                counterexample=cert.counterexample,
                detail=cert.detail, certificate=cert,
            )


class CertificateReport:
    """Aggregate certificates across many programs (suite / corpus)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.programs: List[Tuple[str, List[Certificate]]] = []

    def add(self, name: str, certificates: Sequence[Certificate]) -> None:
        self.programs.append((name, list(certificates)))

    # ------------------------------------------------------------ queries
    @property
    def total_witnesses(self) -> int:
        return sum(len(certs) for _, certs in self.programs)

    @property
    def alarms(self) -> List[Tuple[str, Certificate]]:
        return [
            (name, cert)
            for name, certs in self.programs
            for cert in certs
            if not cert.certified
        ]

    @property
    def clean(self) -> bool:
        return not self.alarms

    def counts(self, attr: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, certs in self.programs:
            for cert in certs:
                key = getattr(cert, attr)
                out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    # ----------------------------------------------------------- document
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "summary": {
                "programs": len(self.programs),
                "pass_applications": self.total_witnesses,
                "alarms": len(self.alarms),
                "clean": self.clean,
                "by_status": self.counts("status"),
                "by_method": self.counts("method"),
                "by_pass": self.counts("pass_name"),
            },
            "programs": [
                {
                    "name": name,
                    "certified": all(c.certified for c in certs),
                    "certificates": [c.to_dict() for c in certs],
                }
                for name, certs in self.programs
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
