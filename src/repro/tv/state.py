"""Symbolic machine state: registers and byte-granular memory as terms.

The region validator executes the before/after instruction sequences of
a rewrite witness over a :class:`SymState` whose registers start as free
symbols and whose memory is an initially-unknown byte store.  Both
executions mint *structurally identical* symbols for identical initial
quantities (``Sym(("r", 3))``, ``Sym(("m", base, off))``), so two states
are equivalent exactly when their terms prove equal pairwise.

Aliasing discipline: an address splits into ``(base term, constant
offset)``; distinct base terms are assumed to address disjoint objects.
That matches the assumption every Merlin bytecode pass already makes
(`r10` never aliases another live pointer unless it visibly escapes,
which the passes bail on), so the validator is exactly as strong as the
claims it has to check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa import Instruction
from ..isa import opcodes as op
from .expr import Const, Expr, Op, Sym, const, expr_size, mkop

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: per-term growth bound: a register/byte term larger than this sends
#: the run to the concrete tier.  Loops that fold a register into
#: itself double the term every iteration, so without a bound the
#: downstream equality/normalization work explodes on exactly the
#: programs worth validating.
TERM_CAP = 1 << 14

#: ALU opcode bits -> expression operator name
ALU_NAME_BY_OP = {code: name for name, code in op.ALU_OP_BY_NAME.items()}


class Unsupported(Exception):
    """An instruction outside the symbolic executor's fragment.

    Region checking treats this as "cannot certify symbolically", never
    as a failure: control transfers, calls and atomics fall back to the
    concrete tier.
    """


def _trunc32(expr: Expr) -> Expr:
    return mkop("and", 64, expr, Const(_U32))


def initial_reg(index: int) -> Sym:
    return Sym(("r", index))


def initial_byte(base: Expr, off: int) -> Sym:
    return Sym(("m", base, off))


def split_addr(addr: Expr) -> Tuple[Expr, int]:
    """Split a normalized address term into (base, constant offset)."""
    if (isinstance(addr, Op) and addr.op == "add" and addr.bits == 64
            and isinstance(addr.args[1], Const)):
        return addr.args[0], addr.args[1].value
    if isinstance(addr, Const):
        return Const(0), addr.value
    return addr, 0


class SymState:
    """Registers + written-memory-bytes, all as expression terms."""

    def __init__(self) -> None:
        self.regs: List[Expr] = [initial_reg(i) for i in range(11)]
        #: (base term, u64 offset) -> byte term; holds *writes* only —
        #: an absent key still denotes its initial symbol
        self.memory: Dict[Tuple[Expr, int], Expr] = {}

    # ------------------------------------------------------------ memory
    def read_byte(self, base: Expr, off: int) -> Expr:
        key = (base, off & _U64)
        got = self.memory.get(key)
        if got is not None:
            return got
        return initial_byte(key[0], key[1])

    def write_byte(self, base: Expr, off: int, value: Expr) -> None:
        if expr_size(value) > TERM_CAP:
            raise Unsupported(
                f"term for mem[{base}+{off:#x}] exceeds the "
                f"{TERM_CAP}-node cap")
        self.memory[(base, off & _U64)] = value

    def load(self, base: Expr, off: int, size: int) -> Expr:
        """Little-endian combine of *size* bytes starting at (base, off)."""
        value: Expr = self.read_byte(base, off)
        for i in range(1, size):
            value = mkop("or", 64,
                         value,
                         mkop("lsh", 64, self.read_byte(base, off + i),
                              Const(8 * i)))
        return value

    def store(self, base: Expr, off: int, size: int, value: Expr) -> None:
        for i in range(size):
            self.write_byte(base, off + i,
                            mkop("byte", 64, value, Const(i)))

    # --------------------------------------------------------------- step
    def step(self, insn: Instruction) -> None:
        """Execute one straightline instruction symbolically.

        Mirrors :meth:`repro.vm.interpreter.Machine._alu` /
        ``_store`` exactly; raises :class:`Unsupported` for control
        transfers, calls, atomics, and terms past :data:`TERM_CAP`.
        """
        self._step(insn)
        if insn.is_alu and expr_size(self.regs[insn.dst]) > TERM_CAP:
            raise Unsupported(
                f"term for r{insn.dst} exceeds the {TERM_CAP}-node cap")

    def _step(self, insn: Instruction) -> None:
        if insn.is_ld_imm64:
            # the VM loads the raw immediate for plain and map-fd forms
            self.regs[insn.dst] = const(insn.imm)
            return
        if insn.is_alu:
            self._alu(insn)
            return
        if insn.is_load:
            base, off = split_addr(self.regs[insn.src])
            self.regs[insn.dst] = self.load(base, off + insn.off,
                                            insn.size_bytes)
            return
        if insn.is_atomic:
            self._atomic(insn)
            return
        if insn.is_store:
            base, off = split_addr(self.regs[insn.dst])
            if insn.is_store_imm:
                value: Expr = const(insn.imm)
            else:
                value = self.regs[insn.src]
            self.store(base, off + insn.off, insn.size_bytes, value)
            return
        raise Unsupported(f"cannot execute symbolically: {insn}")

    def _atomic(self, insn: Instruction) -> None:
        if insn.imm == op.BPF_CMPXCHG:
            raise Unsupported("cmpxchg needs a conditional term")
        base, off = split_addr(self.regs[insn.dst])
        size = insn.size_bytes
        old = self.load(base, off + insn.off, size)
        operand = mkop("and", 64, self.regs[insn.src],
                       Const((1 << (size * 8)) - 1))
        aop = insn.imm & ~op.BPF_FETCH
        if insn.imm == op.BPF_XCHG:
            new = operand
        elif aop == op.BPF_ATOMIC_ADD:
            new = mkop("add", 64, old, operand)
        elif aop == op.BPF_ATOMIC_AND:
            new = mkop("and", 64, old, operand)
        elif aop == op.BPF_ATOMIC_OR:
            new = mkop("or", 64, old, operand)
        elif aop == op.BPF_ATOMIC_XOR:
            new = mkop("xor", 64, old, operand)
        else:
            raise Unsupported(f"unsupported atomic {insn.imm:#x}")
        self.store(base, off + insn.off, size, new)
        if insn.imm & op.BPF_FETCH:
            self.regs[insn.src] = old

    def _alu(self, insn: Instruction) -> None:
        bits = 32 if insn.is_alu32 else 64
        aop = insn.alu_op
        dst = self.regs[insn.dst]
        if insn.uses_imm:
            operand: Expr = const(insn.imm)
        else:
            operand = self.regs[insn.src]

        if aop == op.BPF_MOV:
            result = operand if bits == 64 else _trunc32(operand)
        elif aop == op.BPF_NEG:
            result = mkop("neg", bits, dst)
        elif aop == op.BPF_END:
            # swap width comes from the immediate; the operand is first
            # truncated to the op width like any other ALU instruction
            inner = dst if bits == 64 else _trunc32(dst)
            kind = "be" if (insn.opcode & op.SRC_MASK) == op.BPF_X else "le"
            swapped = mkop(kind, insn.imm, inner)
            result = swapped if bits == 64 else _trunc32(swapped)
        else:
            name = ALU_NAME_BY_OP.get(aop)
            if name is None:
                raise Unsupported(f"unknown ALU op {aop:#x}")
            result = mkop(name, bits, dst, operand)
        self.regs[insn.dst] = result

    # ------------------------------------------------------------ queries
    def written_keys(self) -> List[Tuple[Expr, int]]:
        return list(self.memory)


def run_region(insns: List[Instruction]) -> SymState:
    """Execute a straightline instruction list from the initial state."""
    state = SymState()
    for insn in insns:
        state.step(insn)
    return state
