"""Bytecode-tier witness validation.

Every bytecode witness carries a snapshot of the whole pre-rewrite
program, so the validator re-derives each claim independently of the
pass that made it:

* ``region`` — recheck that the region really is straightline and that
  each claimed-clobbered register really is dead afterwards (fresh
  :class:`BytecodeAnalysis` on the snapshot), then symbolically execute
  the before/after instruction lists from a common initial state and
  prove every non-clobbered register and every written memory byte
  equal (:func:`repro.tv.expr.prove_equal`).
* ``dead-def`` — recheck the deleted instruction is side-effect-free
  and that everything it defines is dead.
* ``jump-thread`` — recheck the deleted jump resolved to the
  instruction that now falls through.

Alarm policy: a ``refuted`` certificate always carries a *concrete*
counterexample (a register/memory assignment under which the two
regions compute different states) or a failed structural claim that the
rewrite visibly depends on.  Inconclusive symbolic results degrade to
``checked``, never to an alarm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.bytecode_passes.analysis import BytecodeAnalysis
from ..core.bytecode_passes.symbolic import SymInsn, SymbolicProgram
from ..isa import Instruction
from ..isa import opcodes as op
from .expr import Sym, evaluate, prove_equal, render
from .state import SymState, Unsupported, initial_byte, run_region
from .witness import Certificate, RewriteWitness, Snapshot

_U64 = (1 << 64) - 1


def rebuild(snapshot: Snapshot) -> SymbolicProgram:
    """Reconstruct the pre-rewrite SymbolicProgram from a witness."""
    return SymbolicProgram(
        [SymInsn(insn, target, deleted) for insn, target, deleted in snapshot]
    )


def _refuted(witness: RewriteWitness, method: str, detail: str,
             counterexample: Optional[Dict[str, str]] = None) -> Certificate:
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, "refuted",
                       counterexample=counterexample, detail=detail)


def _proved(witness: RewriteWitness, method: str,
            detail: str = "") -> Certificate:
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, "proved", detail=detail)


def validate_bytecode_witness(witness: RewriteWitness,
                              seed: int = 0) -> Certificate:
    """Issue a certificate for one bytecode-tier rewrite witness."""
    if witness.kind == "region":
        return _validate_region(witness, seed)
    if witness.kind == "dead-def":
        return _validate_dead_def(witness)
    if witness.kind == "jump-thread":
        return _validate_jump_thread(witness)
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, "structural", "checked",
                       detail=f"unknown witness kind {witness.kind!r}")


# ---------------------------------------------------------------------------
# structural kinds
# ---------------------------------------------------------------------------
def _validate_jump_thread(witness: RewriteWitness) -> Certificate:
    sym = rebuild(witness.snapshot)
    item = sym.insns[witness.first]
    insn = item.insn
    if not (insn.is_jump and insn.jmp_op == op.BPF_JA
            and not insn.is_exit and not insn.is_call):
        return _refuted(witness, "structural",
                        f"deleted instruction is not a plain jump: {insn}")
    resolved = item.target
    if resolved is None:
        return _refuted(witness, "structural", "jump has no recorded target")
    while resolved < len(sym.insns) and sym.insns[resolved].deleted:
        resolved += 1
    if resolved != sym.next_live(witness.first):
        return _refuted(
            witness, "structural",
            f"jump resolves to insn {resolved}, not the fall-through "
            f"{sym.next_live(witness.first)} — deleting it redirects "
            f"control flow")
    return _proved(witness, "structural",
                   "jump target is the fall-through instruction")


def _validate_dead_def(witness: RewriteWitness) -> Certificate:
    sym = rebuild(witness.snapshot)
    analysis = BytecodeAnalysis(sym)
    insn = sym.insns[witness.first].insn
    if insn.is_memory or insn.is_call or insn.is_jump or insn.is_exit:
        return _refuted(witness, "structural",
                        f"deleted instruction has side effects: {insn}")
    is_self_move = (insn.is_alu and insn.alu_op == op.BPF_MOV
                    and not insn.uses_imm and insn.dst == insn.src
                    and insn.is_alu64)
    if is_self_move:
        return _proved(witness, "structural", "64-bit self-move is a no-op")
    defs = insn.defs()
    if not defs:
        return _refuted(witness, "structural",
                        f"instruction defines nothing deletable: {insn}")
    for reg in defs:
        if not analysis.reg_dead_after(witness.first, reg):
            return _refuted(
                witness, "structural",
                f"r{reg} is read after insn {witness.first} — the deleted "
                f"definition was live")
    return _proved(witness, "structural",
                   "defined registers are dead; no side effects")


# ---------------------------------------------------------------------------
# region equivalence
# ---------------------------------------------------------------------------
def _validate_region(witness: RewriteWitness, seed: int) -> Certificate:
    sym = rebuild(witness.snapshot)
    analysis = BytecodeAnalysis(sym)

    if not analysis.straightline(witness.first, witness.last):
        return _refuted(
            witness, "structural",
            "rewritten region is not straightline — a branch can enter or "
            "leave it mid-way")
    for reg in witness.clobbered:
        if not analysis.reg_dead_after(witness.last, reg):
            return _refuted(
                witness, "structural",
                f"r{reg} is claimed clobbered but is read after insn "
                f"{witness.last}")

    try:
        before = run_region(witness.before_insns)
        after = run_region(witness.after_insns)
    except Unsupported as exc:
        return Certificate(witness.pass_name, witness.tier, witness.kind,
                           witness.point, "structural", "checked",
                           detail=f"outside the symbolic fragment: {exc}")
    return compare_states(witness, before, after, seed)


def compare_states(witness: RewriteWitness, before: SymState,
                   after: SymState, seed: int) -> Certificate:
    """Prove the two final states equal modulo the clobber set."""
    clobbered = set(witness.clobbered)
    goals: List[Tuple[str, object, object]] = []
    for reg in range(11):
        if reg in clobbered:
            continue
        if before.regs[reg] == after.regs[reg]:
            continue  # cheap structural pre-filter
        goals.append((f"r{reg}", before.regs[reg], after.regs[reg]))
    keys = set(before.memory) | set(after.memory)
    for base, off in sorted(keys, key=lambda k: (repr(k[0]), k[1])):
        lhs = before.memory.get((base, off), initial_byte(base, off))
        rhs = after.memory.get((base, off), initial_byte(base, off))
        if lhs == rhs:
            continue
        goals.append((render(initial_byte(base, off)), lhs, rhs))

    methods = set()
    checked = False
    for where, lhs, rhs in goals:
        status, method, env = prove_equal(lhs, rhs, seed=seed)
        methods.add(method)
        if status == "refuted":
            counterexample = _describe_counterexample(where, lhs, rhs, env)
            return _refuted(
                witness, method,
                f"{where} differs between the original and rewritten "
                f"region", counterexample)
        if status == "checked":
            checked = True

    method = ("symbolic" if not methods or methods == {"symbolic"}
              else "enumeration")
    status = "checked" if checked else "proved"
    detail = (f"{len(goals)} non-trivial goal(s)" if goals
              else "states are structurally identical")
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, status, detail=detail)


def _describe_counterexample(where: str, lhs, rhs,
                             env: Optional[Dict[Sym, int]]
                             ) -> Dict[str, str]:
    env = env or {}
    out = {"location": where}
    for sym, value in sorted(env.items(), key=lambda kv: render(kv[0])):
        out[render(sym)] = hex(value)
    out["before"] = hex(evaluate(lhs, env))
    out["after"] = hex(evaluate(rhs, env))
    return out
