"""Bytecode-tier witness validation.

Every bytecode witness carries a snapshot of the whole pre-rewrite
program, so the validator re-derives each claim independently of the
pass that made it:

* ``region`` — recheck that the region really is straightline and that
  each claimed-clobbered register really is dead afterwards (fresh
  :class:`BytecodeAnalysis` on the snapshot), then symbolically execute
  the before/after instruction lists from a common initial state and
  prove every non-clobbered register and every written memory byte
  equal (:func:`repro.tv.expr.prove_equal`).
* ``dead-def`` — recheck the deleted instruction is side-effect-free
  and that everything it defines is dead.
* ``jump-thread`` — recheck the deleted jump resolved to the
  instruction that now falls through.

Alarm policy: a ``refuted`` certificate always carries a *concrete*
counterexample (a register/memory assignment under which the two
regions compute different states) or a failed structural claim that the
rewrite visibly depends on.  Inconclusive symbolic results degrade to
``checked``, never to an alarm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.bytecode_passes.analysis import BytecodeAnalysis
from ..core.bytecode_passes.symbolic import SymInsn, SymbolicProgram
from ..isa import Instruction
from ..isa import opcodes as op
from .expr import Sym, evaluate, prove_equal, render
from .state import SymState, Unsupported, initial_byte, run_region
from .witness import Certificate, RewriteWitness, Snapshot

_U64 = (1 << 64) - 1


def rebuild(snapshot: Snapshot) -> SymbolicProgram:
    """Reconstruct the pre-rewrite SymbolicProgram from a witness."""
    return SymbolicProgram(
        [SymInsn(insn, target, deleted) for insn, target, deleted in snapshot]
    )


def _refuted(witness: RewriteWitness, method: str, detail: str,
             counterexample: Optional[Dict[str, str]] = None) -> Certificate:
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, "refuted",
                       counterexample=counterexample, detail=detail)


def _proved(witness: RewriteWitness, method: str,
            detail: str = "") -> Certificate:
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, "proved", detail=detail)


def validate_bytecode_witness(witness: RewriteWitness,
                              seed: int = 0) -> Certificate:
    """Issue a certificate for one bytecode-tier rewrite witness."""
    if witness.kind == "region":
        return _validate_region(witness, seed)
    if witness.kind == "dead-def":
        return _validate_dead_def(witness)
    if witness.kind == "jump-thread":
        return _validate_jump_thread(witness)
    if witness.kind == "layout":
        return _validate_layout(witness)
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, "structural", "checked",
                       detail=f"unknown witness kind {witness.kind!r}")


# ---------------------------------------------------------------------------
# structural kinds
# ---------------------------------------------------------------------------
def _validate_jump_thread(witness: RewriteWitness) -> Certificate:
    sym = rebuild(witness.snapshot)
    item = sym.insns[witness.first]
    insn = item.insn
    if not (insn.is_jump and insn.jmp_op == op.BPF_JA
            and not insn.is_exit and not insn.is_call):
        return _refuted(witness, "structural",
                        f"deleted instruction is not a plain jump: {insn}")
    resolved = item.target
    if resolved is None:
        return _refuted(witness, "structural", "jump has no recorded target")
    while resolved < len(sym.insns) and sym.insns[resolved].deleted:
        resolved += 1
    if resolved != sym.next_live(witness.first):
        return _refuted(
            witness, "structural",
            f"jump resolves to insn {resolved}, not the fall-through "
            f"{sym.next_live(witness.first)} — deleting it redirects "
            f"control flow")
    return _proved(witness, "structural",
                   "jump target is the fall-through instruction")


def _validate_dead_def(witness: RewriteWitness) -> Certificate:
    sym = rebuild(witness.snapshot)
    analysis = BytecodeAnalysis(sym)
    insn = sym.insns[witness.first].insn
    if insn.is_memory or insn.is_call or insn.is_jump or insn.is_exit:
        return _refuted(witness, "structural",
                        f"deleted instruction has side effects: {insn}")
    is_self_move = (insn.is_alu and insn.alu_op == op.BPF_MOV
                    and not insn.uses_imm and insn.dst == insn.src
                    and insn.is_alu64)
    if is_self_move:
        return _proved(witness, "structural", "64-bit self-move is a no-op")
    defs = insn.defs()
    if not defs:
        return _refuted(witness, "structural",
                        f"instruction defines nothing deletable: {insn}")
    for reg in defs:
        if not analysis.reg_dead_after(witness.first, reg):
            return _refuted(
                witness, "structural",
                f"r{reg} is read after insn {witness.first} — the deleted "
                f"definition was live")
    return _proved(witness, "structural",
                   "defined registers are dead; no side effects")


def _is_plain_ja(insn: Instruction) -> bool:
    return (insn.is_jump and not insn.is_call and not insn.is_exit
            and insn.jmp_op == op.BPF_JA)


def _is_cond_jump(insn: Instruction) -> bool:
    return (insn.is_jump and not insn.is_call and not insn.is_exit
            and insn.jmp_op != op.BPF_JA)


def _resolve_ja(sym: SymbolicProgram, index: Optional[int]) -> Tuple[str,
                                                                     int]:
    """Follow unconditional jumps until a real instruction.

    Returns ``("insn", i)``, ``("end", _)`` for one-past-the-end, or
    ``("spin", _)`` for a cycle made only of ``ja`` instructions (both
    sides then burn their instruction budget without observable effect).
    """
    n = len(sym.insns)
    seen = set()
    while True:
        if index is None or index >= n:
            return "end", n
        if index in seen:
            return "spin", index
        insn = sym.insns[index].insn
        if not _is_plain_ja(insn):
            return "insn", index
        seen.add(index)
        index = sym.insns[index].target


def _validate_layout(witness: RewriteWitness) -> Certificate:
    """Prove a re-layout behavior-preserving by bisimulation.

    Walks the before/after programs in lock-step from their entries,
    treating unconditional jumps as transparent (layout freely inserts
    and removes them).  At every matched pair, non-branch instructions
    must be identical, and conditional branches must be identical or
    complementary with swapped successors (straightening).  Since both
    programs are deterministic and every observable operation (ALU,
    memory, helper calls, exits, branch decisions) is matched 1:1, the
    two programs compute identical results on every input — only perf
    counters (and budget-fault timing on ``ja``-heavy paths) may differ,
    which is exactly the layout contract.
    """
    from ..core.bytecode_passes.layout import invert_condition
    from ..isa import BpfProgram

    before = rebuild(witness.snapshot)
    if any(item.deleted for item in before.insns):
        return _refuted(witness, "structural",
                        "layout witness snapshot contains deletions")
    try:
        after = SymbolicProgram.from_program(
            BpfProgram(witness.pass_name, list(witness.after_insns)))
    except Exception as exc:
        return _refuted(witness, "structural",
                        f"after-program does not relocate: {exc}")

    nb, na = len(before.insns), len(after.insns)
    agenda: List[Tuple[Optional[int], Optional[int]]] = [(0, 0)]
    matched = set()
    while agenda:
        raw_b, raw_a = agenda.pop()
        kind_b, b = _resolve_ja(before, raw_b)
        kind_a, a = _resolve_ja(after, raw_a)
        if kind_b != kind_a:
            return _refuted(
                witness, "structural",
                f"control flow diverges: before reaches {kind_b} at "
                f"{b}, after reaches {kind_a} at {a}")
        if kind_b != "insn":
            continue  # both ended, or both spin in a ja-only cycle
        if (b, a) in matched:
            continue
        matched.add((b, a))
        ib, ia = before.insns[b].insn, after.insns[a].insn
        if _is_cond_jump(ib) or _is_cond_jump(ia):
            if not (_is_cond_jump(ib) and _is_cond_jump(ia)):
                return _refuted(
                    witness, "structural",
                    f"before insn {b} and after insn {a} disagree on "
                    f"being a conditional branch")
            tb = before.insns[b].target
            ta = after.insns[a].target
            norm_b, norm_a = ib.with_(off=0), ia.with_(off=0)
            if norm_b == norm_a:
                agenda.append((tb, ta))
                agenda.append((b + 1, a + 1))
            elif invert_condition(norm_b) == norm_a:
                agenda.append((tb, a + 1))   # taken arm falls through now
                agenda.append((b + 1, ta))   # fall-through arm is the jump
            else:
                return _refuted(
                    witness, "structural",
                    f"condition at before insn {b} is neither preserved "
                    f"nor inverted at after insn {a}")
        else:
            if ib != ia:
                return _refuted(
                    witness, "structural",
                    f"instruction differs: before insn {b} ({ib}) vs "
                    f"after insn {a} ({ia})")
            if not ib.is_exit:
                agenda.append((b + 1, a + 1))
    return _proved(
        witness, "structural",
        f"lock-step bisimulation over {len(matched)} instruction "
        f"pair(s); jumps transparent, conditions preserved up to "
        f"inversion")


# ---------------------------------------------------------------------------
# region equivalence
# ---------------------------------------------------------------------------
def _validate_region(witness: RewriteWitness, seed: int) -> Certificate:
    sym = rebuild(witness.snapshot)
    analysis = BytecodeAnalysis(sym)

    if not analysis.straightline(witness.first, witness.last):
        return _refuted(
            witness, "structural",
            "rewritten region is not straightline — a branch can enter or "
            "leave it mid-way")
    for reg in witness.clobbered:
        if not analysis.reg_dead_after(witness.last, reg):
            return _refuted(
                witness, "structural",
                f"r{reg} is claimed clobbered but is read after insn "
                f"{witness.last}")

    try:
        before = run_region(witness.before_insns)
        after = run_region(witness.after_insns)
    except Unsupported as exc:
        return Certificate(witness.pass_name, witness.tier, witness.kind,
                           witness.point, "structural", "checked",
                           detail=f"outside the symbolic fragment: {exc}")
    return compare_states(witness, before, after, seed)


def compare_states(witness: RewriteWitness, before: SymState,
                   after: SymState, seed: int) -> Certificate:
    """Prove the two final states equal modulo the clobber set."""
    clobbered = set(witness.clobbered)
    goals: List[Tuple[str, object, object]] = []
    for reg in range(11):
        if reg in clobbered:
            continue
        if before.regs[reg] == after.regs[reg]:
            continue  # cheap structural pre-filter
        goals.append((f"r{reg}", before.regs[reg], after.regs[reg]))
    keys = set(before.memory) | set(after.memory)
    for base, off in sorted(keys, key=lambda k: (repr(k[0]), k[1])):
        lhs = before.memory.get((base, off), initial_byte(base, off))
        rhs = after.memory.get((base, off), initial_byte(base, off))
        if lhs == rhs:
            continue
        goals.append((render(initial_byte(base, off)), lhs, rhs))

    methods = set()
    checked = False
    for where, lhs, rhs in goals:
        status, method, env = prove_equal(lhs, rhs, seed=seed)
        methods.add(method)
        if status == "refuted":
            counterexample = _describe_counterexample(where, lhs, rhs, env)
            return _refuted(
                witness, method,
                f"{where} differs between the original and rewritten "
                f"region", counterexample)
        if status == "checked":
            checked = True

    method = ("symbolic" if not methods or methods == {"symbolic"}
              else "enumeration")
    status = "checked" if checked else "proved"
    detail = (f"{len(goals)} non-trivial goal(s)" if goals
              else "states are structurally identical")
    return Certificate(witness.pass_name, witness.tier, witness.kind,
                       witness.point, method, status, detail=detail)


def _describe_counterexample(where: str, lhs, rhs,
                             env: Optional[Dict[Sym, int]]
                             ) -> Dict[str, str]:
    env = env or {}
    out = {"location": where}
    for sym, value in sorted(env.items(), key=lambda kv: render(kv[0])):
        out[render(sym)] = hex(value)
    out["before"] = hex(evaluate(lhs, env))
    out["after"] = hex(evaluate(rhs, env))
    return out
