"""Hardware performance counter bundles (the simulator's ``perf stat``)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Counters accumulated by the VM plus cache/branch models."""

    instructions: int = 0
    cycles: int = 0
    cache_references: int = 0
    cache_misses: int = 0
    branches: int = 0
    branch_misses: int = 0
    context_switches: int = 0
    helper_calls: int = 0
    atomics: int = 0

    def add(self, other: "PerfCounters") -> None:
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.cache_references += other.cache_references
        self.cache_misses += other.cache_misses
        self.branches += other.branches
        self.branch_misses += other.branch_misses
        self.context_switches += other.context_switches
        self.helper_calls += other.helper_calls
        self.atomics += other.atomics

    @property
    def cache_miss_rate(self) -> float:
        if not self.cache_references:
            return 0.0
        return self.cache_misses / self.cache_references

    @property
    def branch_miss_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.branch_misses / self.branches

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    # positional construction: these two run on every Machine.run call
    def snapshot(self) -> "PerfCounters":
        return PerfCounters(
            self.instructions,
            self.cycles,
            self.cache_references,
            self.cache_misses,
            self.branches,
            self.branch_misses,
            self.context_switches,
            self.helper_calls,
            self.atomics,
        )

    def delta(self, since: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            self.instructions - since.instructions,
            self.cycles - since.cycles,
            self.cache_references - since.cache_references,
            self.cache_misses - since.cache_misses,
            self.branches - since.branches,
            self.branch_misses - since.branch_misses,
            self.context_switches - since.context_switches,
            self.helper_calls - since.helper_calls,
            self.atomics - since.atomics,
        )
