"""Hardware models: cache, branch predictor, perf counters."""

from .branch import BranchPredictor, BranchStats, ProfilingBranchPredictor
from .cache import CacheModel, CacheStats
from .counters import PerfCounters

__all__ = [
    "BranchPredictor",
    "BranchStats",
    "ProfilingBranchPredictor",
    "CacheModel",
    "CacheStats",
    "PerfCounters",
]
