"""A set-associative, write-allocate, LRU data cache model.

Default geometry approximates a modern L1D: 32 KiB, 64-byte lines,
8-way.  Each program memory access is looked up; a miss costs the
configured penalty on top of the hit latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class CacheStats:
    references: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.references if self.references else 0.0


class CacheModel:
    """LRU set-associative cache keyed by line address."""

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 64,
        ways: int = 8,
        hit_latency: int = 4,
        miss_penalty: int = 40,
    ):
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        # per-set list of tags, most-recently-used last
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _touch_line(self, line_addr: int) -> bool:
        """Access one line; True on hit."""
        index = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        entries = self.sets[index]
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            return True
        entries.append(tag)
        if len(entries) > self.ways:
            entries.pop(0)
        return False

    def access(self, addr: int, size: int) -> int:
        """Model an access; returns its latency in cycles.

        Equivalent to calling :meth:`_touch_line` per covered line, but
        inlined — this is the hottest call in the VM's execute loop —
        with one behavioural no-op shortcut: a tag that is already
        most-recently-used skips the remove/append reshuffle (removing
        and re-appending the last element is the identity).
        """
        line = addr // self.line_bytes
        last_line = (addr + size - 1) // self.line_bytes if size > 1 else line
        stats = self.stats
        num_sets = self.num_sets
        sets = self.sets
        latency = self.hit_latency
        while True:
            stats.references += 1
            entries = sets[line % num_sets]
            tag = line // num_sets
            if entries and entries[-1] == tag:
                pass  # already MRU
            elif tag in entries:
                entries.remove(tag)
                entries.append(tag)
            else:
                stats.misses += 1
                latency += self.miss_penalty
                entries.append(tag)
                if len(entries) > self.ways:
                    entries.pop(0)
            if line == last_line:
                return latency
            line += 1
