"""A 2-bit saturating-counter branch predictor (Smith predictor)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class BranchStats:
    branches: int = 0
    mispredictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0


class BranchPredictor:
    """Per-PC 2-bit counters; counter >= 2 predicts taken."""

    def __init__(self, table_bits: int = 12, mispredict_penalty: int = 15):
        self.table_size = 1 << table_bits
        self.mispredict_penalty = mispredict_penalty
        self.counters: Dict[int, int] = {}
        self.stats = BranchStats()

    def reset(self) -> None:
        self.counters.clear()
        self.stats = BranchStats()

    def record(self, pc: int, taken: bool) -> int:
        """Update the predictor; returns the cycle penalty (0 or miss)."""
        slot = pc % self.table_size
        counter = self.counters.get(slot, 1)  # weakly not-taken
        predicted = counter >= 2
        self.stats.branches += 1
        penalty = 0
        if predicted != taken:
            self.stats.mispredictions += 1
            penalty = self.mispredict_penalty
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self.counters[slot] = counter
        return penalty


class ProfilingBranchPredictor(BranchPredictor):
    """A :class:`BranchPredictor` that additionally tallies per-site
    taken / not-taken execution counts, keyed by the slot pc the VM
    reports.

    Prediction behavior (and therefore every counter a measured run
    mirrors) is bit-identical to the base predictor under both VM
    engines — the fast engine captures ``record`` as a bound method at
    decode-bind time, so the override is reached either way.  The
    tallies are what :func:`repro.core.bytecode_passes.layout
    .collect_profile` turns into a weighted CFG.

    A predictor instance carries state across every ``Machine`` that
    shares it; callers profiling *multiple* programs must ``reset()``
    between them or the second program inherits the first one's table
    (and its mirrored ``branch_misses`` counter lies).
    """

    def __init__(self, table_bits: int = 12, mispredict_penalty: int = 15):
        super().__init__(table_bits, mispredict_penalty)
        self.taken_counts: Dict[int, int] = {}
        self.not_taken_counts: Dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self.taken_counts.clear()
        self.not_taken_counts.clear()

    def record(self, pc: int, taken: bool) -> int:
        if taken:
            self.taken_counts[pc] = self.taken_counts.get(pc, 0) + 1
        else:
            self.not_taken_counts[pc] = self.not_taken_counts.get(pc, 0) + 1
        return super().record(pc, taken)
