"""A 2-bit saturating-counter branch predictor (Smith predictor)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class BranchStats:
    branches: int = 0
    mispredictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0


class BranchPredictor:
    """Per-PC 2-bit counters; counter >= 2 predicts taken."""

    def __init__(self, table_bits: int = 12, mispredict_penalty: int = 15):
        self.table_size = 1 << table_bits
        self.mispredict_penalty = mispredict_penalty
        self.counters: Dict[int, int] = {}
        self.stats = BranchStats()

    def reset(self) -> None:
        self.counters.clear()
        self.stats = BranchStats()

    def record(self, pc: int, taken: bool) -> int:
        """Update the predictor; returns the cycle penalty (0 or miss)."""
        slot = pc % self.table_size
        counter = self.counters.get(slot, 1)  # weakly not-taken
        predicted = counter >= 2
        self.stats.branches += 1
        penalty = 0
        if predicted != taken:
            self.stats.mispredictions += 1
            penalty = self.mispredict_penalty
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self.counters[slot] = counter
        return penalty
