"""Layout benchmark: before/after hardware-model deltas for the
profile-guided layout tier.

For every program of a workload suite the harness

1. compiles the baseline (no Merlin passes — layout is what is under
   test, and it composes with any pipeline),
2. collects a branch profile on the program's own oracle battery
   (:func:`repro.core.bytecode_passes.layout.collect_profile`),
3. re-lays a copy out under that profile with a witness recorder
   attached and certifies every witness through :mod:`repro.tv`,
4. replays the identical battery on **fresh** machines for both
   variants and accumulates the model counters.

Fresh machines per variant make the measurement cold-start honest: the
2-bit predictor boots weakly not-taken, so the mispredicts layout
removes by straightening are exactly the ones a newly attached program
pays in the wild.  Counters from the simulator's hw models are
deterministic, so the deltas are exact, repeatable, and CI-assertable
— no min-of-N needed.  Behaviour (return value / fault per run) is
compared alongside and must be identical.

``repro bench-layout`` drives this and emits ``BENCH_layout.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bytecode_passes.layout import (PgoSpec, ProfileGuidedLayoutPass,
                                           collect_profile)
from ..fuzz.oracle import RUNTIME_FAULTS, TestCase, generate_tests
from ..hw import PerfCounters
from ..isa import BpfProgram
from ..vm import Machine
from .vmperf import VM_SUITES, _suite_programs


@dataclass
class VariantCounters:
    """Accumulated model counters for one layout variant of a suite."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    branch_misses: int = 0
    cache_references: int = 0
    cache_misses: int = 0
    faults: int = 0
    runs: int = 0

    def absorb(self, counters: PerfCounters) -> None:
        self.instructions += counters.instructions
        self.cycles += counters.cycles
        self.branches += counters.branches
        self.branch_misses += counters.branch_misses
        self.cache_references += counters.cache_references
        self.cache_misses += counters.cache_misses

    def to_dict(self) -> dict:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "branches": self.branches,
            "branch_misses": self.branch_misses,
            "cache_references": self.cache_references,
            "cache_misses": self.cache_misses,
            "faults": self.faults,
            "runs": self.runs,
        }


@dataclass
class LayoutSuitePerf:
    """Before/after measurement of one suite."""

    suite: str
    programs: int
    relaid: int              # programs the pass actually changed
    rewrites: int            # moved blocks + straightened branches
    before: VariantCounters
    after: VariantCounters
    behavior_identical: bool
    witnesses: int = 0
    witnesses_certified: bool = True
    mismatch: str = ""

    @property
    def branch_miss_delta(self) -> int:
        """Positive = layout removed mispredictions."""
        return self.before.branch_misses - self.after.branch_misses

    @property
    def cycle_delta(self) -> int:
        return self.before.cycles - self.after.cycles

    @property
    def improved(self) -> bool:
        return self.branch_miss_delta > 0

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "programs": self.programs,
            "relaid": self.relaid,
            "rewrites": self.rewrites,
            "behavior_identical": self.behavior_identical,
            "mismatch": self.mismatch,
            "witnesses": self.witnesses,
            "witnesses_certified": self.witnesses_certified,
            "branch_miss_delta": self.branch_miss_delta,
            "cycle_delta": self.cycle_delta,
            "improved": self.improved,
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
        }


@dataclass
class LayoutBenchReport:
    """Everything ``repro bench-layout`` measured, JSON-serializable."""

    seed: int
    tests_per_program: int
    engine: str
    suites: List[LayoutSuitePerf] = field(default_factory=list)

    @property
    def suites_improved(self) -> int:
        return sum(1 for suite in self.suites if suite.improved)

    @property
    def all_behavior_identical(self) -> bool:
        return all(suite.behavior_identical for suite in self.suites)

    @property
    def all_certified(self) -> bool:
        return all(suite.witnesses_certified for suite in self.suites)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "tests_per_program": self.tests_per_program,
            "engine": self.engine,
            "suites_improved": self.suites_improved,
            "all_behavior_identical": self.all_behavior_identical,
            "all_certified": self.all_certified,
            "suites": [suite.to_dict() for suite in self.suites],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def _measure(program: BpfProgram, tests: Sequence[TestCase], engine: str,
             seed: int, max_insns: int, into: VariantCounters) -> List[Tuple]:
    """Run the battery on a fresh machine per program and accumulate the
    model counters; returns the behaviour trace for comparison."""
    trace: List[Tuple] = []
    machine = Machine(program, max_insns=max_insns, seed=seed, engine=engine)
    for test in tests:
        try:
            result = machine.run(ctx=test.ctx, packet=test.packet)
        except RUNTIME_FAULTS as exc:
            into.faults += 1
            trace.append(("fault", type(exc).__name__))
        else:
            trace.append(("ok", result.return_value))
        into.runs += 1
    into.absorb(machine.counters)
    return trace


def bench_layout_suite(suite: str, seed: int = 2024, scale: float = 0.2,
                       count: Optional[int] = None,
                       tests_per_program: int = 6,
                       engine: str = "fast",
                       max_insns: int = 200_000) -> LayoutSuitePerf:
    """Measure the layout tier over one suite."""
    from ..tv import WitnessRecorder
    from ..tv.regioncheck import validate_bytecode_witness

    programs = _suite_programs(suite, seed, scale, count)
    result = LayoutSuitePerf(suite=suite, programs=len(programs), relaid=0,
                             rewrites=0, before=VariantCounters(),
                             after=VariantCounters(),
                             behavior_identical=True)
    spec = PgoSpec(tests=tests_per_program, seed=seed, max_insns=max_insns)
    for index, program in enumerate(programs):
        tests = generate_tests(program, count=tests_per_program,
                               seed=seed + index)
        profile = collect_profile(program, spec=spec, tests=tests,
                                  engine=engine)
        relaid = program.copy()
        layout = ProfileGuidedLayoutPass(profile)
        recorder = WitnessRecorder()
        layout.recorder = recorder
        rewrites = layout.run(relaid)
        if rewrites:
            result.relaid += 1
            result.rewrites += rewrites
        for witness in recorder.witnesses:
            result.witnesses += 1
            if not validate_bytecode_witness(witness).certified:
                result.witnesses_certified = False
        trace_before = _measure(program, tests, engine, seed, max_insns,
                                result.before)
        trace_after = _measure(relaid, tests, engine, seed, max_insns,
                               result.after)
        if trace_before != trace_after and result.behavior_identical:
            result.behavior_identical = False
            for run, (a, b) in enumerate(zip(trace_before, trace_after)):
                if a != b:
                    result.mismatch = (f"program {index} run {run}: "
                                       f"before={a!r} after={b!r}")
                    break
    return result


def bench_layout(suites: Sequence[str] = VM_SUITES, seed: int = 2024,
                 scale: float = 0.2, count: Optional[int] = None,
                 tests_per_program: int = 6, engine: str = "fast",
                 max_insns: int = 200_000) -> LayoutBenchReport:
    """The whole ``repro bench-layout`` measurement."""
    report = LayoutBenchReport(seed=seed,
                               tests_per_program=tests_per_program,
                               engine=engine)
    for suite in suites:
        if suite not in VM_SUITES:
            raise ValueError(
                f"unknown VM suite {suite!r} (choose from "
                f"{', '.join(VM_SUITES)})")
        report.suites.append(
            bench_layout_suite(suite, seed=seed, scale=scale, count=count,
                               tests_per_program=tests_per_program,
                               engine=engine, max_insns=max_insns))
    return report
