"""Evaluation harnesses for every table and figure of the paper."""

from .compactness import (
    CompactnessResult,
    STAGE_ORDER,
    measure_compactness,
    summarize,
)
from .compile_cost import (
    BatchCostResult,
    CompileCost,
    K2Comparison,
    LABEL_PASSES,
    compare_with_k2,
    measure_batch_cost,
    measure_cache_speedup,
    measure_compile_cost,
)
from .layoutperf import (
    LayoutBenchReport,
    LayoutSuitePerf,
    VariantCounters,
    bench_layout,
    bench_layout_suite,
)
from .network import (
    BASE_LATENCY_US,
    CORE_FREQ_HZ,
    DRIVER_CYCLES,
    LOAD_LEVELS,
    NetworkEval,
    PacketPerf,
    QUEUE_DEPTH,
    seed_maps,
)
from .overhead import (
    HookCost,
    MicroResult,
    SecuritySystem,
    average_reduction,
    overhead_reduction,
    run_lmbench,
    run_postmark,
)
from .report import pct, render_series, render_table
from .serviceperf import (
    PhaseResult,
    ServiceBenchReport,
    bench_service,
)
from .vmperf import (
    EngineMeasurement,
    SuitePerf,
    VM_SUITES,
    VmBenchReport,
    bench_suite,
    bench_vm,
)
from .verifier_stats import (
    VerifierComparison,
    compare_verifier_cost,
    state_change_across_kernels,
)

__all__ = [
    "CompactnessResult",
    "STAGE_ORDER",
    "measure_compactness",
    "summarize",
    "BatchCostResult",
    "CompileCost",
    "K2Comparison",
    "LABEL_PASSES",
    "compare_with_k2",
    "measure_batch_cost",
    "measure_cache_speedup",
    "measure_compile_cost",
    "LayoutBenchReport",
    "LayoutSuitePerf",
    "VariantCounters",
    "bench_layout",
    "bench_layout_suite",
    "BASE_LATENCY_US",
    "CORE_FREQ_HZ",
    "DRIVER_CYCLES",
    "LOAD_LEVELS",
    "NetworkEval",
    "PacketPerf",
    "QUEUE_DEPTH",
    "seed_maps",
    "HookCost",
    "MicroResult",
    "SecuritySystem",
    "average_reduction",
    "overhead_reduction",
    "run_lmbench",
    "run_postmark",
    "pct",
    "render_series",
    "render_table",
    "PhaseResult",
    "ServiceBenchReport",
    "bench_service",
    "EngineMeasurement",
    "SuitePerf",
    "VM_SUITES",
    "VmBenchReport",
    "bench_suite",
    "bench_vm",
    "VerifierComparison",
    "compare_verifier_cost",
    "state_change_across_kernels",
]
