"""VM microbenchmark: interpreted-instructions-per-second per engine.

Measures the three execution engines (``reference`` — the canonical
if/elif interpreter —, ``fast`` — the pre-decoded fast-dispatch
engine with superinstructions, :mod:`repro.vm.engine` — and ``jit``
— the whole-program method JIT, :mod:`repro.vm.engine.jit`) over the
paper's workload suites, and cross-checks them while doing so: every
run's return value and full counter tuple must agree with the
reference, so a benchmark result doubles as an engine-equivalence
certificate.

The benchmark defaults to pipeline-baseline bytecode (the engines are
what is under test), but the Merlin tiers can be layered on with
``passes``/``pgo``/``superopt`` so fully optimized programs are
measured too; the chosen configuration is recorded in the report.

Timing covers the steady-state ``Machine.run`` loop only.  Decode/bind
cost is excluded deliberately — the decode is content-cached process-
wide (:func:`repro.vm.engine.decode_program`), so in every consumer
(fuzz batteries, benchmark loops, repeated attach) it amortizes to
noise; what the metric answers is "how fast does each engine interpret
instructions once a program is loaded".

``repro bench-vm`` drives this and emits ``BENCH_vm.json``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fuzz.oracle import RUNTIME_FAULTS, TestCase, generate_tests
from ..isa import BpfProgram
from ..vm import ENGINES, Machine

#: suites ``bench_vm`` understands: the three trace suites plus the
#: curated XDP workload set
VM_SUITES = ("sysdig", "tetragon", "tracee", "xdp")


def _suite_programs(suite: str, seed: int, scale: float,
                    count: Optional[int],
                    passes: Optional[Sequence[str]] = None,
                    pgo: bool = False,
                    superopt: bool = False) -> List[BpfProgram]:
    """Compile the benchmark programs for *suite*.

    With no optimization arguments this is the baseline pipeline — no
    Merlin passes, the engines are what is under test.  *passes* (a
    pass-name subset, or an empty sequence for the full default set)
    routes compilation through :class:`~repro.core.MerlinPipeline`,
    and *pgo*/*superopt* enable the layout and superoptimizer tiers.
    Generated trace programs that exceed toolchain limits at this seed
    are skipped, like every other suite consumer does."""
    optimize = passes is not None or pgo or superopt
    kwargs: dict = {}
    if optimize:
        kwargs = {
            "optimize": True,
            "pgo": pgo or None,
            "superopt": superopt or None,
        }
        if passes:
            kwargs["enabled"] = frozenset(passes)
    if suite == "xdp":
        from ..workloads.xdp import ALL_XDP, compile_workload

        programs = [compile_workload(workload, **kwargs)
                    for workload in ALL_XDP]
        if count is not None:
            programs = programs[:count]
        return programs
    from ..workloads.suites import compile_suite_program, generate_suite

    programs: List[BpfProgram] = []
    for generated in generate_suite(suite, seed=seed, scale=scale,
                                    count=count):
        try:
            programs.append(compile_suite_program(generated, **kwargs))
        except Exception:
            continue
    return programs


@dataclass
class EngineMeasurement:
    """One engine's aggregate over a suite."""

    engine: str
    instructions: int = 0
    wall_seconds: float = 0.0
    runs: int = 0
    faults: int = 0

    @property
    def insns_per_second(self) -> float:
        return self.instructions / self.wall_seconds if self.wall_seconds \
            else 0.0

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "instructions": self.instructions,
            "wall_seconds": round(self.wall_seconds, 6),
            "runs": self.runs,
            "faults": self.faults,
            "insns_per_second": round(self.insns_per_second, 1),
        }


@dataclass
class SuitePerf:
    """Every engine measured over one suite, with the equivalence
    verdict collected along the way."""

    suite: str
    programs: int
    engines: Dict[str, EngineMeasurement]
    identical: bool
    mismatch: str = ""

    def speedup_over_reference(self, engine: str) -> float:
        ref = self.engines["reference"].insns_per_second
        other = self.engines[engine].insns_per_second
        return other / ref if ref else 0.0

    @property
    def speedup(self) -> float:
        """fast-over-reference (the historical headline key)."""
        return self.speedup_over_reference("fast")

    @property
    def jit_speedup(self) -> float:
        """jit-over-reference."""
        return self.speedup_over_reference("jit")

    @property
    def jit_over_fast(self) -> float:
        fast = self.engines["fast"].insns_per_second
        jit = self.engines["jit"].insns_per_second
        return jit / fast if fast else 0.0

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "programs": self.programs,
            "identical": self.identical,
            "mismatch": self.mismatch,
            "speedup": round(self.speedup, 3),
            "jit_speedup": round(self.jit_speedup, 3),
            "jit_over_fast": round(self.jit_over_fast, 3),
            "engines": {name: m.to_dict() for name, m in self.engines.items()},
        }


@dataclass
class VmBenchReport:
    """Everything ``repro bench-vm`` measured, JSON-serializable."""

    seed: int
    repeats: int
    tests_per_program: int
    config: Dict[str, object] = field(default_factory=dict)
    suites: List[SuitePerf] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return all(suite.identical for suite in self.suites)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "repeats": self.repeats,
            "tests_per_program": self.tests_per_program,
            "config": self.config,
            "all_identical": self.all_identical,
            "suites": [suite.to_dict() for suite in self.suites],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def _run_engine(programs: Sequence[BpfProgram],
                batteries: Sequence[List[TestCase]],
                engine: str, seed: int, repeats: int,
                max_insns: int, passes: int = 3
                ) -> Tuple[EngineMeasurement, List[Tuple]]:
    """Time one engine over every (program, battery) pair and record the
    per-run observation trace for cross-engine comparison.

    The first battery pass is untimed: it warms allocator/model caches
    and records the observation trace.  The timed loop then runs
    ``passes`` times and the fastest pass is kept (the ``timeit``
    min-of-N convention), which suppresses scheduler noise on shared
    machines.
    """
    measurement = EngineMeasurement(engine=engine)
    trace: List[Tuple] = []
    for program, tests in zip(programs, batteries):
        machine = Machine(program, max_insns=max_insns, seed=seed,
                          engine=engine)
        for test in tests:
            try:
                result = machine.run(ctx=test.ctx, packet=test.packet)
            except RUNTIME_FAULTS as exc:
                measurement.faults += 1
                trace.append(("fault", type(exc).__name__, str(exc),
                              dataclasses.astuple(machine.counters)))
            else:
                trace.append(("ok", result.return_value,
                              dataclasses.astuple(result.counters)))
        best: Optional[Tuple[float, int]] = None
        for _ in range(max(passes, 1)):
            insns_before = machine.counters.instructions
            started = time.perf_counter()
            for _ in range(repeats):
                for test in tests:
                    try:
                        machine.run(ctx=test.ctx, packet=test.packet)
                    except RUNTIME_FAULTS:
                        pass
            elapsed = time.perf_counter() - started
            executed = machine.counters.instructions - insns_before
            if best is None or elapsed < best[0]:
                best = (elapsed, executed)
        measurement.wall_seconds += best[0]
        measurement.instructions += best[1]
        measurement.runs += repeats * len(tests)
    return measurement, trace


def bench_suite(suite: str, seed: int = 2024, scale: float = 0.2,
                count: Optional[int] = None, tests_per_program: int = 6,
                repeats: int = 8, max_insns: int = 200_000,
                passes: Optional[Sequence[str]] = None,
                pgo: bool = False, superopt: bool = False) -> SuitePerf:
    """Measure every engine over one suite with identical inputs."""
    programs = _suite_programs(suite, seed, scale, count,
                               passes=passes, pgo=pgo, superopt=superopt)
    batteries = [
        generate_tests(program, count=tests_per_program, seed=seed + index)
        for index, program in enumerate(programs)
    ]
    engines: Dict[str, EngineMeasurement] = {}
    traces: Dict[str, List[Tuple]] = {}
    for engine in ENGINES:
        engines[engine], traces[engine] = _run_engine(
            programs, batteries, engine, seed, repeats, max_insns)
    identical = True
    mismatch = ""
    reference = traces["reference"]
    for engine in ENGINES:
        if engine == "reference" or traces[engine] == reference:
            continue
        identical = False
        for index, (ref, other) in enumerate(zip(reference, traces[engine])):
            if ref != other:
                mismatch = (f"run {index}: reference={ref!r} "
                            f"{engine}={other!r}")
                break
        break
    return SuitePerf(suite=suite, programs=len(programs), engines=engines,
                     identical=identical, mismatch=mismatch)


def bench_vm(suites: Sequence[str] = ("sysdig", "xdp"), seed: int = 2024,
             scale: float = 0.2, count: Optional[int] = None,
             tests_per_program: int = 6, repeats: int = 8,
             max_insns: int = 200_000,
             passes: Optional[Sequence[str]] = None,
             pgo: bool = False, superopt: bool = False) -> VmBenchReport:
    """The whole ``repro bench-vm`` measurement."""
    if passes is None:
        passes_cfg: object = "baseline"
    elif not list(passes):
        passes_cfg = "all"
    else:
        passes_cfg = sorted(passes)
    report = VmBenchReport(
        seed=seed, repeats=repeats, tests_per_program=tests_per_program,
        config={
            "passes": passes_cfg,
            "pgo": bool(pgo),
            "superopt": bool(superopt),
        })
    for suite in suites:
        if suite not in VM_SUITES:
            raise ValueError(
                f"unknown VM suite {suite!r} (choose from "
                f"{', '.join(VM_SUITES)})")
        report.suites.append(
            bench_suite(suite, seed=seed, scale=scale, count=count,
                        tests_per_program=tests_per_program,
                        repeats=repeats, max_insns=max_insns,
                        passes=passes, pgo=pgo, superopt=superopt))
    return report
