"""RQ3 harness: runtime overhead of security systems (paper Table 4,
Fig. 12, Fig. 15).

A :class:`SecuritySystem` is a set of compiled tracepoint programs
attached to hooks.  Running an lmbench/postmark workload fires the
attached programs per event; the added eBPF execution time on top of
the vanilla latency gives the "w/o Merlin" and "w/ Merlin" columns, and
Equation 1 of the paper gives the overhead reduction:

    reduction = 1 - (t_w/ / t_v - 1) / (t_w/o / t_v - 1)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..hw import PerfCounters
from ..isa import BpfProgram
from ..vm import Machine, TaskContext
from ..workloads.suites import SuiteProgram, TRACE_CTX_SIZE, compile_suite_program
from ..workloads.syscalls import (
    LMBENCH_TESTS,
    MacroWorkload,
    MicroTest,
    POSTMARK,
    hook_matches,
    random_ctx,
)
from .network import CORE_FREQ_HZ


@dataclass
class HookCost:
    """Average per-event cost of all programs attached to one hook."""

    cycles: float
    counters: PerfCounters  # per single event, averaged


class SecuritySystem:
    """Compiled suite attached to tracepoints, with measured event costs."""

    def __init__(self, name: str, programs: Sequence[Tuple[str, BpfProgram]],
                 seed: int = 5, samples: int = 12):
        self.name = name
        self.attached = list(programs)  # (hook, program)
        self.seed = seed
        self.samples = samples
        self._machines = [
            (hook, Machine(program, seed=seed, task=TaskContext()))
            for hook, program in self.attached
        ]
        self._event_cost: Dict[str, HookCost] = {}

    @classmethod
    def from_suite(cls, name: str, suite_programs: Sequence[SuiteProgram],
                   optimize: bool, seed: int = 5,
                   mcpu: Optional[str] = None, jobs: int = 1, cache=None,
                   **pipeline_kwargs) -> "SecuritySystem":
        """Build a system from a generated suite.

        With ``optimize``, *jobs* fans the Merlin compilation out over
        worker processes and *cache* serves repeated builds (the
        with/without-Merlin sweeps recompile the same populations) from
        the content-addressed store.
        """
        if optimize and (jobs > 1 or cache is not None):
            from ..workloads.suites import compile_suite

            batch = compile_suite(suite_programs, jobs=jobs, cache=cache,
                                  mcpu=mcpu, **pipeline_kwargs)
            compiled = [(p.hook, program)
                        for p, program in zip(suite_programs, batch.programs)]
            return cls(name, compiled, seed=seed)
        compiled = [
            (p.hook, compile_suite_program(p, optimize=optimize, mcpu=mcpu,
                                           **pipeline_kwargs))
            for p in suite_programs
        ]
        return cls(name, compiled, seed=seed)

    # ------------------------------------------------------------------
    def event_cost(self, event: str) -> HookCost:
        """Cycles + counters of every attached program firing for *event*."""
        if event in self._event_cost:
            return self._event_cost[event]
        rng = random.Random(self.seed * 1000003 + len(self._event_cost))
        total_cycles = 0.0
        totals = PerfCounters()
        for hook, machine in self._machines:
            if not hook_matches(hook, event):
                continue
            cycles = 0.0
            for _ in range(self.samples):
                ctx = random_ctx(rng, TRACE_CTX_SIZE)
                before = machine.counters.snapshot()
                machine.run(ctx=ctx)
                delta = machine.counters.delta(before)
                cycles += delta.cycles
                totals.add(delta)
            total_cycles += cycles / self.samples
        per_event = PerfCounters(
            instructions=totals.instructions // max(self.samples, 1),
            cycles=totals.cycles // max(self.samples, 1),
            cache_references=totals.cache_references // max(self.samples, 1),
            cache_misses=totals.cache_misses // max(self.samples, 1),
            branches=totals.branches // max(self.samples, 1),
            branch_misses=totals.branch_misses // max(self.samples, 1),
        )
        cost = HookCost(cycles=total_cycles, counters=per_event)
        self._event_cost[event] = cost
        return cost

    def added_us(self, events: Sequence[Tuple[str, int]]) -> float:
        """Microseconds of eBPF execution added by *events*."""
        cycles = sum(self.event_cost(event).cycles * count
                     for event, count in events)
        return cycles / CORE_FREQ_HZ * 1e6

    def event_counters(self, events: Sequence[Tuple[str, int]]) -> PerfCounters:
        total = PerfCounters()
        for event, count in events:
            per = self.event_cost(event).counters
            total.instructions += per.instructions * count
            total.cycles += per.cycles * count
            total.cache_references += per.cache_references * count
            total.cache_misses += per.cache_misses * count
            total.branches += per.branches * count
            total.branch_misses += per.branch_misses * count
        return total


def overhead_reduction(vanilla: float, with_original: float,
                       with_merlin: float) -> float:
    """Paper Equation 1."""
    base_overhead = with_original / vanilla - 1.0
    merlin_overhead = with_merlin / vanilla - 1.0
    if base_overhead <= 0:
        return 0.0
    return 1.0 - merlin_overhead / base_overhead


@dataclass
class MicroResult:
    test: str
    vanilla_us: float
    with_original_us: float
    with_merlin_us: float

    @property
    def reduction(self) -> float:
        return overhead_reduction(self.vanilla_us, self.with_original_us,
                                  self.with_merlin_us)


def run_lmbench(original: SecuritySystem, merlin: SecuritySystem,
                tests: Sequence[MicroTest] = LMBENCH_TESTS
                ) -> List[MicroResult]:
    """Table 4's micro-benchmark block for one security system."""
    results = []
    for test in tests:
        added_orig = original.added_us(test.events)
        added_merlin = merlin.added_us(test.events)
        results.append(MicroResult(
            test=test.name,
            vanilla_us=test.vanilla_us,
            with_original_us=test.vanilla_us + added_orig,
            with_merlin_us=test.vanilla_us + added_merlin,
        ))
    return results


def run_postmark(original: SecuritySystem, merlin: SecuritySystem,
                 workload: MacroWorkload = POSTMARK) -> MicroResult:
    """Table 4's macro row."""
    added_orig = original.added_us(workload.events) / 1e6  # seconds
    added_merlin = merlin.added_us(workload.events) / 1e6
    return MicroResult(
        test=workload.name,
        vanilla_us=workload.vanilla_seconds,
        with_original_us=workload.vanilla_seconds + added_orig,
        with_merlin_us=workload.vanilla_seconds + added_merlin,
    )


def average_reduction(results: Sequence[MicroResult]) -> float:
    reducible = [r.reduction for r in results
                 if r.with_original_us > r.vanilla_us]
    return sum(reducible) / len(reducible) if reducible else 0.0
