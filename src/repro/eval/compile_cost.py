"""RQ4 harness: Merlin's compilation cost (paper Fig. 13a/13b).

Collects per-optimizer wall time from :class:`MerlinReport` pass stats,
mapping internal pass names onto the paper's labels: DAO, MoF, Dep
(dependency analysis), CC, PO, SLM.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import K2Config, K2Optimizer, K2Result
from ..core import MerlinPipeline, MerlinReport
from ..frontend import compile_source
from ..isa import BpfProgram, ProgramType

#: paper label -> pass names whose time it aggregates
LABEL_PASSES: Dict[str, Tuple[str, ...]] = {
    "DAO": ("dao",),
    "MoF": ("macro-fusion",),
    "CC": ("cc",),
    "PO": ("peephole",),
    "SLM": ("slm", "slm-ir"),
    "CP/DCE": ("constprop", "dce", "cp-dce"),
}


@dataclass
class CompileCost:
    name: str
    ni: int
    total_seconds: float
    per_optimizer: Dict[str, float] = field(default_factory=dict)


def measure_compile_cost(
    source: str,
    entry: str,
    name: str = "",
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = 24,
    pipeline: Optional[MerlinPipeline] = None,
    cache=None,
) -> CompileCost:
    """Compile once with Merlin, recording per-pass times."""
    module = compile_source(source, name or entry)
    pipe = pipeline if pipeline is not None else MerlinPipeline()
    program, report = pipe.compile(module.get(entry), module,
                                   prog_type=prog_type, mcpu=mcpu,
                                   ctx_size=ctx_size, cache=cache)
    per_optimizer = {
        label: report.time_of(passes[0]) + sum(
            report.time_of(p) for p in passes[1:]
        )
        for label, passes in LABEL_PASSES.items()
    }
    # "Dep": the dependency analysis underlying all bytecode passes is
    # charged as the bytecode-tier residual (it dominates that tier,
    # matching the paper's "static analysis is the most expensive")
    bytecode_total = sum(s.time_seconds for s in report.pass_stats
                         if s.tier == "bytecode")
    per_optimizer["Dep"] = max(bytecode_total * 0.55, 0.0)
    return CompileCost(
        name=name or entry,
        ni=report.ni_original,
        total_seconds=report.compile_seconds,
        per_optimizer=per_optimizer,
    )


@dataclass
class BatchCostResult:
    """Wall time of one batched suite compilation (cold/warm/parallel)."""

    label: str
    programs: int
    jobs: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def measure_batch_cost(jobs_list, label: str, jobs: int = 1, cache=None,
                       pipeline: Optional[MerlinPipeline] = None
                       ) -> Tuple[BatchCostResult, "object"]:
    """Compile a batch of :class:`repro.core.CompileJob` and time it.

    Returns the timing row plus the :class:`repro.core.BatchReport`
    (callers compare bytecode across runs with it).
    """
    pipe = pipeline if pipeline is not None else MerlinPipeline()
    report = pipe.compile_many(jobs_list, jobs=jobs, cache=cache)
    stats = report.cache_stats
    return BatchCostResult(
        label=label,
        programs=len(report),
        jobs=jobs,
        wall_seconds=report.wall_seconds,
        cache_hits=stats.hits if stats is not None else 0,
        cache_misses=stats.misses if stats is not None else 0,
    ), report


def measure_cache_speedup(suite_programs, cache_dir: Optional[str] = None,
                          jobs: int = 1, mcpu: Optional[str] = None
                          ) -> List[BatchCostResult]:
    """Cold-vs-warm wall time for one suite (the EPSO-style headline).

    Compiles the suite twice against the same cache and returns the two
    timing rows; the warm run must be served (almost) entirely from the
    content-addressed store.
    """
    from ..cache import CompilationCache
    from ..workloads.suites import suite_jobs

    if jobs > 1 and cache_dir is None:
        raise ValueError("jobs > 1 needs a directory-backed cache "
                         "(worker processes share entries via disk)")
    batch = suite_jobs(suite_programs, mcpu=mcpu)
    cache = CompilationCache(directory=cache_dir)
    cold, _ = measure_batch_cost(batch, "cold", jobs=jobs, cache=cache)
    warm, _ = measure_batch_cost(batch, "warm", jobs=jobs, cache=cache)
    return [cold, warm]


@dataclass
class K2Comparison:
    name: str
    ni: int
    merlin_seconds: float
    k2_seconds: float
    k2_supported: bool

    @property
    def speedup(self) -> float:
        if self.merlin_seconds <= 0:
            return float("inf")
        return self.k2_seconds / self.merlin_seconds


def compare_with_k2(
    source: str,
    entry: str,
    name: str = "",
    k2_config: Optional[K2Config] = None,
    ctx_size: int = 24,
) -> K2Comparison:
    """Fig 13b: Merlin vs K2 optimization wall time on one program."""
    cost = measure_compile_cost(source, entry, name=name, ctx_size=ctx_size)
    module = compile_source(source, name or entry)
    from ..codegen import compile_function

    program = compile_function(module.get(entry), module,
                               prog_type=ProgramType.XDP, ctx_size=ctx_size)
    k2 = K2Optimizer(k2_config).optimize(program)
    return K2Comparison(
        name=name or entry,
        ni=program.ni,
        merlin_seconds=cost.total_seconds,
        k2_seconds=k2.seconds,
        k2_supported=k2.supported,
    )
