"""RQ1 harness: code compactness (paper Fig. 10a-10e).

Measures per-program NI reduction and attributes it to individual
optimizers by applying them cumulatively in the paper's reporting
order (DAO, MoF, CP/DCE, CC, PO, SLM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen import compile_function
from ..core import MerlinPipeline
from ..frontend import compile_source
from ..isa import BpfProgram, ProgramType
from ..verifier import DEFAULT_KERNEL, KernelConfig, verify

#: cumulative attribution order (most to least impactful in the paper)
STAGE_ORDER: Tuple[str, ...] = ("dao", "mof", "cpdce", "cc", "po", "slm")


@dataclass
class CompactnessResult:
    """NI trajectory of one program through cumulative optimizer sets."""

    name: str
    ni_baseline: int
    ni_after_stage: Dict[str, int] = field(default_factory=dict)
    verified: bool = True

    @property
    def ni_final(self) -> int:
        if not self.ni_after_stage:
            return self.ni_baseline
        return self.ni_after_stage[STAGE_ORDER[-1]]

    @property
    def total_reduction(self) -> float:
        if not self.ni_baseline:
            return 0.0
        return 1.0 - self.ni_final / self.ni_baseline

    def contribution(self, stage: str) -> float:
        """Fraction of baseline NI removed by adding *stage*."""
        index = STAGE_ORDER.index(stage)
        before = (
            self.ni_baseline if index == 0
            else self.ni_after_stage[STAGE_ORDER[index - 1]]
        )
        after = self.ni_after_stage[stage]
        return (before - after) / self.ni_baseline if self.ni_baseline else 0.0


def measure_compactness(
    source: str,
    entry: str,
    name: str = "",
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = 24,
    kernel: KernelConfig = DEFAULT_KERNEL,
    check_verifier: bool = True,
    cache=None,
) -> CompactnessResult:
    """Compile *source* repeatedly with growing optimizer sets.

    ``compile`` is pure, so one frontend run serves all seven stage
    compilations; *cache* (a :class:`repro.cache.CompilationCache`)
    additionally content-addresses each stage's result, which pays off
    when a benchmark suite re-measures the same populations.
    """
    module = compile_source(source, name or entry)
    func = module.get(entry)
    baseline = compile_function(func, module,
                                prog_type=prog_type, mcpu=mcpu,
                                ctx_size=ctx_size)
    result = CompactnessResult(name=name or entry, ni_baseline=baseline.ni)
    if check_verifier:
        result.verified = verify(baseline, kernel).ok
    for index in range(len(STAGE_ORDER)):
        enabled = set(STAGE_ORDER[: index + 1])
        pipeline = MerlinPipeline(kernel=kernel, enabled=enabled)
        program, _ = pipeline.compile(func, module,
                                      prog_type=prog_type, mcpu=mcpu,
                                      ctx_size=ctx_size, cache=cache)
        stage = STAGE_ORDER[index]
        result.ni_after_stage[stage] = program.ni
        if check_verifier and index == len(STAGE_ORDER) - 1:
            result.verified = result.verified and verify(program, kernel).ok
    return result


def summarize(results: Sequence[CompactnessResult]) -> Dict[str, float]:
    """Suite-level aggregates: average/max reduction and per-optimizer
    average contribution (the numbers quoted in paper §5.2)."""
    if not results:
        return {}
    summary: Dict[str, float] = {
        "avg_reduction": sum(r.total_reduction for r in results) / len(results),
        "max_reduction": max(r.total_reduction for r in results),
        "all_verified": float(all(r.verified for r in results)),
    }
    for stage in STAGE_ORDER:
        summary[f"contrib_{stage}"] = sum(
            r.contribution(stage) for r in results
        ) / len(results)
    return summary
