"""Service-mode benchmark: cold vs warm throughput under skewed load.

Starts one ``repro.serve`` daemon, drives it with the load generator's
Zipf-skewed tenant traffic (:mod:`repro.serve.loadgen`) twice — once
against an empty cache (*cold*) and once with the exact same request
stream against the now-warm cache (*warm*) — and reports
programs/sec, client-observed latency percentiles, and cache hit
rates for both phases.  ``repro bench-serve`` drives this and emits
``BENCH_service.json``, the service-scaling trajectory every future
scaling PR regresses against.

The pool is prefiltered through a full local compile (setup cost,
outside both timed phases), so every request in both phases is
expected to succeed; the cold run still enjoys within-run cache hits
on the Zipf head — that is the point of the skew — so the headline
``speedup`` understates the raw compile-vs-cache-hit ratio.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..serve.daemon import DaemonThread, ServeConfig
from ..serve.loadgen import FaultPlan, LoadResult, build_pool, run_load


@dataclass
class PhaseResult:
    """One timed load phase (cold or warm)."""

    phase: str
    requests: int
    ok: int
    dropped: int
    cached: int
    wall_seconds: float
    programs_per_second: float
    latency_ms: dict
    hit_rate: float
    errors: dict

    @classmethod
    def from_load(cls, phase: str, load: LoadResult,
                  hit_rate: float) -> "PhaseResult":
        d = load.to_dict()
        return cls(phase=phase, requests=d["sent"], ok=d["ok"],
                   dropped=d["dropped"], cached=d["cached"],
                   wall_seconds=d["wall_seconds"],
                   programs_per_second=d["requests_per_second"],
                   latency_ms=d["latency_ms"], hit_rate=hit_rate,
                   errors=d["errors"])

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "requests": self.requests,
            "ok": self.ok,
            "dropped": self.dropped,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "programs_per_second": self.programs_per_second,
            "latency_ms": self.latency_ms,
            "hit_rate": round(self.hit_rate, 4),
            "errors": self.errors,
        }


@dataclass
class ServiceBenchReport:
    """``BENCH_service.json``: the service-scaling trajectory entry."""

    config: dict
    cold: PhaseResult = None
    warm: PhaseResult = None
    daemon_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.cold is None or self.warm is None \
                or not self.cold.programs_per_second:
            return 0.0
        return self.warm.programs_per_second / self.cold.programs_per_second

    def to_dict(self) -> dict:
        return {
            "benchmark": "service",
            "config": self.config,
            "cold": self.cold.to_dict() if self.cold else None,
            "warm": self.warm.to_dict() if self.warm else None,
            "warm_over_cold_speedup": round(self.speedup, 2),
            "daemon_stats": self.daemon_stats,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_service(requests: int = 1000, clients: int = 4,
                  unique: int = 80, seed: int = 2024,
                  zipf_s: float = 1.1, depth: int = 8, jobs: int = 1,
                  max_batch: int = 16, max_delay: float = 0.005,
                  faults: Optional[FaultPlan] = None,
                  progress: Optional[Callable[[str], None]] = None,
                  ) -> ServiceBenchReport:
    """Run the cold-vs-warm service benchmark; see the module docs.

    *requests* is the total per phase, split evenly across *clients*
    (each client replays its own deterministic Zipf stream over a pool
    of *unique* distinct generated programs).
    """
    say = progress or (lambda line: None)
    per_client = max(1, requests // clients)
    config = ServeConfig(jobs=jobs, max_batch=max_batch,
                         max_delay=max_delay)
    report = ServiceBenchReport(config={
        "requests": per_client * clients,
        "clients": clients,
        "unique_programs": unique,
        "seed": seed,
        "zipf_s": zipf_s,
        "pipeline_depth": depth,
        "jobs": jobs,
        "max_batch": max_batch,
        "max_delay_ms": round(max_delay * 1000, 3),
    })

    say(f"generating pool: {unique} unique programs (seed {seed})")
    pool = build_pool(unique, seed=seed, prefilter="full")

    with DaemonThread(config) as daemon:
        say(f"cold phase: {per_client * clients} requests, "
            f"{clients} client(s)")
        cold = run_load(daemon.address, pool, requests=per_client,
                        clients=clients, seed=seed, zipf_s=zipf_s,
                        depth=depth, faults=faults)
        cold_stats = daemon.daemon.cache.stats
        cold_rate = cold_stats.hit_rate
        report.cold = PhaseResult.from_load("cold", cold, cold_rate)

        say(f"warm phase: same stream against the warm cache")
        lookups_before = cold_stats.lookups
        hits_before = cold_stats.hits
        warm = run_load(daemon.address, pool, requests=per_client,
                        clients=clients, seed=seed, zipf_s=zipf_s,
                        depth=depth, faults=faults)
        stats = daemon.daemon.cache.stats
        warm_lookups = stats.lookups - lookups_before
        warm_rate = ((stats.hits - hits_before) / warm_lookups
                     if warm_lookups else 0.0)
        report.warm = PhaseResult.from_load("warm", warm, warm_rate)
        report.daemon_stats = daemon.daemon.snapshot()
    return report
