"""Service-mode benchmark: cold vs warm throughput under skewed load.

Starts one ``repro.serve`` daemon, drives it with the load generator's
Zipf-skewed tenant traffic (:mod:`repro.serve.loadgen`) twice — once
against an empty cache (*cold*) and once with the exact same request
stream against the now-warm cache (*warm*) — and reports
programs/sec, client-observed latency percentiles, and cache hit
rates for both phases.  ``repro bench-serve`` drives this and emits
``BENCH_service.json``, the service-scaling trajectory every future
scaling PR regresses against.

The pool is prefiltered through a full local compile (setup cost,
outside both timed phases), so every request in both phases is
expected to succeed; the cold run still enjoys within-run cache hits
on the Zipf head — that is the point of the skew — so the headline
``speedup`` understates the raw compile-vs-cache-hit ratio.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..serve.client import ServeClient
from ..serve.daemon import DaemonThread, ServeConfig
from ..serve.fleet import FleetConfig, FleetThread
from ..serve.loadgen import FaultPlan, LoadResult, build_pool, run_load
from ..serve.trace import TraceWriter, load_trace, replay_trace


@dataclass
class PhaseResult:
    """One timed load phase (cold or warm)."""

    phase: str
    requests: int
    ok: int
    dropped: int
    cached: int
    wall_seconds: float
    programs_per_second: float
    latency_ms: dict
    hit_rate: float
    errors: dict

    @classmethod
    def from_load(cls, phase: str, load: LoadResult,
                  hit_rate: float) -> "PhaseResult":
        d = load.to_dict()
        return cls(phase=phase, requests=d["sent"], ok=d["ok"],
                   dropped=d["dropped"], cached=d["cached"],
                   wall_seconds=d["wall_seconds"],
                   programs_per_second=d["requests_per_second"],
                   latency_ms=d["latency_ms"], hit_rate=hit_rate,
                   errors=d["errors"])

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "requests": self.requests,
            "ok": self.ok,
            "dropped": self.dropped,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "programs_per_second": self.programs_per_second,
            "latency_ms": self.latency_ms,
            "hit_rate": round(self.hit_rate, 4),
            "errors": self.errors,
        }


@dataclass
class ServiceBenchReport:
    """``BENCH_service.json``: the service-scaling trajectory entry."""

    config: dict
    cold: PhaseResult = None
    warm: PhaseResult = None
    daemon_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.cold is None or self.warm is None \
                or not self.cold.programs_per_second:
            return 0.0
        return self.warm.programs_per_second / self.cold.programs_per_second

    def to_dict(self) -> dict:
        return {
            "benchmark": "service",
            "config": self.config,
            "cold": self.cold.to_dict() if self.cold else None,
            "warm": self.warm.to_dict() if self.warm else None,
            "warm_over_cold_speedup": round(self.speedup, 2),
            "daemon_stats": self.daemon_stats,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_service(requests: int = 1000, clients: int = 4,
                  unique: int = 80, seed: int = 2024,
                  zipf_s: float = 1.1, depth: int = 8, jobs: int = 1,
                  max_batch: int = 16, max_delay: float = 0.005,
                  faults: Optional[FaultPlan] = None,
                  progress: Optional[Callable[[str], None]] = None,
                  ) -> ServiceBenchReport:
    """Run the cold-vs-warm service benchmark; see the module docs.

    *requests* is the total per phase, split evenly across *clients*
    (each client replays its own deterministic Zipf stream over a pool
    of *unique* distinct generated programs).
    """
    say = progress or (lambda line: None)
    per_client = max(1, requests // clients)
    config = ServeConfig(jobs=jobs, max_batch=max_batch,
                         max_delay=max_delay)
    report = ServiceBenchReport(config={
        "requests": per_client * clients,
        "clients": clients,
        "unique_programs": unique,
        "seed": seed,
        "zipf_s": zipf_s,
        "pipeline_depth": depth,
        "jobs": jobs,
        "max_batch": max_batch,
        "max_delay_ms": round(max_delay * 1000, 3),
    })

    say(f"generating pool: {unique} unique programs (seed {seed})")
    pool = build_pool(unique, seed=seed, prefilter="full")

    with DaemonThread(config) as daemon:
        say(f"cold phase: {per_client * clients} requests, "
            f"{clients} client(s)")
        cold = run_load(daemon.address, pool, requests=per_client,
                        clients=clients, seed=seed, zipf_s=zipf_s,
                        depth=depth, faults=faults)
        cold_stats = daemon.daemon.cache.stats
        cold_rate = cold_stats.hit_rate
        report.cold = PhaseResult.from_load("cold", cold, cold_rate)

        say(f"warm phase: same stream against the warm cache")
        lookups_before = cold_stats.lookups
        hits_before = cold_stats.hits
        warm = run_load(daemon.address, pool, requests=per_client,
                        clients=clients, seed=seed, zipf_s=zipf_s,
                        depth=depth, faults=faults)
        stats = daemon.daemon.cache.stats
        warm_lookups = stats.lookups - lookups_before
        warm_rate = ((stats.hits - hits_before) / warm_lookups
                     if warm_lookups else 0.0)
        report.warm = PhaseResult.from_load("warm", warm, warm_rate)
        report.daemon_stats = daemon.daemon.snapshot()
    return report


# ----------------------------------------------------------------- fleet
def scan_cache_tree(cache_dir: str) -> dict:
    """Walk a content-addressed cache tree and unpickle every entry —
    the torn-entry detector the fleet SLO gate runs after a bench.

    Transient ``.tmp-*`` / ``.tomb-*`` files (a writer or evictor was
    mid-flight when the walk passed) are counted separately, never as
    corruption; a ``torn`` entry is a ``*.pkl`` that exists but does
    not unpickle."""
    entries = torn = transients = 0
    total_bytes = 0
    for root, _dirs, files in os.walk(cache_dir):
        for name in files:
            path = os.path.join(root, name)
            if not name.endswith(".pkl") or name.startswith("."):
                if ".tmp-" in name or ".tomb-" in name:
                    transients += 1
                continue
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
                with open(path, "rb") as handle:
                    pickle.load(handle)
            except FileNotFoundError:
                entries -= 1   # evicted mid-walk: fine
            except Exception:
                torn += 1
    return {"entries": entries, "torn": torn,
            "transients": transients, "bytes": total_bytes}


def _phase_from_dict(phase: str, d: dict, hit_rate: float) -> PhaseResult:
    return PhaseResult(phase=phase, requests=d["sent"], ok=d["ok"],
                       dropped=d["dropped"], cached=d["cached"],
                       wall_seconds=d["wall_seconds"],
                       programs_per_second=d["requests_per_second"],
                       latency_ms=d["latency_ms"], hit_rate=hit_rate,
                       errors=d["errors"])


def _fleet_cache_counters(snapshot: dict) -> Dict[str, int]:
    cache = snapshot.get("fleet", {}).get("cache", {})
    return {key: int(cache.get(key, 0))
            for key in ("hits", "misses", "stores", "memory_hits",
                        "disk_hits", "read_errors", "write_errors",
                        "expired", "disk_evictions", "evictions")}


@dataclass
class FleetBenchReport:
    """``BENCH_service.json`` for a fleet run.

    Keeps the single-daemon report's headline keys (``cold``/``warm``/
    ``warm_over_cold_speedup``) so existing trajectory tooling keeps
    working, and adds the shard-level view the fleet SLO gate asserts
    on: per-shard latency histograms and queue depths, router
    counters, per-tenant goodput spread, and the cache-integrity scan.
    """

    config: dict
    cold: PhaseResult = None
    warm: PhaseResult = None
    fleet_stats: dict = field(default_factory=dict)
    fairness: dict = field(default_factory=dict)
    cache_integrity: dict = field(default_factory=dict)
    trace: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.cold is None or self.warm is None \
                or not self.cold.programs_per_second:
            return 0.0
        return self.warm.programs_per_second / self.cold.programs_per_second

    def shard_summary(self) -> List[dict]:
        out = []
        for entry in self.fleet_stats.get("shards", []):
            stats = entry.get("stats") or {}
            out.append({
                "shard": entry.get("shard"),
                "alive": entry.get("alive"),
                "forwarded": entry.get("forwarded"),
                "latency_ms": stats.get("latency", {}),
                "queue": stats.get("queue", {}),
                "batches": stats.get("batches", {}),
                "cache": stats.get("cache", {}),
            })
        return out

    def to_dict(self) -> dict:
        return {
            "benchmark": "service-fleet",
            "config": self.config,
            "cold": self.cold.to_dict() if self.cold else None,
            "warm": self.warm.to_dict() if self.warm else None,
            "warm_over_cold_speedup": round(self.speedup, 2),
            "fairness": self.fairness,
            "cache_integrity": self.cache_integrity,
            "trace": self.trace,
            "router": self.fleet_stats.get("router", {}),
            "fleet": self.fleet_stats.get("fleet", {}),
            "shards": self.shard_summary(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_service_fleet(requests: int = 1000, clients: int = 8,
                        unique: int = 80, seed: int = 2024,
                        zipf_s: float = 1.1, depth: int = 16,
                        shards: int = 2, jobs: int = 1,
                        max_batch: int = 32, max_delay: float = 0.002,
                        cache_ttl: Optional[float] = None,
                        cache_max_bytes: Optional[int] = None,
                        priority_mix: Optional[Dict[int, float]] = None,
                        trace_path: Optional[str] = None,
                        record_path: Optional[str] = None,
                        speed: float = 0.0,
                        progress: Optional[Callable[[str], None]] = None,
                        ) -> FleetBenchReport:
    """Cold-vs-warm benchmark against a sharded fleet.

    Two load sources: by default the synthetic Zipf tenant streams
    (``tenants`` labelled, optional ``priority_mix``), or — when
    *trace_path* is given — a recorded trace replayed at *speed*
    (0 = flat out).  Either way the same stream runs twice: cold
    against an empty shared cache tree, then warm.  *record_path*
    captures the synthetic cold stream as a replayable trace.
    """
    say = progress or (lambda line: None)
    per_client = max(1, requests // clients)
    fleet_config = FleetConfig(
        shards=shards, jobs=jobs, max_batch=max_batch,
        max_delay=max_delay, cache_ttl=cache_ttl,
        cache_max_bytes=cache_max_bytes)
    events = None
    if trace_path is not None:
        events = load_trace(trace_path)
        say(f"loaded trace: {len(events)} events from {trace_path}")
    report = FleetBenchReport(config={
        "shards": shards,
        "jobs_per_shard": jobs,
        "requests": (len(events) if events is not None
                     else per_client * clients),
        "clients": (len({e.client for e in events})
                    if events is not None else clients),
        "unique_programs": None if events is not None else unique,
        "seed": seed,
        "zipf_s": zipf_s,
        "pipeline_depth": depth,
        "max_batch": max_batch,
        "max_delay_ms": round(max_delay * 1000, 3),
        "cache_ttl_seconds": cache_ttl,
        "cache_max_bytes": cache_max_bytes,
        "priority_mix": ({str(k): v for k, v in priority_mix.items()}
                         if priority_mix else None),
    })
    if events is not None:
        report.trace = {"path": trace_path, "events": len(events),
                        "speed": speed}

    pool = None
    if events is None:
        say(f"generating pool: {unique} unique programs (seed {seed})")
        pool = build_pool(unique, seed=seed, prefilter="full")

    def drive(recorder=None):
        if events is not None:
            replay = replay_trace(fleet.address, events, speed=speed,
                                  depth=depth)
            if replay.failures:
                raise RuntimeError(
                    f"replay clients failed: {replay.failures}")
            return (replay.to_dict(), replay.tenant_goodput(),
                    replay.tenant_offered(), replay.goodput_spread())
        load = run_load(fleet.address, pool, requests=per_client,
                        clients=clients, seed=seed, zipf_s=zipf_s,
                        depth=depth, tenants=True,
                        priority_mix=priority_mix, recorder=recorder)
        if load.failures:
            raise RuntimeError(f"load clients failed: {load.failures}")
        return (load.to_dict(), load.tenant_goodput,
                load.tenant_offered, load.goodput_spread())

    with FleetThread(fleet_config) as fleet:
        with ServeClient(fleet.address) as probe:
            say(f"cold phase: {report.config['requests']} requests, "
                f"{shards} shard(s)")
            recorder = TraceWriter(record_path) if record_path else None
            try:
                cold_dict, _, _, _ = drive(recorder)
            finally:
                if recorder is not None:
                    recorder.close()
            cold_snap = probe.stats()
            cold_cache = _fleet_cache_counters(cold_snap)
            cold_lookups = cold_cache["hits"] + cold_cache["misses"]
            report.cold = _phase_from_dict(
                "cold", cold_dict,
                cold_cache["hits"] / cold_lookups if cold_lookups
                else 0.0)

            say("warm phase: same stream against the warm cache")
            warm_dict, warm_tenants, warm_offered, spread = drive()
            warm_snap = probe.stats()
            warm_cache = _fleet_cache_counters(warm_snap)
            delta_hits = warm_cache["hits"] - cold_cache["hits"]
            delta_lookups = (warm_cache["hits"] + warm_cache["misses"]
                             - cold_lookups)
            report.warm = _phase_from_dict(
                "warm", warm_dict,
                delta_hits / delta_lookups if delta_lookups else 0.0)
            report.fleet_stats = warm_snap

            report.fairness = {
                "tenants": len(warm_offered),
                "goodput": dict(sorted(warm_tenants.items(),
                                       key=lambda kv: -kv[1])[:32]),
                "offered": dict(sorted(warm_offered.items(),
                                       key=lambda kv: -kv[1])[:32]),
                # max/min of per-tenant completion ratio; 1.0 = every
                # tenant's offered stream completed in full
                "goodput_spread": round(spread, 3),
            }
        say("scanning cache tree for torn entries")
        report.cache_integrity = scan_cache_tree(fleet_config.cache_dir)
        report.cache_integrity["read_errors"] = \
            _fleet_cache_counters(report.fleet_stats).get(
                "read_errors", 0)
    return report
