"""Plain-text table/figure renderers for the evaluation harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table (the bench suite's 'figures')."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, pairs: Iterable[Sequence[object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A labelled (x, y) series — the text stand-in for a figure line."""
    return render_table([x_label, y_label], pairs, title=name)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def pct(value: float) -> str:
    return f"{value * 100:.2f}%"
