"""Superoptimizer benchmark: compactness wins over Merlin-only.

For every program of a workload suite the harness

1. compiles the baseline and runs the full Merlin bytecode tier over it
   (``pipeline.optimize_program`` — the Merlin-only variant),
2. runs the caching superoptimizer pass over a copy of the Merlin
   output with a witness recorder attached and a **shared** rewrite
   memo, certifying every witness through :mod:`repro.tv`,
3. replays the identical oracle battery on fresh machines for both
   variants under the selected VM engine and requires identical
   behaviour (return value / fault per run),
4. tabulates per-program NI — the Fig-10-style compactness comparison
   Merlin vs Merlin+superopt — plus the memo hit/search counters that
   show rewrites being discovered once and replayed.

The shared memo means later programs in a suite replay windows earlier
programs already searched; the ``memo_hits``/``searches`` split in the
report quantifies that reuse.  ``repro bench-superopt`` drives this and
emits ``BENCH_superopt.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cache import CompilationCache
from ..core.pipeline import MerlinPipeline
from ..core.superopt import SuperoptSpec, SuperoptimizerPass
from ..fuzz.oracle import generate_tests
from .layoutperf import VariantCounters, _measure
from .vmperf import VM_SUITES, _suite_programs


@dataclass
class ProgramCompactness:
    """One Fig-10-style table row: NI at each stage for one program."""

    name: str
    ni_baseline: int
    ni_merlin: int
    ni_superopt: int
    rewrites: int

    @property
    def improved(self) -> bool:
        """Superopt found wins Merlin-only left on the table."""
        return self.ni_superopt < self.ni_merlin

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ni_baseline": self.ni_baseline,
            "ni_merlin": self.ni_merlin,
            "ni_superopt": self.ni_superopt,
            "rewrites": self.rewrites,
            "improved": self.improved,
        }


@dataclass
class SuperoptSuitePerf:
    """Merlin-only vs Merlin+superopt measurement of one suite."""

    suite: str
    programs: List[ProgramCompactness] = field(default_factory=list)
    before: VariantCounters = field(default_factory=VariantCounters)
    after: VariantCounters = field(default_factory=VariantCounters)
    behavior_identical: bool = True
    mismatch: str = ""
    witnesses: int = 0
    witnesses_certified: bool = True
    searches: int = 0
    memo_hits: int = 0
    site_rejects: int = 0

    @property
    def ni_merlin(self) -> int:
        return sum(row.ni_merlin for row in self.programs)

    @property
    def ni_superopt(self) -> int:
        return sum(row.ni_superopt for row in self.programs)

    @property
    def improved(self) -> int:
        return sum(1 for row in self.programs if row.improved)

    @property
    def rewrites(self) -> int:
        return sum(row.rewrites for row in self.programs)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "programs": len(self.programs),
            "improved": self.improved,
            "rewrites": self.rewrites,
            "ni_merlin": self.ni_merlin,
            "ni_superopt": self.ni_superopt,
            "behavior_identical": self.behavior_identical,
            "mismatch": self.mismatch,
            "witnesses": self.witnesses,
            "witnesses_certified": self.witnesses_certified,
            "searches": self.searches,
            "memo_hits": self.memo_hits,
            "site_rejects": self.site_rejects,
            "table": [row.to_dict() for row in self.programs],
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
        }


@dataclass
class SuperoptBenchReport:
    """Everything ``repro bench-superopt`` measured, JSON-serializable."""

    seed: int
    tests_per_program: int
    engine: str
    spec: str = ""
    suites: List[SuperoptSuitePerf] = field(default_factory=list)

    @property
    def programs_improved(self) -> int:
        return sum(suite.improved for suite in self.suites)

    @property
    def all_behavior_identical(self) -> bool:
        return all(suite.behavior_identical for suite in self.suites)

    @property
    def all_certified(self) -> bool:
        return all(suite.witnesses_certified for suite in self.suites)

    @property
    def searches(self) -> int:
        return sum(suite.searches for suite in self.suites)

    @property
    def memo_hits(self) -> int:
        return sum(suite.memo_hits for suite in self.suites)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "tests_per_program": self.tests_per_program,
            "engine": self.engine,
            "spec": self.spec,
            "programs_improved": self.programs_improved,
            "all_behavior_identical": self.all_behavior_identical,
            "all_certified": self.all_certified,
            "searches": self.searches,
            "memo_hits": self.memo_hits,
            "suites": [suite.to_dict() for suite in self.suites],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_superopt_suite(suite: str, seed: int = 2024, scale: float = 0.2,
                         count: Optional[int] = None,
                         tests_per_program: int = 6,
                         engine: str = "fast",
                         spec: Optional[SuperoptSpec] = None,
                         memo: Optional[CompilationCache] = None,
                         max_insns: int = 200_000) -> SuperoptSuitePerf:
    """Measure the superopt tier over one suite.

    *memo* is the shared rewrite-memo store; passing the same cache to
    every suite makes cross-suite replay visible in the hit counters.
    """
    from ..tv import WitnessRecorder
    from ..tv.regioncheck import validate_bytecode_witness

    spec = spec if spec is not None else SuperoptSpec()
    pipeline = MerlinPipeline()
    result = SuperoptSuitePerf(suite=suite)
    for index, program in enumerate(_suite_programs(suite, seed, scale,
                                                    count)):
        merlin, _ = pipeline.optimize_program(program)
        superopted = merlin.copy()
        superopt = SuperoptimizerPass(spec, memo=memo)
        recorder = WitnessRecorder()
        superopt.recorder = recorder
        rewrites = superopt.run(superopted)
        result.searches += superopt.counters["searches"]
        result.memo_hits += superopt.counters["memo_hits"]
        result.site_rejects += superopt.counters["site_rejects"]
        for witness in recorder.witnesses:
            result.witnesses += 1
            if not validate_bytecode_witness(witness).certified:
                result.witnesses_certified = False
        result.programs.append(ProgramCompactness(
            name=program.name or f"{suite}-{index}",
            ni_baseline=program.ni, ni_merlin=merlin.ni,
            ni_superopt=superopted.ni, rewrites=rewrites))
        tests = generate_tests(merlin, count=tests_per_program,
                               seed=seed + index)
        trace_before = _measure(merlin, tests, engine, seed, max_insns,
                                result.before)
        trace_after = _measure(superopted, tests, engine, seed, max_insns,
                               result.after)
        if trace_before != trace_after and result.behavior_identical:
            result.behavior_identical = False
            for run, (a, b) in enumerate(zip(trace_before, trace_after)):
                if a != b:
                    result.mismatch = (f"program {index} run {run}: "
                                       f"merlin={a!r} superopt={b!r}")
                    break
    return result


def bench_superopt(suites: Sequence[str] = VM_SUITES, seed: int = 2024,
                   scale: float = 0.2, count: Optional[int] = None,
                   tests_per_program: int = 6, engine: str = "fast",
                   spec: Optional[SuperoptSpec] = None,
                   max_insns: int = 200_000) -> SuperoptBenchReport:
    """The whole ``repro bench-superopt`` measurement (one shared memo)."""
    spec = spec if spec is not None else SuperoptSpec()
    report = SuperoptBenchReport(seed=seed,
                                 tests_per_program=tests_per_program,
                                 engine=engine, spec=spec.fingerprint())
    memo = CompilationCache()
    for suite in suites:
        if suite not in VM_SUITES:
            raise ValueError(
                f"unknown VM suite {suite!r} (choose from "
                f"{', '.join(VM_SUITES)})")
        report.suites.append(
            bench_superopt_suite(suite, seed=seed, scale=scale, count=count,
                                 tests_per_program=tests_per_program,
                                 engine=engine, spec=spec, memo=memo,
                                 max_insns=max_insns))
    return report
