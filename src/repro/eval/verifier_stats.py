"""Verifier-cost harness: NPI / verification-time reductions (paper
Fig. 10f) and cross-kernel state instability (paper Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import BpfProgram
from ..verifier import DEFAULT_KERNEL, KERNELS, KernelConfig, Verifier, verify


@dataclass
class VerifierComparison:
    """Verifier metrics of a program before/after Merlin."""

    name: str
    npi_before: int
    npi_after: int
    time_before_ns: float
    time_after_ns: float
    peak_before: int
    peak_after: int
    total_before: int
    total_after: int
    both_ok: bool

    @property
    def npi_reduction(self) -> float:
        return 1.0 - self.npi_after / self.npi_before if self.npi_before else 0.0

    @property
    def time_reduction(self) -> float:
        if not self.time_before_ns:
            return 0.0
        return 1.0 - self.time_after_ns / self.time_before_ns

    @property
    def peak_state_change(self) -> float:
        if not self.peak_before:
            return 0.0
        return self.peak_after / self.peak_before - 1.0

    @property
    def total_state_change(self) -> float:
        if not self.total_before:
            return 0.0
        return self.total_after / self.total_before - 1.0


def compare_verifier_cost(
    baseline: BpfProgram,
    optimized: BpfProgram,
    kernel: KernelConfig = DEFAULT_KERNEL,
    name: str = "",
) -> VerifierComparison:
    before = verify(baseline, kernel)
    after = verify(optimized, kernel)
    return VerifierComparison(
        name=name or baseline.name,
        npi_before=before.npi,
        npi_after=after.npi,
        time_before_ns=before.verification_time_ns,
        time_after_ns=after.verification_time_ns,
        peak_before=before.peak_states,
        peak_after=after.peak_states,
        total_before=before.total_states,
        total_after=after.total_states,
        both_ok=before.ok and after.ok,
    )


def state_change_across_kernels(
    baseline: BpfProgram,
    optimized: BpfProgram,
    kernel_versions: Sequence[str] = ("5.19", "6.5"),
) -> Dict[str, Tuple[float, float]]:
    """Table 5: (peak, total) state change per kernel version.

    The change can flip sign across versions because each version's
    pruning cadence interacts differently with the reshaped CFG — the
    paper's argument for treating state counts as unstable metrics.
    """
    changes: Dict[str, Tuple[float, float]] = {}
    for version in kernel_versions:
        comparison = compare_verifier_cost(
            baseline, optimized, KERNELS[version]
        )
        changes[version] = (
            comparison.peak_state_change,
            comparison.total_state_change,
        )
    return changes
