"""RQ2 harness: throughput, latency, and hardware counters for XDP
programs (paper Table 3, Fig. 11, Fig. 14).

Substitutes the CloudLab xl170 + T-Rex testbed with the package's VM:

* **throughput** — MLFFR of one core modelled as
  ``core_freq / (cycles_per_packet + driver_overhead)``, with
  cycles-per-packet measured by running the program over a generated
  traffic stream (cache and predictor state persist across packets);
* **latency** — an M/M/1 queue with a bounded buffer evaluated at the
  paper's four load levels (low / medium / high / saturate), defined
  relative to the unoptimized and best-known throughputs exactly as in
  §5.1;
* **counters** — cache misses, branch misses from the hardware models;
  context switches estimated from core utilization.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..hw import PerfCounters
from ..isa import BpfProgram
from ..vm import Machine
from ..workloads.packets import TrafficGenerator
from ..workloads.seeding import seed_maps

#: xl170 nodes carry 2.4 GHz E5-2640v4 cores
CORE_FREQ_HZ = 2.4e9
#: fixed per-packet driver + XDP dispatch cost (cycles)
DRIVER_CYCLES = 450.0
#: software queue in front of the XDP core (packets)
QUEUE_DEPTH = 512
#: fixed wire/PCIe round-trip latency (microseconds)
BASE_LATENCY_US = 8.0

#: context-switch model: a 5-second window at zero load vs fully busy
CS_BASE_PER_5S = 220.0
CS_UTIL_PER_5S = 5200.0

LOAD_LEVELS = ("low", "medium", "high", "saturate")


@dataclass
class PacketPerf:
    """Measured per-packet behaviour of one program."""

    name: str
    packets: int
    cycles_per_packet: float
    instructions_per_packet: float
    counters: PerfCounters  # totals over the measured stream
    actions: Dict[int, int] = field(default_factory=dict)

    @property
    def throughput_mpps(self) -> float:
        busy = self.cycles_per_packet + DRIVER_CYCLES
        return CORE_FREQ_HZ / busy / 1e6

    @property
    def service_time_us(self) -> float:
        return (self.cycles_per_packet + DRIVER_CYCLES) / CORE_FREQ_HZ * 1e6


class NetworkEval:
    """Runs XDP programs over generated traffic and reports RQ2 metrics."""

    def __init__(self, packets: int = 1500, packet_size: int = 64,
                 seed: int = 42, warmup: int = 100):
        self.packets = packets
        self.packet_size = packet_size
        self.seed = seed
        self.warmup = warmup

    def measure(self, program: BpfProgram, name: str = "") -> PacketPerf:
        generator = TrafficGenerator(seed=self.seed)
        machine = Machine(program, seed=self.seed)
        seed_maps(machine, generator)
        for packet in generator.stream(self.warmup, self.packet_size):
            machine.run(packet=packet)
        before = machine.counters.snapshot()
        actions: Dict[int, int] = {}
        instructions = 0
        for packet in generator.stream(self.packets, self.packet_size):
            result = machine.run(packet=packet)
            actions[result.xdp_action] = actions.get(result.xdp_action, 0) + 1
        delta = machine.counters.delta(before)
        return PacketPerf(
            name=name or program.name,
            packets=self.packets,
            cycles_per_packet=delta.cycles / self.packets,
            instructions_per_packet=delta.instructions / self.packets,
            counters=delta,
            actions=actions,
        )

    # ------------------------------------------------------------- latency
    @staticmethod
    def latency_us(perf: PacketPerf, offered_mpps: float) -> float:
        """Sojourn time under offered load (bounded M/M/1)."""
        service_us = perf.service_time_us
        mu = 1.0 / service_us  # packets per microsecond
        lam = offered_mpps  # Mpps == packets per microsecond
        max_latency = BASE_LATENCY_US + QUEUE_DEPTH * service_us
        if lam >= mu * 0.999:
            return max_latency
        wait = 1.0 / (mu - lam)
        return min(BASE_LATENCY_US + wait, max_latency)

    def load_levels(self, clang_perf: PacketPerf,
                    best_mpps: float) -> Dict[str, float]:
        """The paper's four offered-load points for one program."""
        clang_mpps = clang_perf.throughput_mpps
        return {
            "low": 0.70 * clang_mpps,
            "medium": clang_mpps,
            "high": best_mpps,
            "saturate": 1.15 * best_mpps,
        }

    # --------------------------------------------------------------- table 3
    def table3_row(self, perfs: Dict[str, PacketPerf]) -> Dict[str, object]:
        """One program's Table 3 entries. *perfs* maps variant name
        ('clang'/'k2'/'merlin') to its measurement."""
        best = max(p.throughput_mpps for p in perfs.values())
        loads = self.load_levels(perfs["clang"], best)
        row: Dict[str, object] = {}
        for variant, perf in perfs.items():
            row[f"throughput_{variant}"] = perf.throughput_mpps
        for level, offered in loads.items():
            row[f"load_{level}"] = offered
            for variant, perf in perfs.items():
                row[f"latency_{level}_{variant}"] = self.latency_us(
                    perf, offered
                )
        return row

    # ------------------------------------------------------------ counters
    @staticmethod
    def counters_in_window(perf: PacketPerf, offered_mpps: float,
                           window_seconds: float = 5.0) -> PerfCounters:
        """Scale measured per-packet rates to a time window at a load."""
        served_mpps = min(offered_mpps, perf.throughput_mpps)
        packets = served_mpps * 1e6 * window_seconds
        scale = packets / perf.packets
        delta = perf.counters
        window = PerfCounters(
            instructions=int(delta.instructions * scale),
            cycles=int(delta.cycles * scale),
            cache_references=int(delta.cache_references * scale),
            cache_misses=int(delta.cache_misses * scale),
            branches=int(delta.branches * scale),
            branch_misses=int(delta.branch_misses * scale),
        )
        utilization = min(1.0, offered_mpps / perf.throughput_mpps)
        window.context_switches = int(
            (CS_BASE_PER_5S + CS_UTIL_PER_5S * utilization)
            * window_seconds / 5.0
        )
        return window
