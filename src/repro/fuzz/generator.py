"""Random-but-valid program generation at three entry layers.

The fuzzer feeds the optimizer through every door it has:

* ``source`` — mini-C programs with bounded loops, branches, map
  helper calls, and mixed-width ctx loads (the frontend + IR + codegen
  + bytecode tiers all run);
* ``ir`` — IR modules built with :class:`repro.ir.IRBuilder` and
  round-tripped through the textual IR (IR passes + codegen + bytecode
  tiers run);
* ``bytecode`` — raw assembly text (bytecode tier only), including
  adjacent constant stores that bait the superword merger.

Every generated program is *text* in the layer's surface syntax, so a
program can be rebuilt from scratch for every pass configuration (IR
passes mutate their input) and shrunk line-wise by the minimizer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import ir
from ..isa import ProgramType

LAYERS = ("source", "ir", "bytecode")

_WIDTHS = (1, 2, 4, 8)
_TYPE_BY_WIDTH = {1: "u8", 2: "u16", 4: "u32", 8: "u64"}


@dataclass
class GeneratedProgram:
    """One fuzz input: a program in the surface syntax of its layer."""

    layer: str
    name: str  # entry function name (unused for bytecode)
    text: str
    seed: int
    prog_type: ProgramType = ProgramType.TRACEPOINT
    ctx_size: int = 64
    mcpu: str = "v2"

    @property
    def statements(self) -> int:
        return count_statements(self.layer, self.text)

    def replace_text(self, text: str) -> "GeneratedProgram":
        return GeneratedProgram(self.layer, self.name, text, self.seed,
                                self.prog_type, self.ctx_size, self.mcpu)


def count_statements(layer: str, text: str) -> int:
    """Reproducer size metric: executable statements, not lines."""
    count = 0
    for raw in text.splitlines():
        line = raw.split(";")[0] if layer == "bytecode" else raw
        line = line.split("//")[0].strip()
        if not line or line in ("{", "}", "} else {"):
            continue
        if layer == "bytecode":
            if not line.endswith(":"):  # labels are free
                count += 1
        elif layer == "ir":
            if not (line.startswith("define") or line.endswith(":")
                    or line == "}"):
                count += 1
        else:  # source
            if line.endswith(";") or line.split("(")[0].strip() in (
                    "if", "for", "while"):
                count += 1
    return count


# ----------------------------------------------------------------------
# mini-C source layer
# ----------------------------------------------------------------------
class SourceGenerator:
    """Random mini-C: loops, branches, maps, mixed-width ctx loads."""

    def __init__(self, seed: int, map_bias: float = 0.6,
                 store_pair_bias: float = 0.25):
        self.seed = seed
        self.rng = random.Random(seed)
        self.map_bias = map_bias
        self.store_pair_bias = store_pair_bias

    # -- expressions ---------------------------------------------------
    def _operand(self, scalars: Sequence[str], extra: Sequence[str] = ()) -> str:
        rng = self.rng
        pool = list(scalars) + list(extra)
        if pool and rng.random() < 0.75:
            return f"(u64){rng.choice(pool)}"
        return str(rng.randrange(1, 1 << 16))

    def _expr(self, scalars: Sequence[str], extra: Sequence[str] = ()) -> str:
        rng = self.rng
        a = self._operand(scalars, extra)
        if rng.random() < 0.3:
            return a
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"])
        if op in ("<<", ">>"):
            b = str(rng.randrange(0, 8))
        elif op in ("/", "%"):
            b = str(rng.choice([3, 5, 7, 9, 13, 251]))
        else:
            b = self._operand(scalars, extra)
        return f"({a} {op} {b})"

    # -- statements ----------------------------------------------------
    def generate(self) -> GeneratedProgram:
        rng = self.rng
        header: List[str] = []
        maps: List[Tuple[str, int]] = []
        if rng.random() < self.map_bias:
            for m in range(rng.choice([1, 1, 2])):
                entries = rng.choice([4, 8, 16])
                kind = "array" if rng.random() < 0.7 else "hash"
                header.append(f"map {kind} m{m}(u32, u64, {entries});")
                maps.append((f"m{m}", entries))

        body: List[str] = ["    u64 acc = 0;"]
        scalars: List[str] = ["acc"]
        counter = [0]

        def fresh(prefix: str = "v") -> str:
            counter[0] += 1
            return f"{prefix}{counter[0]}"

        loops_left = 2
        for _ in range(rng.randrange(5, 14)):
            roll = rng.random()
            if roll < 0.22:
                # mixed-width ctx load
                width = rng.choice(_WIDTHS)
                ty = _TYPE_BY_WIDTH[width]
                off = width * rng.randrange(0, 64 // width)
                if off + width > 64:
                    off = 64 - width
                name = fresh()
                body.append(f"    {ty} {name} = *({ty}*)(ctx + {off});")
                scalars.append(name)
            elif roll < 0.45:
                width = rng.choice((4, 8))
                ty = _TYPE_BY_WIDTH[width]
                name = fresh()
                body.append(
                    f"    {ty} {name} = ({ty})"
                    f"{self._expr(scalars)};")
                scalars.append(name)
            elif roll < 0.55:
                a = self._operand(scalars)
                c = rng.randrange(0, 1 << 12)
                name = fresh()
                body.append(
                    f"    u64 {name} = ({a} > {c} ? {self._operand(scalars)}"
                    f" : {self._operand(scalars)});")
                scalars.append(name)
            elif roll < 0.68:
                body.append(
                    f"    if ({self._operand(scalars)} "
                    f"{rng.choice(['<', '>', '==', '!=', '<=', '>='])} "
                    f"{self._operand(scalars)}) {{")
                body.append(f"        acc ^= {self._expr(scalars)};")
                if rng.random() < 0.5:
                    body.append("    } else {")
                    body.append(f"        acc += {self._expr(scalars)};")
                body.append("    }")
            elif roll < 0.78 and loops_left:
                loops_left -= 1
                i = fresh("i")
                trip = rng.randrange(2, 9)
                body.append(
                    f"    for (u64 {i} = 0; {i} < {trip}; {i} += 1) {{")
                body.append(
                    f"        acc += {self._expr(scalars, extra=[i])};")
                body.append("    }")
            elif roll < 0.9 and maps:
                self._map_block(body, scalars, maps, fresh)
            elif maps and rng.random() < self.store_pair_bias * 4:
                self._store_pair_block(body, scalars, maps, fresh)
            else:
                body.append(f"    acc ^= {self._expr(scalars)};")

        tail = " ^ ".join(f"(u64){v}" for v in scalars[-5:])
        body.append(f"    return acc ^ {tail};")

        lines = header + ["u64 f(u8* ctx) {"] + body + ["}"]
        return GeneratedProgram("source", "f", "\n".join(lines), self.seed)

    def _map_block(self, body: List[str], scalars: List[str],
                   maps: Sequence[Tuple[str, int]], fresh) -> None:
        rng = self.rng
        map_name, entries = rng.choice(maps)
        key = fresh("k")
        ptr = fresh("p")
        body.append(
            f"    u32 {key} = (u32){self._expr(scalars)} & {entries - 1};")
        body.append(f"    u64* {ptr} = map_lookup({map_name}, &{key});")
        body.append(f"    if ({ptr} != 0) {{")
        body.append(f"        acc ^= *{ptr};")
        if rng.random() < 0.5:
            body.append(f"        *{ptr} += {self._expr(scalars)};")
        body.append("    }")
        if rng.random() < 0.4:
            val = fresh("t")  # not "u": u8/u16/... are type keywords
            body.append(f"    u64 {val} = {self._expr(scalars)};")
            body.append(
                f"    map_update({map_name}, &{key}, &{val}, BPF_ANY);")

    def _store_pair_block(self, body: List[str], scalars: List[str],
                          maps: Sequence[Tuple[str, int]], fresh) -> None:
        """Two adjacent address-taken constant u32 locals: after the
        store-immediate fold these become adjacent constant stack stores
        — prime superword-merge territory."""
        rng = self.rng
        map_name, entries = rng.choice(maps)
        a, b = fresh("s"), fresh("s")
        pa, pb = fresh("q"), fresh("q")
        body.append(f"    u32 {a} = {rng.randrange(0, entries)};")
        body.append(f"    u32 {b} = {rng.randrange(0, entries)};")
        body.append(f"    u64* {pa} = map_lookup({map_name}, &{a});")
        body.append(f"    if ({pa} != 0) {{")
        body.append(f"        acc += *{pa};")
        body.append("    }")
        body.append(f"    u64* {pb} = map_lookup({map_name}, &{b});")
        body.append(f"    if ({pb} != 0) {{")
        body.append(f"        acc ^= *{pb};")
        body.append("    }")


# ----------------------------------------------------------------------
# IR layer
# ----------------------------------------------------------------------
class IRGenerator:
    """Random IR built with the builder, serialized via the printer so
    every fuzz run also round-trips the textual IR."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)

    def generate(self) -> GeneratedProgram:
        rng = self.rng
        func = ir.Function("f", ir.I64, [ir.pointer(ir.I8)], ["ctx"])
        entry = func.add_block("entry")
        b = ir.IRBuilder()
        b.position_at_end(entry)
        ctx = func.args[0]

        vals: List[ir.Value] = []
        for _ in range(rng.randrange(2, 5)):
            width = rng.choice(_WIDTHS)
            off = width * rng.randrange(0, 64 // width)
            ptr = b.gep_const(ctx, off, ir.int_type(width * 8))
            loaded = b.load(ptr, align=width)
            vals.append(loaded if width == 8 else b.zext(loaded, ir.I64))

        acc = vals[0]
        for _ in range(rng.randrange(3, 9)):
            a = rng.choice(vals)
            c = rng.choice(vals + [b.i64(rng.randrange(1, 1 << 16))])
            roll = rng.random()
            if roll < 0.5:
                v = b.binop(rng.choice(["add", "sub", "mul", "and", "or",
                                        "xor"]), a, c)
            elif roll < 0.65:
                shift = b.i64(rng.randrange(0, 8))
                v = b.shl(a, shift) if rng.random() < 0.5 else b.lshr(a, shift)
            elif roll < 0.8:
                divisor = b.i64(rng.choice([3, 5, 7, 9, 13]))
                v = b.udiv(a, divisor) if rng.random() < 0.5 \
                    else b.urem(a, divisor)
            else:
                cond = b.icmp(rng.choice(["eq", "ne", "ult", "ugt", "ule",
                                          "uge"]), a, c)
                v = b.select(cond, a, c)
            vals.append(v)
            acc = b.xor(acc, v)

        if rng.random() < 0.6:
            # one diamond so phi lowering and block layout are exercised
            cond = b.icmp("ugt", acc, b.i64(rng.randrange(1 << 12)))
            then_bb = func.add_block("then")
            else_bb = func.add_block("otherwise")
            join_bb = func.add_block("join")
            b.cbr(cond, then_bb, else_bb)
            b.position_at_end(then_bb)
            t_val = b.add(acc, rng.choice(vals))
            b.br(join_bb)
            b.position_at_end(else_bb)
            f_val = b.xor(acc, b.i64(rng.randrange(1, 1 << 16)))
            b.br(join_bb)
            b.position_at_end(join_bb)
            phi = b.phi(ir.I64)
            phi.add_incoming(t_val, then_bb)
            phi.add_incoming(f_val, else_bb)
            acc = phi
        b.ret(acc)
        return GeneratedProgram("ir", "f", ir.print_function(func), self.seed)


# ----------------------------------------------------------------------
# raw bytecode layer
# ----------------------------------------------------------------------
class BytecodeGenerator:
    """Random assembly: ctx loads, ALU runs, stack traffic (including
    mergeable constant-store pairs), and forward branches."""

    _ALU_OPS = ("+=", "-=", "*=", "&=", "|=", "^=")
    _CMP_OPS = ("==", "!=", ">", ">=", "<", "<=")

    def __init__(self, seed: int, store_pair_bias: float = 0.35):
        self.seed = seed
        self.rng = random.Random(seed)
        self.store_pair_bias = store_pair_bias

    def _mem(self, size: int, off: int) -> str:
        assert off < 0
        return f"*(u{size * 8} *)(r10 - {-off})"

    def generate(self) -> GeneratedProgram:
        rng = self.rng
        lines: List[str] = []
        avail: List[int] = []
        next_reg = 2

        def claim() -> int:
            nonlocal next_reg
            if next_reg <= 9:
                reg = next_reg
                next_reg += 1
                return reg
            return rng.choice(avail)

        for _ in range(rng.randrange(2, 5)):
            width = rng.choice(_WIDTHS)
            off = width * rng.randrange(0, 64 // width)
            reg = claim()
            lines.append(f"r{reg} = *(u{width * 8} *)(r1 + {off})")
            if reg not in avail:
                avail.append(reg)

        for group in range(rng.randrange(3, 8)):
            roll = rng.random()
            if roll < self.store_pair_bias:
                # adjacent constant stores + merged-width reload
                size = rng.choice((1, 2, 4))
                span = 2 * size
                base = -span * rng.randrange(1, 64 // span + 1)
                limit = 1 << min(size * 8, 15)
                lines.append(
                    f"{self._mem(size, base)} = {rng.randrange(limit)}")
                lines.append(
                    f"{self._mem(size, base + size)} = {rng.randrange(limit)}")
                reg = claim()
                lines.append(f"r{reg} = {self._mem(span, base)}")
                if reg not in avail:
                    avail.append(reg)
            elif roll < 0.5:
                # register store + reload
                size = rng.choice(_WIDTHS)
                off = -size * rng.randrange(1, 64 // size + 1)
                lines.append(
                    f"{self._mem(size, off)} = r{rng.choice(avail)}")
                reg = claim()
                lines.append(f"r{reg} = {self._mem(size, off)}")
                if reg not in avail:
                    avail.append(reg)
            elif roll < 0.8:
                for _ in range(rng.randrange(1, 4)):
                    dst = rng.choice(avail)
                    op = rng.choice(self._ALU_OPS + ("<<=", ">>=", "/=", "%="))
                    if op in ("<<=", ">>="):
                        rhs = str(rng.randrange(0, 32))
                    elif op in ("/=", "%="):
                        rhs = str(rng.choice([3, 5, 7, 13, 251]))
                    elif rng.random() < 0.5:
                        rhs = f"r{rng.choice(avail)}"
                    else:
                        rhs = str(rng.randrange(1, 1 << 15))
                    lines.append(f"r{dst} {op} {rhs}")
            else:
                # forward branch over mutations of already-live regs
                label = f"L{group}"
                lines.append(
                    f"if r{rng.choice(avail)} {rng.choice(self._CMP_OPS)} "
                    f"{rng.randrange(0, 1 << 12)} goto {label}")
                for _ in range(rng.randrange(1, 3)):
                    dst = rng.choice(avail)
                    lines.append(
                        f"r{dst} {rng.choice(self._ALU_OPS)} "
                        f"r{rng.choice(avail)}")
                lines.append(f"{label}:")

        lines.append(f"r0 = r{avail[0]}")
        for reg in avail[1:]:
            lines.append(f"r0 ^= r{reg}")
        lines.append("exit")
        return GeneratedProgram("bytecode", "fuzz_bc", "\n".join(lines),
                                self.seed)


def generate(layer: str, seed: int, **kwargs) -> GeneratedProgram:
    """Generate one program at *layer* from *seed* (deterministic)."""
    if layer == "source":
        return SourceGenerator(seed, **kwargs).generate()
    if layer == "ir":
        return IRGenerator(seed, **kwargs).generate()
    if layer == "bytecode":
        return BytecodeGenerator(seed, **kwargs).generate()
    raise ValueError(f"unknown fuzz layer {layer!r} (expected {LAYERS})")
