"""Differential fuzzing for the Merlin optimizer.

Generates random-but-valid programs at three layers (mini-C source, IR
text, raw assembly), runs each under the unoptimized baseline and every
enabled-pass configuration, and compares all observable behaviour with
the shared oracle.  On divergence: bisect to the guilty pass, shrink
with delta debugging, and emit a ready-to-commit regression test.

Entry points: :func:`run_campaign` (the whole loop, what ``repro fuzz``
calls), :func:`diff_case`/:func:`replay` (one program), and
:func:`planted_superword_bug` (fault injection for the self-test).
"""

from contextlib import contextmanager

from .bisect import BisectResult, bisect_divergence
from .corpus import reproducer_name, write_reproducer
from .differential import (
    PASS_CONFIGS,
    SUPEROPT_CONFIG,
    BaselineRecord,
    Divergence,
    build_program,
    check_config,
    check_engines,
    check_layout,
    check_superopt,
    diff_case,
    observe_baseline,
    pass_sequence,
    replay,
)
from .engine import FuzzFinding, FuzzReport, check_roundtrip, run_campaign
from .generator import LAYERS, GeneratedProgram, count_statements, generate
from .minimize import ddmin, minimize_divergence
from .oracle import (
    Observation,
    TestCase,
    equivalent,
    first_divergence,
    generate_tests,
    observable_state,
    observe_battery,
    populate_maps,
    run_observed,
)


@contextmanager
def planted_superword_bug():
    """Temporarily plant an off-by-one in superword merge offsets.

    The fuzzer self-test uses this to prove the whole pipeline —
    detection, bisection, minimization — catches a genuine miscompile.
    """
    from ..core.bytecode_passes import superword

    previous = superword.PLANTED_OFFSET_BUG
    superword.PLANTED_OFFSET_BUG = True
    try:
        yield
    finally:
        superword.PLANTED_OFFSET_BUG = previous


__all__ = [
    "BaselineRecord",
    "BisectResult",
    "Divergence",
    "FuzzFinding",
    "FuzzReport",
    "GeneratedProgram",
    "LAYERS",
    "Observation",
    "PASS_CONFIGS",
    "SUPEROPT_CONFIG",
    "TestCase",
    "bisect_divergence",
    "build_program",
    "check_config",
    "check_engines",
    "check_layout",
    "check_roundtrip",
    "check_superopt",
    "count_statements",
    "ddmin",
    "diff_case",
    "equivalent",
    "first_divergence",
    "generate",
    "generate_tests",
    "minimize_divergence",
    "observable_state",
    "observe_baseline",
    "observe_battery",
    "pass_sequence",
    "planted_superword_bug",
    "populate_maps",
    "replay",
    "reproducer_name",
    "run_campaign",
    "run_observed",
    "write_reproducer",
]
