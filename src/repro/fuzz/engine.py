"""Campaign driver: generate → diff → bisect → minimize → persist.

One campaign runs ``budget`` generated programs round-robin across the
enabled layers, checks each against every pass configuration with the
differential oracle, and — for each divergence — bisects the guilty
pass, shrinks the program with the delta debugger, and writes a
ready-to-commit regression test into the corpus directory.  Every
program also gets an assembler/disassembler round-trip check for free,
since the baseline bytecode is already in hand.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..isa import assemble, disassemble
from ..verifier import DEFAULT_KERNEL, KernelConfig
from .bisect import BisectResult, bisect_divergence
from .corpus import write_reproducer
from .differential import (
    PASS_CONFIGS,
    Divergence,
    check_certificates,
    check_config,
    check_engines,
    check_layout,
    check_superopt,
    observe_baseline,
)
from .generator import LAYERS, GeneratedProgram, generate
from .minimize import minimize_divergence


@dataclass
class FuzzFinding:
    """One confirmed divergence, fully triaged."""

    divergence: Divergence
    bisect: Optional[BisectResult] = None
    minimized: Optional[GeneratedProgram] = None
    reproducer_path: Optional[str] = None

    def to_dict(self) -> dict:
        case = self.divergence.case
        out = {
            "layer": case.layer,
            "seed": case.seed,
            "kind": self.divergence.kind,
            "enabled": list(self.divergence.enabled),
            "detail": self.divergence.detail,
            "test_index": self.divergence.test_index,
            "statements": case.statements,
        }
        if self.bisect is not None:
            out["guilty_pass"] = self.bisect.guilty_pass
            out["guilty_tier"] = self.bisect.guilty_tier
            out["standalone"] = self.bisect.standalone
        if self.minimized is not None:
            out["minimized_statements"] = self.minimized.statements
            out["minimized_text"] = self.minimized.text
        if self.reproducer_path is not None:
            out["reproducer"] = self.reproducer_path
        return out


@dataclass
class FuzzReport:
    """Everything a campaign did, JSON-serializable for the CLI."""

    seed: int
    budget: int
    layers: List[str]
    programs_run: int = 0
    programs_skipped: int = 0  # generated program failed to build at all
    roundtrip_failures: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.roundtrip_failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "layers": self.layers,
            "programs_run": self.programs_run,
            "programs_skipped": self.programs_skipped,
            "roundtrip_failures": self.roundtrip_failures,
            "divergences": len(self.findings),
            "clean": self.clean,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def check_roundtrip(program) -> bool:
    """``assemble(disassemble(p)) == p`` — the ISA text format must be
    lossless or minimized reproducers would lie about the program."""
    return assemble(disassemble(program.insns)) == list(program.insns)


def _check_index(index: int, seed: int, layers: Sequence[str],
                 configs: Sequence[FrozenSet[str]], kernel: KernelConfig,
                 tests_per_program: int, minimize: bool,
                 engines: bool = True, certify: bool = True,
                 layout: bool = True, superopt: bool = True
                 ) -> Tuple[str, Optional[FuzzFinding]]:
    """Generate and triage one campaign index.

    Returns ``(status, finding)`` with status in ``"skipped"`` /
    ``"ok"`` / ``"roundtrip"``; shared verbatim by the sequential loop
    and the parallel workers so a campaign's outcome is independent of
    ``jobs``.
    """
    layer = layers[index % len(layers)]
    # distinct seed stream per layer so adding a layer does not
    # reshuffle every other layer's programs
    case = generate(layer, seed * 1_000_003 + index)

    try:
        baseline = observe_baseline(case, kernel, tests_per_program)
    except Exception:
        # generator produced something the toolchain rejects outright
        # (both sides agree, so nothing differential to learn)
        return "skipped", None

    status = "ok"
    if not check_roundtrip(baseline.program):
        status = "roundtrip"

    if engines:
        # engine-vs-engine axis: the fast VM engine must match the
        # reference interpreter bit-for-bit (counters included).  A hit
        # here is a VM bug, not an optimizer bug — pass bisection and
        # program minimization against pass pipelines don't apply.
        engine_divergence = check_engines(case, baseline, kernel)
        if engine_divergence is not None:
            return status, FuzzFinding(engine_divergence)

    divergence: Optional[Divergence] = None
    for enabled in configs:
        divergence = check_config(case, enabled, baseline, kernel)
        if divergence is not None:
            break
    if divergence is None:
        if layout:
            # layout-on vs layout-off axis: profile-guided re-layout
            # must preserve behaviour under both engines and certify
            # every rewrite.  A hit names the layout pass directly, so
            # it skips pass bisection like the other pseudo-configs.
            layout_divergence = check_layout(case, baseline, kernel)
            if layout_divergence is not None:
                return status, FuzzFinding(layout_divergence)
        if superopt:
            # superopt-on vs superopt-off axis: windowed
            # superoptimization must preserve behaviour under both
            # engines and certify every rewrite.  A hit names the
            # superopt pass directly, so it skips pass bisection.
            superopt_divergence = check_superopt(case, baseline, kernel)
            if superopt_divergence is not None:
                return status, FuzzFinding(superopt_divergence)
        if certify:
            # translation-validation axis: every pass application of
            # the full pipeline must earn an equivalence certificate.
            # Runs after the behavioral configs so a bug that shows up
            # end-to-end keeps its bisected, minimized reproducer; a
            # certificate hit already names the guilty pass and program
            # point, so that finding skips bisection.
            cert_divergence = check_certificates(case, kernel)
            if cert_divergence is not None:
                return status, FuzzFinding(cert_divergence)
        return status, None

    finding = FuzzFinding(divergence)
    try:
        finding.bisect = bisect_divergence(divergence, kernel,
                                           baseline=baseline,
                                           tests_per_program=tests_per_program)
    except Exception:
        pass
    if minimize:
        try:
            finding.minimized = minimize_divergence(
                divergence, kernel, tests_per_program=tests_per_program)
        except Exception:
            pass
    return status, finding


def _campaign_slice(payload: tuple) -> List[Tuple[int, str, Optional[FuzzFinding]]]:
    """Worker entry point: triage a strided slice of campaign indices."""
    (seed, start, budget, stride, layers, configs, kernel,
     tests_per_program, minimize, engines, certify, layout,
     superopt) = payload
    out = []
    for index in range(start, budget, stride):
        status, finding = _check_index(index, seed, layers, configs, kernel,
                                       tests_per_program, minimize, engines,
                                       certify, layout, superopt)
        out.append((index, status, finding))
    return out


def run_campaign(seed: int = 0, budget: int = 200,
                 corpus_dir: Optional[str] = None,
                 layers: Sequence[str] = LAYERS,
                 configs: Sequence[FrozenSet[str]] = PASS_CONFIGS,
                 kernel: KernelConfig = DEFAULT_KERNEL,
                 tests_per_program: int = 4,
                 minimize: bool = True,
                 jobs: int = 1,
                 engines: bool = True,
                 certify: bool = True,
                 layout: bool = True,
                 superopt: bool = True,
                 progress=None) -> FuzzReport:
    """Run one differential-fuzzing campaign of *budget* programs.

    ``jobs > 1`` fans program triage out over worker processes (strided
    index slices keep per-layer seed streams intact); findings are
    merged back in index order and reproducers are written by the
    parent, so the report is identical to a sequential run.

    ``engines`` additionally runs every baseline program on both VM
    execution engines (reference and fast) and requires bit-identical
    observations, counters included.

    ``certify`` additionally runs the full pipeline in translation-
    validation mode over every program and requires an equivalence
    certificate for each individual pass application.

    ``layout`` additionally re-lays every baseline program out under a
    profile collected on its own oracle battery and requires identical
    behaviour (return/state/fault — counters excluded by design) under
    both VM engines, plus a certified witness for every layout rewrite.

    ``superopt`` additionally runs the windowed superoptimizer over
    every baseline program and requires identical behaviour under both
    VM engines, plus a certified witness for every applied rewrite.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    report = FuzzReport(seed=seed, budget=budget, layers=list(layers))
    started = time.monotonic()

    if jobs == 1:
        triaged = (
            (index, *_check_index(index, seed, layers, configs, kernel,
                                  tests_per_program, minimize, engines,
                                  certify, layout, superopt))
            for index in range(budget)
        )
        for index, status, finding in triaged:
            _merge_outcome(report, index, status, finding, layers, corpus_dir,
                       progress)
    else:
        payloads = [
            (seed, start, budget, jobs, tuple(layers), tuple(configs),
             kernel, tests_per_program, minimize, engines, certify, layout,
             superopt)
            for start in range(min(jobs, max(budget, 1)))
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            slices = list(pool.map(_campaign_slice, payloads))
        merged = sorted(
            (item for piece in slices for item in piece),
            key=lambda item: item[0],
        )
        for index, status, finding in merged:
            _merge_outcome(report, index, status, finding, layers, corpus_dir,
                       progress)

    report.elapsed_seconds = time.monotonic() - started
    return report


def _merge_outcome(report: FuzzReport, index: int, status: str,
               finding: Optional[FuzzFinding], layers: Sequence[str],
               corpus_dir: Optional[str], progress) -> None:
    """Fold one triaged index into the campaign report (parent side:
    counters, progress lines, and reproducer writes)."""
    if status == "skipped":
        report.programs_skipped += 1
        return
    report.programs_run += 1
    if status == "roundtrip":
        report.roundtrip_failures += 1
        if progress:
            progress(f"[{index}] {layers[index % len(layers)]}: "
                     "asm round-trip failed")
    if finding is None:
        return
    if progress:
        progress(f"[{index}] {finding.divergence.describe()}")
    if corpus_dir is not None:
        finding.reproducer_path = write_reproducer(
            corpus_dir, finding.divergence, finding.minimized, finding.bisect)
    report.findings.append(finding)
