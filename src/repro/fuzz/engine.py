"""Campaign driver: generate → diff → bisect → minimize → persist.

One campaign runs ``budget`` generated programs round-robin across the
enabled layers, checks each against every pass configuration with the
differential oracle, and — for each divergence — bisects the guilty
pass, shrinks the program with the delta debugger, and writes a
ready-to-commit regression test into the corpus directory.  Every
program also gets an assembler/disassembler round-trip check for free,
since the baseline bytecode is already in hand.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

from ..isa import assemble, disassemble
from ..verifier import DEFAULT_KERNEL, KernelConfig
from .bisect import BisectResult, bisect_divergence
from .corpus import write_reproducer
from .differential import (
    PASS_CONFIGS,
    Divergence,
    check_config,
    observe_baseline,
)
from .generator import LAYERS, GeneratedProgram, generate
from .minimize import minimize_divergence


@dataclass
class FuzzFinding:
    """One confirmed divergence, fully triaged."""

    divergence: Divergence
    bisect: Optional[BisectResult] = None
    minimized: Optional[GeneratedProgram] = None
    reproducer_path: Optional[str] = None

    def to_dict(self) -> dict:
        case = self.divergence.case
        out = {
            "layer": case.layer,
            "seed": case.seed,
            "kind": self.divergence.kind,
            "enabled": list(self.divergence.enabled),
            "detail": self.divergence.detail,
            "test_index": self.divergence.test_index,
            "statements": case.statements,
        }
        if self.bisect is not None:
            out["guilty_pass"] = self.bisect.guilty_pass
            out["guilty_tier"] = self.bisect.guilty_tier
            out["standalone"] = self.bisect.standalone
        if self.minimized is not None:
            out["minimized_statements"] = self.minimized.statements
            out["minimized_text"] = self.minimized.text
        if self.reproducer_path is not None:
            out["reproducer"] = self.reproducer_path
        return out


@dataclass
class FuzzReport:
    """Everything a campaign did, JSON-serializable for the CLI."""

    seed: int
    budget: int
    layers: List[str]
    programs_run: int = 0
    programs_skipped: int = 0  # generated program failed to build at all
    roundtrip_failures: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.roundtrip_failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "layers": self.layers,
            "programs_run": self.programs_run,
            "programs_skipped": self.programs_skipped,
            "roundtrip_failures": self.roundtrip_failures,
            "divergences": len(self.findings),
            "clean": self.clean,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def check_roundtrip(program) -> bool:
    """``assemble(disassemble(p)) == p`` — the ISA text format must be
    lossless or minimized reproducers would lie about the program."""
    return assemble(disassemble(program.insns)) == list(program.insns)


def run_campaign(seed: int = 0, budget: int = 200,
                 corpus_dir: Optional[str] = None,
                 layers: Sequence[str] = LAYERS,
                 configs: Sequence[FrozenSet[str]] = PASS_CONFIGS,
                 kernel: KernelConfig = DEFAULT_KERNEL,
                 tests_per_program: int = 4,
                 minimize: bool = True,
                 progress=None) -> FuzzReport:
    """Run one differential-fuzzing campaign of *budget* programs."""
    report = FuzzReport(seed=seed, budget=budget, layers=list(layers))
    started = time.monotonic()

    for index in range(budget):
        layer = layers[index % len(layers)]
        # distinct seed stream per layer so adding a layer does not
        # reshuffle every other layer's programs
        case = generate(layer, seed * 1_000_003 + index)

        try:
            baseline = observe_baseline(case, kernel, tests_per_program)
        except Exception:
            # generator produced something the toolchain rejects outright
            # (both sides agree, so nothing differential to learn)
            report.programs_skipped += 1
            continue
        report.programs_run += 1

        if not check_roundtrip(baseline.program):
            report.roundtrip_failures += 1
            if progress:
                progress(f"[{index}] {layer}: asm round-trip failed")

        divergence: Optional[Divergence] = None
        for enabled in configs:
            divergence = check_config(case, enabled, baseline, kernel)
            if divergence is not None:
                break
        if divergence is None:
            continue

        if progress:
            progress(f"[{index}] {divergence.describe()}")
        finding = FuzzFinding(divergence)
        try:
            finding.bisect = bisect_divergence(divergence, kernel,
                                               baseline=baseline,
                                               tests_per_program=tests_per_program)
        except Exception:
            pass
        if minimize:
            try:
                finding.minimized = minimize_divergence(
                    divergence, kernel, tests_per_program=tests_per_program)
            except Exception:
                pass
        if corpus_dir is not None:
            finding.reproducer_path = write_reproducer(
                corpus_dir, divergence, finding.minimized, finding.bisect)
        report.findings.append(finding)

    report.elapsed_seconds = time.monotonic() - started
    return report
