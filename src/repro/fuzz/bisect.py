"""Pass-ablation bisection: which pass broke this program?

Given a divergence under some enabled-pass configuration, replay the
config's pass sequence one prefix at a time — the position where the
divergence first appears names the guilty pass *in its ordering
context*.  A second ablation runs the guilty pass alone to tell a
standalone miscompile apart from an ordering bug (the pass only
misbehaves on the output of the passes before it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..verifier import DEFAULT_KERNEL, KernelConfig
from .differential import (
    BaselineRecord,
    Divergence,
    check_config,
    observe_baseline,
    pass_sequence,
)


@dataclass
class BisectResult:
    """Outcome of a pass-ablation bisection."""

    guilty_pass: Optional[str]  # pass name, e.g. "slm"
    guilty_tier: Optional[str]  # "ir" or "bytecode"
    position: Optional[int]  # index in the config's pass sequence
    sequence: List[str]  # "tier:name" for the whole config pipeline
    standalone: bool  # guilty pass diverges with no predecessors
    kind: Optional[str] = None  # divergence kind at the guilty prefix

    def describe(self) -> str:
        if self.guilty_pass is None:
            return "bisection inconclusive (divergence did not reproduce)"
        context = "standalone" if self.standalone else \
            "ordering-dependent (needs the passes before it)"
        return (f"pass {self.guilty_pass!r} ({self.guilty_tier} tier, "
                f"position {self.position} of {len(self.sequence)}) — "
                f"{context}")


def bisect_divergence(divergence: Divergence,
                      kernel: KernelConfig = DEFAULT_KERNEL,
                      baseline: Optional[BaselineRecord] = None,
                      tests_per_program: int = 4,
                      oracle_seed: int = 7) -> BisectResult:
    """Narrow *divergence* to the single pass responsible."""
    case = divergence.case
    enabled = frozenset(divergence.enabled)
    if baseline is None:
        baseline = observe_baseline(case, kernel, tests_per_program,
                                    oracle_seed)
    sequence = pass_sequence(case, enabled, kernel)
    names = [f"{tier}:{p.name}" for tier, p in sequence]

    # prefix scan: with zero passes the variant IS the baseline, with the
    # full sequence it reproduces the original divergence, so the first
    # diverging prefix exists and its last pass is the culprit.
    guilty: Optional[int] = None
    kind: Optional[str] = None
    for length in range(1, len(sequence) + 1):
        hit = check_config(case, enabled, baseline, kernel,
                          keep=range(length))
        if hit is not None:
            guilty = length - 1
            kind = hit.kind
            break
    if guilty is None:
        return BisectResult(None, None, None, names, False)

    tier, guilty_pass = sequence[guilty]
    alone = check_config(case, enabled, baseline, kernel, keep=[guilty])
    return BisectResult(guilty_pass.name, tier, guilty, names,
                        standalone=alone is not None, kind=kind)
