"""Shared differential-execution oracle.

Grown out of the K2 baseline's test-based equivalence check
(:mod:`repro.baselines.equivalence` now delegates here): run two
programs over a battery of inputs and compare every observable output —
return value, map contents, bytes pushed to user space, packet
rewrites, redirects, and runtime faults.

Two callers with two needs share this module:

* the K2 baseline wants a boolean verdict (``equivalent``) with
  workload-aware map seeding, and treats any runtime fault as a
  disqualified candidate;
* the differential fuzzer wants per-test :class:`Observation` records
  (``observe_battery`` + ``first_divergence``) so a divergence can be
  reported, bisected, and minimized — and a fault is only a divergence
  when the two programs fault *differently*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..isa import BpfProgram, ProgramType
from ..vm import HelperError, Machine, MapError, MemoryFault, VmFault

#: every runtime misbehaviour the VM can signal
RUNTIME_FAULTS = (VmFault, MemoryFault, HelperError, MapError)

#: map population fractions cycled across the battery so both hit and
#: miss paths are observed (an empty-map oracle would happily approve
#: deleting the hit path; a full-map oracle the miss path)
COVERAGE_CYCLE = (1.0, 0.6, 0.0)


@dataclass
class TestCase:
    ctx: bytes
    packet: Optional[bytes]


def generate_tests(program: BpfProgram, count: int = 8,
                   seed: int = 7) -> List[TestCase]:
    """Inputs for the oracle: half realistic traffic (so protocol paths
    and map-hit paths are exercised), half adversarial random bytes."""
    from ..workloads.packets import FlowProfile, TrafficGenerator

    rng = random.Random(seed)
    # two flow mixes: plain IPv4 and a vlan/icmp-heavy one, so rare
    # protocol paths are represented in the battery
    generators = [
        TrafficGenerator(seed=seed),
        TrafficGenerator(FlowProfile(vlan_fraction=0.5, tcp_fraction=0.3,
                                     udp_fraction=0.3,
                                     dst_port_choices=(53, 443, 53, 123)),
                         seed=seed + 1),
    ]
    tests: List[TestCase] = []
    for i in range(count):
        if program.prog_type == ProgramType.XDP:
            if i % 4 == 3:
                length = rng.choice([14, 34, 60, 128, 256, 1500])
                packet = bytes(rng.randrange(256) for _ in range(length))
            else:
                generator = generators[i % 2]
                packet = generator.packet(rng.choice([60, 64, 128, 512, 1500]))
                if i % 4 == 2:
                    # adversarial mutation: flip bytes in a valid frame so
                    # header-field edge cases are represented
                    mutable = bytearray(packet)
                    for _ in range(3):
                        mutable[rng.randrange(len(mutable))] = rng.randrange(256)
                    packet = bytes(mutable)
            tests.append(TestCase(ctx=b"", packet=packet))
        else:
            ctx = bytes(rng.randrange(256) for _ in range(program.ctx_size))
            tests.append(TestCase(ctx=ctx, packet=None))
    return tests


def observable_state(machine: Machine) -> Tuple:
    """Everything a candidate must reproduce to be 'equal': map
    contents, bytes pushed to user space, and the (possibly rewritten)
    packet."""
    maps_state = []
    for name in sorted(machine.maps):
        bpf_map = machine.maps[name]
        if hasattr(bpf_map, "region"):
            maps_state.append((name, bytes(bpf_map.region.data)))
        else:
            entries = tuple(
                (key, bytes(region.data))
                for key, region in sorted(bpf_map.entries.items())
            )
            maps_state.append((name, entries))
    packet_region = machine.memory.regions.get("packet")
    packet = bytes(packet_region.data) if packet_region is not None else b""
    return (
        tuple(maps_state),
        machine.helpers.output_bytes,
        packet,
        tuple(machine.helpers.redirects),
    )


@dataclass(frozen=True)
class Observation:
    """What one program did on one test input."""

    return_value: Optional[int] = None
    state: Optional[Tuple] = None
    fault: Optional[str] = None
    #: perf counter values as a flat tuple; captured only when the caller
    #: asks (the engine-vs-engine axis, where counters must be
    #: bit-identical).  Pass-config comparisons leave this None — an
    #: optimized program legitimately executes different instructions.
    counters: Optional[Tuple] = None

    def differs_from(self, other: "Observation") -> Optional[str]:
        """Name of the first differing observable, or None if equal."""
        if self.fault != other.fault:
            return "fault"
        if self.return_value != other.return_value:
            return "return"
        if self.state != other.state:
            return "state"
        if (self.counters is not None and other.counters is not None
                and self.counters != other.counters):
            return "counters"
        return None


#: callable that pre-populates a fresh machine's maps for one test
Seeder = Callable[[Machine], None]


def _counter_tuple(machine: Machine) -> Tuple:
    import dataclasses

    return dataclasses.astuple(machine.counters)


def run_observed(program: BpfProgram, test: TestCase,
                 seeder: Optional[Seeder] = None,
                 max_insns: int = 200_000,
                 engine: str = "reference",
                 include_counters: bool = False) -> Observation:
    """Run *program* on one input; faults become part of the record."""
    machine = Machine(program, max_insns=max_insns, engine=engine)
    try:
        if seeder is not None:
            seeder(machine)
        result = machine.run(ctx=test.ctx, packet=test.packet)
    except RUNTIME_FAULTS as exc:
        return Observation(
            fault=type(exc).__name__,
            counters=_counter_tuple(machine) if include_counters else None,
        )
    return Observation(
        result.return_value,
        observable_state(machine),
        counters=_counter_tuple(machine) if include_counters else None,
    )


def populate_maps(machine: Machine, coverage: float = 1.0,
                  seed: int = 99) -> None:
    """Layout-agnostic map population for *generated* programs.

    The workload-aware variant (:func:`repro.workloads.seeding.seed_maps`)
    only knows the curated XDP map names; fuzzed programs declare
    arbitrary maps, so seed every map with index keys and random values.
    """
    rng = random.Random(seed)
    for name in sorted(machine.maps):
        bpf_map = machine.maps[name]
        spec = bpf_map.spec
        for index in range(min(spec.max_entries, 64)):
            if rng.random() >= coverage:
                continue
            key = index.to_bytes(spec.key_size, "little")
            value = bytes(rng.randrange(256) for _ in range(spec.value_size))
            bpf_map.update(key, value)


def observe_battery(program: BpfProgram, tests: Sequence[TestCase],
                    seed: int = 7, max_insns: int = 200_000,
                    populate: Callable[[Machine, float, int], None] = populate_maps,
                    engine: str = "reference",
                    include_counters: bool = False,
                    ) -> List[Observation]:
    """Observations for the whole battery, cycling map coverage."""
    observations: List[Observation] = []
    for index, test in enumerate(tests):
        coverage = COVERAGE_CYCLE[index % len(COVERAGE_CYCLE)]

        def seeder(machine: Machine, coverage: float = coverage,
                   index: int = index) -> None:
            if coverage:
                populate(machine, coverage, seed + index)

        observations.append(run_observed(program, test, seeder, max_insns,
                                         engine=engine,
                                         include_counters=include_counters))
    return observations


def first_divergence(a: Sequence[Observation], b: Sequence[Observation],
                     ) -> Optional[Tuple[int, str]]:
    """(test index, observable name) of the first disagreement, if any."""
    for index, (obs_a, obs_b) in enumerate(zip(a, b)):
        kind = obs_a.differs_from(obs_b)
        if kind is not None:
            return index, kind
    return None


def equivalent(original: BpfProgram, candidate: BpfProgram,
               tests: List[TestCase], max_insns: int = 200_000,
               seed: int = 7) -> bool:
    """True when the two programs agree on every test input (K2's
    test-based equivalence fast path).

    Maps are pre-seeded with workload-realistic entries so code behind
    map-hit branches is exercised, and *any* runtime fault — in either
    program — disqualifies the candidate, exactly as the K2 baseline
    has always behaved."""
    from ..workloads.packets import TrafficGenerator
    from ..workloads.seeding import seed_maps

    generator = TrafficGenerator(seed=seed)
    for index, test in enumerate(tests):
        # vary map population across tests (full / partial / empty) so
        # both hit and miss paths are observed
        coverage = COVERAGE_CYCLE[index % len(COVERAGE_CYCLE)]

        def seeder(machine: Machine, coverage: float = coverage,
                   index: int = index) -> None:
            if coverage:
                seed_maps(machine, generator, coverage=coverage,
                          seed=seed + index)

        obs_orig = run_observed(original, test, seeder, max_insns)
        obs_cand = run_observed(candidate, test, seeder, max_insns)
        if obs_orig.fault is not None or obs_cand.fault is not None:
            return False
        if obs_orig.differs_from(obs_cand) is not None:
            return False
    return True
