"""Delta-debugging minimizer: shrink a diverging program.

Classic ddmin (Zeller & Hildebrandt) over the program's surface text —
top-level statements for mini-C, instruction lines for IR and assembly
— followed by a line-wise sweep.  A candidate "reproduces" when it
still compiles as a baseline AND still diverges under the original
enabled-pass configuration; candidates that break the parser, the
verifier, or the divergence simply fail the predicate and are kept
un-removed, so no layer needs structure-aware repair.
"""

from __future__ import annotations

from typing import Callable, List, Set

from ..verifier import DEFAULT_KERNEL, KernelConfig
from .differential import Divergence, check_config, observe_baseline
from .generator import GeneratedProgram

#: one removable unit: a group of line indices dropped or kept together
Chunk = List[int]


def ddmin(chunks: List[Chunk],
          reproduces: Callable[[List[Chunk]], bool]) -> List[Chunk]:
    """Minimal (1-minimal-ish) subset of *chunks* still reproducing."""
    granularity = 2
    while len(chunks) >= 2:
        subset_size = max(1, len(chunks) // granularity)
        reduced = False
        for start in range(0, len(chunks), subset_size):
            complement = chunks[:start] + chunks[start + subset_size:]
            if complement and reproduces(complement):
                chunks = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(chunks):
                break
            granularity = min(len(chunks), granularity * 2)
    return chunks


# ----------------------------------------------------------------------
# chunking per layer
# ----------------------------------------------------------------------
def _source_chunks(lines: List[str]) -> List[Chunk]:
    """Removable chunks for mini-C: map declarations and top-level
    statements (a statement spans its whole nested block, so coarse
    ddmin rounds drop an if/for construct in one step).  The function
    signature, the final return, and the closing brace stay."""
    open_index = next(
        i for i, line in enumerate(lines)
        if line.rstrip().endswith("{")
        and not line.strip().startswith(("if", "for", "while")))
    return_index = max(i for i, line in enumerate(lines)
                       if line.strip().startswith("return"))

    chunks: List[Chunk] = [[i] for i in range(open_index)]  # map decls
    depth = 0
    current: Chunk = []
    for index in range(open_index + 1, return_index):
        current.append(index)
        depth += lines[index].count("{") - lines[index].count("}")
        if depth == 0:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks


def _chunk_case(case: GeneratedProgram, lines: List[str]) -> List[Chunk]:
    if case.layer == "source":
        return _source_chunks(lines)
    if case.layer == "ir":
        def removable(line: str) -> bool:
            stripped = line.strip()
            return bool(stripped) and not (
                stripped.startswith("define") or stripped.endswith(":")
                or stripped == "}" or stripped.startswith("ret "))
    else:  # bytecode: labels and the exit stay put
        def removable(line: str) -> bool:
            stripped = line.strip()
            return bool(stripped) and not stripped.endswith(":") \
                and stripped != "exit"
    return [[i] for i, line in enumerate(lines) if removable(line)]


def _reassemble(lines: List[str], chunks: List[Chunk],
                removable: Set[int]) -> str:
    keep = set(range(len(lines))) - removable
    for chunk in chunks:
        keep.update(chunk)
    return "\n".join(lines[i] for i in sorted(keep))


# ----------------------------------------------------------------------
# the minimizer proper
# ----------------------------------------------------------------------
def minimize_divergence(divergence: Divergence,
                        kernel: KernelConfig = DEFAULT_KERNEL,
                        tests_per_program: int = 4,
                        oracle_seed: int = 7,
                        max_probes: int = 600) -> GeneratedProgram:
    """Shrink the diverging program to a minimal reproducer."""
    case = divergence.case
    enabled = frozenset(divergence.enabled)
    budget = [max_probes]

    def reproduces_text(text: str) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        variant = case.replace_text(text)
        try:
            baseline = observe_baseline(variant, kernel, tests_per_program,
                                        oracle_seed)
        except Exception:  # variant no longer compiles: not a reproducer
            return False
        return check_config(variant, enabled, baseline, kernel) is not None

    lines = case.text.splitlines()
    chunks = _chunk_case(case, lines)
    removable = {index for chunk in chunks for index in chunk}

    def reproduces(candidate: List[Chunk]) -> bool:
        return reproduces_text(_reassemble(lines, candidate, removable))

    if reproduces(chunks):  # sanity: the unmodified program reproduces
        chunks = ddmin(chunks, reproduces)
    text = _reassemble(lines, chunks, removable)

    # line-level sweep: chunks are statements; single lines inside a
    # surviving block (or half of a pair) may still be droppable
    current = text.splitlines()
    kept_removable = {lines[i] for chunk in chunks for i in chunk}
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for index in range(len(current) - 1, -1, -1):
            if current[index] not in kept_removable:
                continue
            candidate = current[:index] + current[index + 1:]
            if reproduces_text("\n".join(candidate)):
                current = candidate
                changed = True
    return case.replace_text("\n".join(current))
