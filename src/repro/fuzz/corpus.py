"""Corpus management: persist findings as ready-to-commit artifacts.

Every confirmed divergence is written out twice: the raw program text
(``.repro`` file, for replaying with the CLI) and a self-contained
pytest regression test that re-runs the minimized program through
:func:`repro.fuzz.differential.replay` and fails while the bug exists
(``assert divergence is None``).  Drop the generated test into
``tests/`` and it guards the fix forever.
"""

from __future__ import annotations

import os
from typing import Optional

from .bisect import BisectResult
from .differential import Divergence
from .generator import GeneratedProgram

_TEST_TEMPLATE = '''\
"""Auto-generated regression test (repro fuzz).

{headline}
Guilty pass: {guilty}.  Remove this file only if the behaviour below
is an intentional semantics change.
"""

from repro.fuzz.differential import replay

PROGRAM = {text!r}


def test_{slug}():
    divergence = replay(
        layer={layer!r},
        text=PROGRAM,
        entry={entry!r},
        enabled={enabled!r},
        prog_type={prog_type!r},
        ctx_size={ctx_size},
        mcpu={mcpu!r},
    )
    assert divergence is None, divergence.describe()
'''


def reproducer_name(divergence: Divergence) -> str:
    """Stable, filesystem-safe identifier for a finding."""
    case = divergence.case
    return f"{case.layer}_seed{case.seed}_{divergence.kind}"


def write_reproducer(directory: str, divergence: Divergence,
                     minimized: Optional[GeneratedProgram] = None,
                     bisect: Optional[BisectResult] = None) -> str:
    """Write the ``.repro`` text and regression test; return test path."""
    os.makedirs(directory, exist_ok=True)
    case = minimized if minimized is not None else divergence.case
    slug = reproducer_name(divergence)

    repro_path = os.path.join(directory, f"{slug}.repro")
    with open(repro_path, "w") as handle:
        handle.write(f"# {divergence.describe()}\n")
        if bisect is not None:
            handle.write(f"# {bisect.describe()}\n")
        handle.write(case.text)
        if not case.text.endswith("\n"):
            handle.write("\n")

    guilty = bisect.describe() if bisect is not None else "not bisected"
    test_path = os.path.join(directory, f"test_{slug}.py")
    with open(test_path, "w") as handle:
        handle.write(_TEST_TEMPLATE.format(
            headline=divergence.describe(),
            guilty=guilty,
            text=case.text,
            slug=slug,
            layer=case.layer,
            entry=case.name,
            enabled=tuple(divergence.enabled),
            prog_type=case.prog_type.value,
            ctx_size=case.ctx_size,
            mcpu=case.mcpu,
        ))
    return test_path
