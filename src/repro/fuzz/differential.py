"""Differential executor: one generated program, many pass pipelines.

Builds the baseline (no Merlin) and an optimized variant per enabled-
pass configuration — rebuilding from the layer's surface text every
time, since IR passes mutate their input — and compares observable
behaviour with the shared oracle.  A disagreement in return value, map
contents, memory effects, fault behaviour, or verifier verdict is a
:class:`Divergence`; a pass that crashes while the baseline compiles is
one too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.pipeline import ALL_OPTIMIZERS, MerlinPipeline
from ..frontend import compile_source
from ..codegen import compile_function
from ..ir import parse_function
from ..isa import BpfProgram, assemble
from ..verifier import DEFAULT_KERNEL, KernelConfig, verify
from .generator import GeneratedProgram
from .oracle import (
    Observation,
    TestCase,
    first_divergence,
    generate_tests,
    observe_battery,
)

#: the configurations every program is checked under: the full pipeline,
#: each optimizer alone, and the combinations whose passes feed each
#: other (store-immediate folding creates the stores superword merging
#: and compaction consume)
PASS_CONFIGS: Tuple[FrozenSet[str], ...] = (
    frozenset(ALL_OPTIMIZERS),
    frozenset({"cpdce"}),
    frozenset({"slm"}),
    frozenset({"dao"}),
    frozenset({"mof"}),
    frozenset({"cc"}),
    frozenset({"po"}),
    frozenset({"cpdce", "slm"}),
    frozenset({"cpdce", "cc", "po"}),
)


@dataclass
class Divergence:
    """A generated program behaving differently after optimization."""

    case: GeneratedProgram
    enabled: Tuple[str, ...]  # sorted optimizer names
    kind: str  # "return"|"state"|"fault"|"verifier"|"build"|"certificate"
    test_index: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        config = "+".join(self.enabled) or "<none>"
        where = f" on test {self.test_index}" if self.test_index is not None \
            else ""
        return (f"[{self.case.layer}/seed={self.case.seed}] {self.kind} "
                f"divergence under {config}{where}: {self.detail}")


def pass_sequence(case: GeneratedProgram, enabled: FrozenSet[str],
                  kernel: KernelConfig = DEFAULT_KERNEL,
                  ) -> List[Tuple[str, object]]:
    """The ordered (tier, pass) pipeline a config applies to *case*.

    Fresh pass objects every call: passes are cheap to build and the
    bisector needs to re-run arbitrary sub-sequences.  Bytecode-layer
    programs never see the IR tier, so it is filtered out of their
    sequence (bisection positions then index real work only).
    """
    pipeline = MerlinPipeline(kernel=kernel, enabled=enabled)
    sequence: List[Tuple[str, object]] = []
    if case.layer != "bytecode":
        sequence.extend(("ir", p) for p in pipeline.ir_passes())
    sequence.extend(("bytecode", p) for p in pipeline.bytecode_passes(case.mcpu))
    return sequence


def build_program(case: GeneratedProgram,
                  enabled: FrozenSet[str] = frozenset(),
                  kernel: KernelConfig = DEFAULT_KERNEL,
                  keep: Optional[Sequence[int]] = None) -> BpfProgram:
    """Compile *case* from its surface text, applying a pass pipeline.

    ``keep`` restricts the sequence to the given positions (the
    bisector's ablation knob); None applies every pass of the config.
    """
    sequence = pass_sequence(case, enabled, kernel)
    if keep is not None:
        sequence = [sequence[i] for i in keep]

    if case.layer == "bytecode":
        program = BpfProgram(case.name, assemble(case.text),
                             prog_type=case.prog_type, ctx_size=case.ctx_size,
                             mcpu=case.mcpu)
        for _, bc_pass in sequence:
            bc_pass.run(program)
        return program

    if case.layer == "source":
        module = compile_source(case.text)
        func = module.get(case.name)
    else:  # "ir"
        module = None
        func = parse_function(case.text)
    for tier, ir_pass in sequence:
        if tier == "ir":
            ir_pass.run(func, module)
    program = compile_function(func, module, prog_type=case.prog_type,
                               mcpu=case.mcpu, ctx_size=case.ctx_size)
    for tier, bc_pass in sequence:
        if tier == "bytecode":
            bc_pass.run(program)
    return program


@dataclass
class BaselineRecord:
    """The reference against which every config is compared."""

    program: BpfProgram
    tests: List[TestCase]
    observations: List[Observation]
    verifier_ok: bool
    oracle_seed: int


def observe_baseline(case: GeneratedProgram,
                     kernel: KernelConfig = DEFAULT_KERNEL,
                     tests_per_program: int = 4,
                     oracle_seed: int = 7) -> BaselineRecord:
    """Compile the un-optimized program and record its behaviour."""
    program = build_program(case, frozenset(), kernel)
    tests = generate_tests(program, count=tests_per_program, seed=oracle_seed)
    observations = observe_battery(program, tests, seed=oracle_seed)
    verifier_ok = verify(program, kernel).ok
    return BaselineRecord(program, tests, observations, verifier_ok,
                          oracle_seed)


def check_config(case: GeneratedProgram, enabled: FrozenSet[str],
                 baseline: BaselineRecord,
                 kernel: KernelConfig = DEFAULT_KERNEL,
                 keep: Optional[Sequence[int]] = None,
                 ) -> Optional[Divergence]:
    """Compare one pass configuration against the baseline record."""
    config = tuple(sorted(enabled))
    try:
        optimized = build_program(case, enabled, kernel, keep=keep)
    except Exception as exc:  # a pass crashed: that's a finding, not noise
        return Divergence(case, config, "build",
                          detail=f"{type(exc).__name__}: {exc}")
    observations = observe_battery(optimized, baseline.tests,
                                   seed=baseline.oracle_seed)
    hit = first_divergence(baseline.observations, observations)
    if hit is not None:
        index, kind = hit
        base, opt = baseline.observations[index], observations[index]
        if kind == "fault":
            detail = f"baseline fault={base.fault} optimized fault={opt.fault}"
        elif kind == "return":
            detail = (f"baseline r0={base.return_value:#x} "
                      f"optimized r0={opt.return_value:#x}")
        else:
            detail = "map/memory/output state differs"
        return Divergence(case, config, kind, index, detail)
    if baseline.verifier_ok:
        result = verify(optimized, kernel)
        if not result.ok:
            return Divergence(case, config, "verifier",
                              detail=f"optimized rejected: {result.reason}")
    return None


#: pseudo-config name the engine axis reports divergences under
ENGINE_CONFIG = ("engine=fast",)

#: accelerated engines certified against the reference interpreter
CHECKED_ENGINES = ("fast", "jit")


def check_engines(case: GeneratedProgram, baseline: BaselineRecord,
                  kernel: KernelConfig = DEFAULT_KERNEL,
                  engines: Sequence[str] = CHECKED_ENGINES,
                  ) -> Optional[Divergence]:
    """Engine-vs-engine axis: run the baseline program on the reference
    interpreter and every accelerated engine (the pre-decoded fast
    engine and the method JIT) and require *bit-exact* agreement —
    return value, fault behaviour, map/memory state, and (unlike pass
    configs, where they legitimately differ) every perf counter.  A
    mismatch is a bug in :mod:`repro.vm.engine`, not in an optimizer,
    so callers skip pass bisection for these findings."""
    program = baseline.program
    reference = observe_battery(program, baseline.tests,
                                seed=baseline.oracle_seed,
                                include_counters=True)
    for engine in engines:
        observed = observe_battery(program, baseline.tests,
                                   seed=baseline.oracle_seed,
                                   engine=engine, include_counters=True)
        hit = first_divergence(reference, observed)
        if hit is None:
            continue
        index, kind = hit
        ref, opt = reference[index], observed[index]
        if kind == "fault":
            detail = f"reference fault={ref.fault} {engine} fault={opt.fault}"
        elif kind == "return":
            detail = (f"reference r0={ref.return_value:#x} "
                      f"{engine} r0={opt.return_value:#x}")
        elif kind == "counters":
            detail = (f"reference counters={ref.counters} "
                      f"{engine} counters={opt.counters}")
        else:
            detail = "map/memory/output state differs between engines"
        return Divergence(case, (f"engine={engine}",), kind, index, detail)
    return None


#: pseudo-config name the layout axis reports divergences under
LAYOUT_CONFIG = ("layout",)


def check_layout(case: GeneratedProgram, baseline: BaselineRecord,
                 kernel: KernelConfig = DEFAULT_KERNEL,
                 ) -> Optional[Divergence]:
    """Layout-on vs layout-off axis: profile the baseline program on
    its own oracle battery, re-lay it out, and require identical return
    value, fault behaviour, and map/memory state under **both** VM
    engines (counters legitimately change — layout exists to change
    them).  On top of the behavioral check, every rewrite the pass
    performed must carry a witness the TV layer certifies; an
    uncertified layout is a divergence even when behaviour agrees."""
    from ..core.bytecode_passes.layout import (ProfileGuidedLayoutPass,
                                               collect_profile)
    from ..tv import WitnessRecorder
    from ..tv.regioncheck import validate_bytecode_witness

    program = baseline.program.copy()
    try:
        profile = collect_profile(program, tests=baseline.tests)
        layout = ProfileGuidedLayoutPass(profile)
        recorder = WitnessRecorder()
        layout.recorder = recorder
        layout.run(program)
    except Exception as exc:
        return Divergence(case, LAYOUT_CONFIG, "build",
                          detail=f"{type(exc).__name__}: {exc}")
    for engine in ("reference", "fast"):
        reference = observe_battery(baseline.program, baseline.tests,
                                    seed=baseline.oracle_seed, engine=engine)
        relaid = observe_battery(program, baseline.tests,
                                 seed=baseline.oracle_seed, engine=engine)
        hit = first_divergence(reference, relaid)
        if hit is not None:
            index, kind = hit
            base, opt = reference[index], relaid[index]
            if kind == "fault":
                detail = (f"[{engine}] layout-off fault={base.fault} "
                          f"layout-on fault={opt.fault}")
            elif kind == "return":
                detail = (f"[{engine}] layout-off r0={base.return_value:#x} "
                          f"layout-on r0={opt.return_value:#x}")
            else:
                detail = f"[{engine}] map/memory/output state differs"
            return Divergence(case, LAYOUT_CONFIG, kind, index, detail)
    for witness in recorder.witnesses:
        cert = validate_bytecode_witness(witness)
        if not cert.certified:
            return Divergence(
                case, LAYOUT_CONFIG, "certificate",
                detail=f"layout witness not certified: {cert.detail}")
    return None


#: pseudo-config name the superopt-on/off axis reports under
SUPEROPT_CONFIG = ("superopt",)


def check_superopt(case: GeneratedProgram, baseline: BaselineRecord,
                   kernel: KernelConfig = DEFAULT_KERNEL,
                   ) -> Optional[Divergence]:
    """Superopt-on vs superopt-off axis: run the windowed
    superoptimizer over the baseline program and require identical
    return value, fault behaviour, and map/memory state under **both**
    VM engines.  Every rewrite the pass applied must carry a witness
    the TV layer certifies; an uncertified rewrite is a divergence
    even when behaviour agrees."""
    from ..core.superopt import SuperoptimizerPass, SuperoptSpec
    from ..tv import WitnessRecorder
    from ..tv.regioncheck import validate_bytecode_witness

    program = baseline.program.copy()
    try:
        superopt = SuperoptimizerPass(SuperoptSpec())
        recorder = WitnessRecorder()
        superopt.recorder = recorder
        superopt.run(program)
    except Exception as exc:
        return Divergence(case, SUPEROPT_CONFIG, "build",
                          detail=f"{type(exc).__name__}: {exc}")
    for engine in ("reference", "fast"):
        reference = observe_battery(baseline.program, baseline.tests,
                                    seed=baseline.oracle_seed, engine=engine)
        rewritten = observe_battery(program, baseline.tests,
                                    seed=baseline.oracle_seed, engine=engine)
        hit = first_divergence(reference, rewritten)
        if hit is not None:
            index, kind = hit
            base, opt = reference[index], rewritten[index]
            if kind == "fault":
                detail = (f"[{engine}] superopt-off fault={base.fault} "
                          f"superopt-on fault={opt.fault}")
            elif kind == "return":
                detail = (f"[{engine}] superopt-off "
                          f"r0={base.return_value:#x} "
                          f"superopt-on r0={opt.return_value:#x}")
            else:
                detail = f"[{engine}] map/memory/output state differs"
            return Divergence(case, SUPEROPT_CONFIG, kind, index, detail)
    for witness in recorder.witnesses:
        cert = validate_bytecode_witness(witness)
        if not cert.certified:
            return Divergence(
                case, SUPEROPT_CONFIG, "certificate",
                detail=f"superopt witness not certified: {cert.detail}")
    return None


#: pseudo-config name the translation-validation axis reports under
CERT_CONFIG = ("certificates",)


def check_certificates(case: GeneratedProgram,
                       kernel: KernelConfig = DEFAULT_KERNEL,
                       ) -> Optional[Divergence]:
    """Translation-validation axis: run the full pipeline in
    ``validate="report"`` mode and demand a certificate for every pass
    application.  A non-certified application is a per-pass semantic
    divergence — finer-grained than the end-to-end config checks, and it
    names the faulting pass and program point directly (no bisection
    needed)."""
    pipeline = MerlinPipeline(kernel=kernel)
    try:
        if case.layer == "bytecode":
            program = BpfProgram(case.name, assemble(case.text),
                                 prog_type=case.prog_type,
                                 ctx_size=case.ctx_size, mcpu=case.mcpu)
            _, report = pipeline.optimize_program(program, validate="report")
        else:
            if case.layer == "source":
                module = compile_source(case.text)
                func = module.get(case.name)
            else:  # "ir"
                module = None
                func = parse_function(case.text)
            _, report = pipeline.compile(func, module,
                                         prog_type=case.prog_type,
                                         mcpu=case.mcpu,
                                         ctx_size=case.ctx_size,
                                         validate="report")
    except Exception as exc:
        return Divergence(case, CERT_CONFIG, "build",
                          detail=f"{type(exc).__name__}: {exc}")
    for cert in report.certificates:
        if not cert.certified:
            detail = f"{cert.pass_name} at {cert.point}: {cert.detail}"
            if cert.counterexample:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(cert.counterexample.items()))
                detail += f" [{rendered}]"
            return Divergence(case, CERT_CONFIG, "certificate", detail=detail)
    return None


def diff_case(case: GeneratedProgram,
              configs: Sequence[FrozenSet[str]] = PASS_CONFIGS,
              kernel: KernelConfig = DEFAULT_KERNEL,
              tests_per_program: int = 4,
              oracle_seed: int = 7,
              engines: bool = True,
              certify: bool = True,
              layout: bool = True,
              superopt: bool = True) -> Optional[Divergence]:
    """Run *case* under every config; first divergence wins."""
    baseline = observe_baseline(case, kernel, tests_per_program, oracle_seed)
    if engines:
        divergence = check_engines(case, baseline, kernel)
        if divergence is not None:
            return divergence
    for enabled in configs:
        divergence = check_config(case, enabled, baseline, kernel)
        if divergence is not None:
            return divergence
    if layout:
        divergence = check_layout(case, baseline, kernel)
        if divergence is not None:
            return divergence
    if superopt:
        divergence = check_superopt(case, baseline, kernel)
        if divergence is not None:
            return divergence
    if certify:
        # behavioral configs take precedence: their divergences are
        # bisectable and minimizable, a certificate hit is not
        divergence = check_certificates(case, kernel)
        if divergence is not None:
            return divergence
    return None


def replay(layer: str, text: str, entry: str = "f",
           enabled: Sequence[str] = tuple(sorted(ALL_OPTIMIZERS)),
           prog_type: str = "tracepoint", ctx_size: int = 64,
           mcpu: str = "v2", kernel_version: str = "6.5",
           tests_per_program: int = 4,
           oracle_seed: int = 7) -> Optional[Divergence]:
    """Re-check one program/config pair; the entry point emitted into
    auto-generated regression tests (everything JSON-serializable)."""
    from ..isa import ProgramType
    from ..verifier import KERNELS

    case = GeneratedProgram(layer, entry, text, seed=0,
                            prog_type=ProgramType(prog_type),
                            ctx_size=ctx_size, mcpu=mcpu)
    kernel = KERNELS[kernel_version]
    baseline = observe_baseline(case, kernel, tests_per_program, oracle_seed)
    return check_config(case, frozenset(enabled), baseline, kernel)
