"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the real eBPF workflow:

* ``compile``  — mini-C source -> eBPF assembly (optionally via Merlin)
* ``verify``   — run the kernel-verifier model over a program
* ``run``      — execute a program on a packet or context
* ``optimize`` — show Merlin's per-pass report for a source file
* ``fuzz``     — differential-fuzz the optimizer against the baseline
* ``tv``       — certify per-pass semantic equivalence (translation
  validation) over benchmark suites and/or a fuzz corpus
* ``bench``    — batch-compile a Table-1 suite (parallel, cached)
* ``bench-vm`` — microbenchmark the VM execution engines
* ``bench-layout`` — measure the profile-guided layout tier's
  branch-miss/cycle deltas and write ``BENCH_layout.json``
* ``bench-superopt`` — measure the caching superoptimizer tier's
  compactness wins over Merlin-only and write ``BENCH_superopt.json``
* ``serve``    — run the optimization-as-a-service daemon (JSON lines
  over a local socket, admission batching, shared warm cache)
* ``bench-serve`` — drive a daemon with Zipf-skewed synthetic tenant
  traffic and write the cold-vs-warm ``BENCH_service.json``
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import XDP_CTX_SIZE, compile_baseline, compile_bpf, optimize as _optimize
from .isa import ProgramType, disassemble
from .verifier import KERNELS, verify as _verify
from .vm import Machine
from .workloads.packets import build_packet


def _load(args) -> tuple:
    source = open(args.source).read() if args.source != "-" else sys.stdin.read()
    module = compile_bpf(source)
    entry = args.entry or next(iter(module.functions))
    return source, module, entry


def _prog_kwargs(args) -> dict:
    return dict(
        prog_type=ProgramType(args.prog_type),
        mcpu=args.mcpu,
        ctx_size=args.ctx_size,
    )


def cmd_compile(args) -> int:
    source, module, entry = _load(args)
    if args.merlin:
        program, report = _optimize(compile_bpf(source), entry,
                                    kernel=KERNELS[args.kernel],
                                    pgo=True if getattr(args, "pgo", False)
                                    else None,
                                    superopt=True
                                    if getattr(args, "superopt", False)
                                    else None,
                                    **_prog_kwargs(args))
        print(f"; merlin: {report.ni_original} -> {report.ni_optimized} "
              f"insns ({report.ni_reduction:.1%} reduction)", file=sys.stderr)
        layout_rewrites = report.rewrites_of("layout")
        if layout_rewrites:
            print(f"; layout: {layout_rewrites} rewrite(s)", file=sys.stderr)
        superopt_rewrites = report.rewrites_of("superopt")
        if superopt_rewrites:
            print(f"; superopt: {superopt_rewrites} rewrite(s)",
                  file=sys.stderr)
    else:
        program = compile_baseline(module, entry, **_prog_kwargs(args))
        print(f"; baseline: {program.ni} insns", file=sys.stderr)
    print(disassemble(program.insns))
    return 0


def cmd_verify(args) -> int:
    source, module, entry = _load(args)
    if args.merlin:
        program, _ = _optimize(compile_bpf(source), entry,
                               kernel=KERNELS[args.kernel],
                               **_prog_kwargs(args))
    else:
        program = compile_baseline(module, entry, **_prog_kwargs(args))
    result = _verify(program, KERNELS[args.kernel])
    print(f"ok={result.ok} npi={result.npi} states={result.total_states} "
          f"peak={result.peak_states} "
          f"time={result.verification_time_ns / 1000:.1f}us")
    if not result.ok:
        print(f"rejected: {result.reason}")
    return 0 if result.ok else 1


def cmd_run(args) -> int:
    source, module, entry = _load(args)
    if args.merlin:
        program, _ = _optimize(compile_bpf(source), entry,
                               **_prog_kwargs(args))
    else:
        program = compile_baseline(module, entry, **_prog_kwargs(args))
    machine = Machine(program)
    if args.prog_type == "xdp":
        packet = build_packet(args.packet_size, dst_port=args.dst_port)
        result = machine.run(packet=packet)
        actions = {0: "ABORTED", 1: "DROP", 2: "PASS", 3: "TX", 4: "REDIRECT"}
        print(f"action={actions.get(result.xdp_action, result.xdp_action)} "
              f"r0={result.return_value}")
    else:
        ctx = bytes(args.ctx_size)
        result = machine.run(ctx=ctx)
        print(f"r0={result.return_value}")
    counters = result.counters
    print(f"instructions={counters.instructions} cycles={counters.cycles} "
          f"cache_refs={counters.cache_references} "
          f"cache_misses={counters.cache_misses}")
    return 0


def cmd_optimize(args) -> int:
    source, module, entry = _load(args)
    program, report = _optimize(compile_bpf(source), entry,
                                kernel=KERNELS[args.kernel],
                                **_prog_kwargs(args))
    print(f"{report.name}: NI {report.ni_original} -> "
          f"{report.ni_optimized} ({report.ni_reduction:.1%}) in "
          f"{report.compile_seconds:.3f}s")
    for stat in report.pass_stats:
        marker = f"{stat.rewrites:4d} rewrites" if stat.rewrites else "   -"
        print(f"  [{stat.tier:8s}] {stat.name:14s} {marker}  "
              f"{stat.time_seconds * 1000:7.2f}ms")
    result = _verify(program, KERNELS[args.kernel])
    print(f"verifier: ok={result.ok} npi={result.npi}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import LAYERS, run_campaign

    layers = [l.strip() for l in args.layers.split(",")] if args.layers \
        else list(LAYERS)
    for layer in layers:
        if layer not in LAYERS:
            print(f"unknown layer {layer!r} (choose from {', '.join(LAYERS)})",
                  file=sys.stderr)
            return 2

    progress = None if args.json else (
        lambda line: print(line, file=sys.stderr))
    report = run_campaign(
        seed=args.seed,
        budget=args.budget,
        corpus_dir=args.corpus,
        layers=layers,
        kernel=KERNELS[args.kernel],
        tests_per_program=args.tests,
        minimize=not args.no_minimize,
        jobs=args.jobs,
        engines=not args.no_engines,
        certify=not args.no_certify,
        layout=not args.no_layout,
        superopt=not args.no_superopt,
        progress=progress,
    )
    if args.json:
        print(report.to_json())
    else:
        print(f"fuzz: {report.programs_run}/{report.budget} programs "
              f"({report.programs_skipped} skipped) in "
              f"{report.elapsed_seconds:.1f}s — "
              f"{len(report.findings)} divergence(s), "
              f"{report.roundtrip_failures} round-trip failure(s)")
        for finding in report.findings:
            print(f"  {finding.divergence.describe()}")
            if finding.bisect is not None:
                print(f"    bisected: {finding.bisect.describe()}")
            if finding.minimized is not None:
                print(f"    minimized to {finding.minimized.statements} "
                      f"statements")
            if finding.reproducer_path is not None:
                print(f"    reproducer: {finding.reproducer_path}")
    return 0 if report.clean else 1


def cmd_tv(args) -> int:
    """Certify every Merlin pass application over suites and a corpus."""
    from .core import MerlinPipeline
    from .frontend import compile_source
    from .tv import CertificateReport
    from .workloads.suites import PROFILES, TRACE_CTX_SIZE, generate_suite

    suites = [s.strip() for s in args.suite.split(",") if s.strip()] \
        if args.suite else []
    known = set(PROFILES) | {"xdp"}
    for suite in suites:
        if suite not in known:
            print(f"unknown suite {suite!r} (choose from "
                  f"{', '.join(sorted(known))})", file=sys.stderr)
            return 2

    pipeline = MerlinPipeline(kernel=KERNELS[args.kernel])
    report = CertificateReport(seed=args.seed)
    skipped: List[tuple] = []

    def certify(name: str, build) -> None:
        try:
            _, merlin = build()
        except Exception as exc:
            # the program never compiles (e.g. generated code exceeding
            # the stack budget): nothing was optimized, nothing to certify
            skipped.append((name, f"{type(exc).__name__}: {exc}"))
            return
        report.add(name, merlin.certificates)

    for suite in suites:
        if suite == "xdp":
            from .workloads.xdp import ALL_XDP, XDP_CTX_SIZE as _XDP_CTX

            for workload in ALL_XDP:
                module = compile_source(workload.source, workload.name)
                func = module.get(workload.entry)
                certify(workload.name, lambda f=func, m=module: pipeline.compile(
                    f, m, prog_type=ProgramType.XDP, ctx_size=_XDP_CTX,
                    validate="report"))
        else:
            for program in generate_suite(suite, seed=args.seed,
                                          scale=args.scale, count=args.count):
                module = compile_source(program.source, program.name)
                func = module.get(program.entry)
                certify(program.name, lambda f=func, m=module: pipeline.compile(
                    f, m, prog_type=ProgramType.TRACEPOINT, mcpu="v3",
                    ctx_size=TRACE_CTX_SIZE, validate="report"))

    if args.fuzz:
        from .fuzz.generator import LAYERS, generate
        from .ir import parse_function
        from .isa import BpfProgram, assemble

        layers = list(LAYERS)
        for index in range(args.fuzz):
            layer = layers[index % len(layers)]
            case = generate(layer, args.seed * 1_000_003 + index)
            name = f"fuzz/{layer}/{index}"
            if layer == "bytecode":
                def build(c=case):
                    program = BpfProgram(c.name, assemble(c.text),
                                         prog_type=c.prog_type,
                                         ctx_size=c.ctx_size, mcpu=c.mcpu)
                    return pipeline.optimize_program(program,
                                                     validate="report")
            else:
                def build(c=case, l=layer):
                    if l == "source":
                        module = compile_source(c.text)
                        func = module.get(c.name)
                    else:
                        module = None
                        func = parse_function(c.text)
                    return pipeline.compile(func, module,
                                            prog_type=c.prog_type,
                                            mcpu=c.mcpu, ctx_size=c.ctx_size,
                                            validate="report")
            certify(name, build)

    document = report.to_dict()
    document["skipped"] = [
        {"name": name, "reason": reason} for name, reason in skipped
    ]
    if args.out:
        import json as _json

        with open(args.out, "w") as fh:
            fh.write(_json.dumps(document, indent=2) + "\n")
    if args.json:
        import json as _json

        print(_json.dumps(document, indent=2))
    else:
        summary = document["summary"]
        print(f"tv: {summary['programs']} programs, "
              f"{summary['pass_applications']} pass applications "
              f"({len(skipped)} program(s) skipped: did not build)")
        by_status = ", ".join(f"{k}={v}"
                              for k, v in summary["by_status"].items()) or "-"
        by_method = ", ".join(f"{k}={v}"
                              for k, v in summary["by_method"].items()) or "-"
        print(f"  status: {by_status}")
        print(f"  method: {by_method}")
        for name, cert in report.alarms:
            print(f"  ALARM {name}: {cert.pass_name} at {cert.point}: "
                  f"{cert.detail}")
            for key, value in sorted((cert.counterexample or {}).items()):
                print(f"    {key} = {value}")
        if args.out:
            print(f"  wrote {args.out}")
        verdict = "certified" if report.clean else "NOT certified"
        print(f"  every pass application {verdict}")
    return 0 if report.clean else 1


def cmd_bench(args) -> int:
    import json as _json

    from .cache import CompilationCache
    from .core import MerlinPipeline
    from .workloads.suites import PROFILES, generate_suite, suite_jobs

    suites = [s.strip() for s in args.suite.split(",")]
    for suite in suites:
        if suite not in PROFILES:
            print(f"unknown suite {suite!r} (choose from "
                  f"{', '.join(sorted(PROFILES))})", file=sys.stderr)
            return 2

    cache = None
    if args.cache is not None:
        cache = CompilationCache(directory=args.cache)
    pipeline = MerlinPipeline(kernel=KERNELS[args.kernel])
    payload = []
    for suite in suites:
        programs = generate_suite(suite, seed=args.seed, scale=args.scale,
                                  count=args.count)
        batch = pipeline.compile_many(
            suite_jobs(programs, mcpu=args.mcpu or None),
            jobs=args.jobs, cache=cache)
        row = {
            "suite": suite,
            "programs": len(batch),
            "jobs": batch.jobs,
            "ni_original": batch.ni_original,
            "ni_optimized": batch.ni_optimized,
            "ni_reduction": round(batch.ni_reduction, 4),
            "wall_seconds": round(batch.wall_seconds, 3),
        }
        if batch.cache_stats is not None:
            row["cache"] = batch.cache_stats.to_dict()
        payload.append(row)
        if not args.json:
            print(f"{suite}: {row['programs']} programs, "
                  f"NI {row['ni_original']} -> {row['ni_optimized']} "
                  f"({row['ni_reduction'] * 100:.1f}% reduction) in "
                  f"{row['wall_seconds']:.2f}s with {row['jobs']} job(s)")
            if "cache" in row:
                c = row["cache"]
                print(f"  cache: {c['hits']} hit(s) / {c['misses']} miss(es) "
                      f"({c['hit_rate'] * 100:.0f}% hit rate), "
                      f"{c['evictions']} eviction(s)")
    if args.json:
        print(_json.dumps(payload, indent=2))
    return 0


def cmd_bench_vm(args) -> int:
    from .eval.vmperf import VM_SUITES, bench_vm

    suites = [s.strip() for s in args.suite.split(",")]
    for suite in suites:
        if suite not in VM_SUITES:
            print(f"unknown suite {suite!r} (choose from "
                  f"{', '.join(VM_SUITES)})", file=sys.stderr)
            return 2

    passes = None
    if args.passes is not None:
        passes = () if args.passes == "all" else \
            tuple(p.strip() for p in args.passes.split(",") if p.strip())
    report = bench_vm(suites, seed=args.seed, scale=args.scale,
                      count=args.count, tests_per_program=args.tests,
                      repeats=args.repeats, passes=passes,
                      pgo=args.pgo, superopt=args.superopt)
    if args.out:
        report.write(args.out)
    if args.json:
        print(report.to_json())
    else:
        print(f"config: passes={report.config['passes']} "
              f"pgo={report.config['pgo']} "
              f"superopt={report.config['superopt']}")
        for suite in report.suites:
            ref = suite.engines["reference"]
            verdict = "identical" if suite.identical else \
                f"MISMATCH ({suite.mismatch})"
            print(f"{suite.suite}: {suite.programs} programs, "
                  f"{ref.runs} runs/engine — {verdict}")
            for name in ("reference", "fast", "jit"):
                m = suite.engines[name]
                print(f"  {name + ':':10} {m.insns_per_second / 1e3:8.0f} "
                      f"kinsns/s ({m.instructions} insns in "
                      f"{m.wall_seconds:.3f}s)")
            print(f"  speedup:   fast {suite.speedup:.2f}x, "
                  f"jit {suite.jit_speedup:.2f}x "
                  f"({suite.jit_over_fast:.2f}x over fast)")
        if args.out:
            print(f"wrote {args.out}")
    return 0 if report.all_identical else 1


def cmd_bench_layout(args) -> int:
    from .eval.layoutperf import VM_SUITES, bench_layout

    suites = [s.strip() for s in args.suite.split(",")]
    for suite in suites:
        if suite not in VM_SUITES:
            print(f"unknown suite {suite!r} (choose from "
                  f"{', '.join(VM_SUITES)})", file=sys.stderr)
            return 2

    report = bench_layout(suites, seed=args.seed, scale=args.scale,
                          count=args.count, tests_per_program=args.tests,
                          engine=args.engine)
    if args.out:
        report.write(args.out)
    if args.json:
        print(report.to_json())
    else:
        for suite in report.suites:
            verdict = "identical" if suite.behavior_identical else \
                f"MISMATCH ({suite.mismatch})"
            certs = "certified" if suite.witnesses_certified else \
                "NOT CERTIFIED"
            print(f"{suite.suite}: {suite.programs} programs, "
                  f"{suite.relaid} relaid ({suite.rewrites} rewrites) — "
                  f"behavior {verdict}, {suite.witnesses} witness(es) "
                  f"{certs}")
            print(f"  branch misses: {suite.before.branch_misses} -> "
                  f"{suite.after.branch_misses} "
                  f"(delta {suite.branch_miss_delta:+d})")
            print(f"  cache misses:  {suite.before.cache_misses} -> "
                  f"{suite.after.cache_misses}")
            print(f"  cycles:        {suite.before.cycles} -> "
                  f"{suite.after.cycles} (delta {suite.cycle_delta:+d})")
        print(f"improved: {report.suites_improved}/{len(report.suites)} "
              f"suites")
        if args.out:
            print(f"wrote {args.out}")
    ok = report.all_behavior_identical and report.all_certified
    return 0 if ok else 1


def cmd_bench_superopt(args) -> int:
    from .eval.superoptperf import VM_SUITES, bench_superopt

    suites = [s.strip() for s in args.suite.split(",")]
    for suite in suites:
        if suite not in VM_SUITES:
            print(f"unknown suite {suite!r} (choose from "
                  f"{', '.join(VM_SUITES)})", file=sys.stderr)
            return 2

    report = bench_superopt(suites, seed=args.seed, scale=args.scale,
                            count=args.count,
                            tests_per_program=args.tests,
                            engine=args.engine)
    if args.out:
        report.write(args.out)
    if args.json:
        print(report.to_json())
    else:
        for suite in report.suites:
            verdict = "identical" if suite.behavior_identical else \
                f"MISMATCH ({suite.mismatch})"
            certs = "certified" if suite.witnesses_certified else \
                "NOT CERTIFIED"
            print(f"{suite.suite}: {len(suite.programs)} programs, "
                  f"{suite.improved} improved ({suite.rewrites} rewrites) "
                  f"— NI {suite.ni_merlin} -> {suite.ni_superopt}, "
                  f"behavior {verdict}, {suite.witnesses} witness(es) "
                  f"{certs}")
            print(f"  searches: {suite.searches}  "
                  f"memo hits: {suite.memo_hits}  "
                  f"site rejects: {suite.site_rejects}")
            for row in suite.programs:
                if row.improved:
                    print(f"  {row.name}: {row.ni_merlin} -> "
                          f"{row.ni_superopt} insns "
                          f"({row.rewrites} rewrite(s))")
        print(f"improved: {report.programs_improved} program(s) beyond "
              f"Merlin-only")
        if args.out:
            print(f"wrote {args.out}")
    ok = report.all_behavior_identical and report.all_certified
    return 0 if ok else 1


def cmd_serve(args) -> int:
    import json as _json
    import signal

    if args.fleet:
        return _cmd_serve_fleet(args)

    from .serve import DaemonThread, ServeConfig

    config = ServeConfig(
        socket_path=None if args.tcp is not None else args.socket,
        host="127.0.0.1" if args.tcp is not None else None,
        port=args.tcp or 0,
        jobs=args.jobs,
        cache_dir=args.cache,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        kernel=args.kernel,
        cache_ttl=args.cache_ttl,
        cache_max_bytes=args.cache_max_bytes,
        preempt_priority=args.preempt_priority,
    )
    daemon = DaemonThread(config).start()
    kind = daemon.address[0]
    where = daemon.address[1] if kind == "unix" else \
        f"{daemon.address[1]}:{daemon.address[2]}"
    print(f"repro serve: listening on {kind} {where} "
          f"(jobs={config.jobs}, max_batch={config.max_batch}, "
          f"max_delay={config.max_delay * 1000:.1f}ms)", file=sys.stderr)

    done = []

    def _stop(signum, frame):
        if not done:
            done.append(signum)
            print("repro serve: draining...", file=sys.stderr)
            daemon.daemon.request_stop(drain=True)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    daemon._thread.join()
    snapshot = daemon.daemon.snapshot()
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            fh.write(_json.dumps(snapshot, indent=2) + "\n")
    print(f"repro serve: {snapshot['requests']['responded']} responses, "
          f"{snapshot['requests']['compiles']} compiles, "
          f"cache hit rate "
          f"{snapshot['cache']['hit_rate'] * 100:.0f}%", file=sys.stderr)
    return 0


def _cmd_serve_fleet(args) -> int:
    import json as _json
    import signal

    from .serve.fleet import FleetConfig, FleetThread

    config = FleetConfig(
        shards=args.fleet,
        socket_path=None if args.tcp is not None else args.socket,
        host="127.0.0.1" if args.tcp is not None else None,
        port=args.tcp or 0,
        jobs=args.jobs,
        cache_dir=args.cache,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        kernel=args.kernel,
        cache_ttl=args.cache_ttl,
        cache_max_bytes=args.cache_max_bytes,
        preempt_priority=args.preempt_priority,
    )
    fleet = FleetThread(config).start()
    kind = fleet.address[0]
    where = fleet.address[1] if kind == "unix" else \
        f"{fleet.address[1]}:{fleet.address[2]}"
    print(f"repro serve: fleet of {config.shards} shard(s) on "
          f"{kind} {where} (jobs/shard={config.jobs}, "
          f"cache={config.cache_dir})", file=sys.stderr)

    done = []

    def _stop(signum, frame):
        if not done:
            done.append(signum)
            print("repro serve: draining fleet...", file=sys.stderr)
            fleet.router.request_stop(drain=True)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    fleet._thread.join()
    if args.stats_out:
        # stop() captures a full fleet view (router + shard stats +
        # aggregate) while the shards can still answer; fall back to
        # router-only counters if the capture itself failed
        snapshot = fleet.router.final_snapshot or {
            "router": fleet.router.stats.snapshot(
                {link.index: link.forwarded
                 for link in fleet.router._links}),
            "config": config.describe()}
        with open(args.stats_out, "w") as fh:
            fh.write(_json.dumps(snapshot, indent=2) + "\n")
    stats = fleet.router.stats
    print(f"repro serve: fleet routed {stats.forwarded} requests "
          f"({stats.shard_lost_errors} shard-lost, "
          f"{stats.respawns} respawns)", file=sys.stderr)
    return 0


def _parse_priority_mix(spec):
    """``"0:0.9,5:0.1"`` -> ``{0: 0.9, 5: 0.1}``."""
    if not spec:
        return None
    mix = {}
    for part in spec.split(","):
        level, _, weight = part.partition(":")
        mix[int(level)] = float(weight) if weight else 1.0
    return mix


def cmd_bench_serve(args) -> int:
    from .eval.serviceperf import bench_service, bench_service_fleet
    from .serve.loadgen import FaultPlan

    progress = None if args.json else (
        lambda line: print(line, file=sys.stderr))
    if args.fleet:
        report = bench_service_fleet(
            requests=args.requests, clients=args.clients,
            unique=args.unique, seed=args.seed, zipf_s=args.zipf,
            depth=args.depth, shards=args.fleet, jobs=args.jobs,
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            cache_ttl=args.cache_ttl,
            cache_max_bytes=args.cache_max_bytes,
            priority_mix=_parse_priority_mix(args.priority_mix),
            trace_path=args.trace, record_path=args.record,
            speed=args.speed, progress=progress)
    else:
        faults = None
        if args.faults:
            faults = FaultPlan(malformed=0.02, oversized=0.01,
                               unknown_op=0.01, disconnect=0.02)
        report = bench_service(
            requests=args.requests, clients=args.clients,
            unique=args.unique, seed=args.seed, zipf_s=args.zipf,
            depth=args.depth, jobs=args.jobs, max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0, faults=faults,
            progress=progress)
    if args.out:
        report.write(args.out)
    if args.json:
        print(report.to_json())
    else:
        for phase in (report.cold, report.warm):
            lat = phase.latency_ms
            print(f"{phase.phase}: {phase.ok}/{phase.requests} ok "
                  f"({phase.dropped} dropped), "
                  f"{phase.programs_per_second:.1f} programs/s, "
                  f"p50 {lat['p50']:.1f}ms p99 {lat['p99']:.1f}ms, "
                  f"hit rate {phase.hit_rate * 100:.0f}%")
        print(f"warm/cold speedup: {report.speedup:.2f}x")
        if args.fleet:
            integrity = report.cache_integrity
            print(f"fleet: {args.fleet} shard(s), "
                  f"goodput spread "
                  f"{report.fairness['goodput_spread']:.3f}, "
                  f"cache entries {integrity['entries']} "
                  f"({integrity['torn']} torn)")
        if args.out:
            print(f"wrote {args.out}")
    dropped = report.cold.dropped + report.warm.dropped
    if args.fleet and report.cache_integrity.get("torn"):
        return 1
    return 0 if dropped == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Merlin eBPF optimizer reproduction (ASPLOS'24)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler in (("compile", cmd_compile), ("verify", cmd_verify),
                          ("run", cmd_run), ("optimize", cmd_optimize)):
        p = sub.add_parser(name)
        p.add_argument("source", help="mini-C source file ('-' for stdin)")
        p.add_argument("--entry", help="entry function (default: first)")
        p.add_argument("--merlin", action="store_true",
                       help="apply Merlin's optimizations")
        p.add_argument("--pgo", action="store_true",
                       help="with --merlin: profile-guided layout "
                            "(default training spec)")
        p.add_argument("--superopt", action="store_true",
                       help="with --merlin: caching superoptimizer tier "
                            "(default search spec)")
        p.add_argument("--kernel", default="6.5", choices=sorted(KERNELS))
        p.add_argument("--prog-type", default="xdp",
                       choices=[t.value for t in ProgramType])
        p.add_argument("--mcpu", default="v2", choices=["v2", "v3"])
        p.add_argument("--ctx-size", type=int, default=XDP_CTX_SIZE)
        if name == "run":
            p.add_argument("--packet-size", type=int, default=64)
            p.add_argument("--dst-port", type=int, default=80)
        p.set_defaults(handler=handler)

    f = sub.add_parser("fuzz", help="differential-fuzz the optimizer")
    f.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default: 0)")
    f.add_argument("--budget", type=int, default=200,
                   help="number of generated programs (default: 200)")
    f.add_argument("--corpus", metavar="DIR",
                   help="write .repro files and regression tests here")
    f.add_argument("--layers",
                   help="comma-separated subset of source,ir,bytecode")
    f.add_argument("--tests", type=int, default=4,
                   help="test inputs per program (default: 4)")
    f.add_argument("--kernel", default="6.5", choices=sorted(KERNELS))
    f.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    f.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging minimization of findings")
    f.add_argument("--jobs", type=int, default=1,
                   help="worker processes for program triage (default: 1)")
    f.add_argument("--no-engines", action="store_true",
                   help="skip the reference-vs-fast VM engine axis")
    f.add_argument("--no-certify", action="store_true",
                   help="skip the per-pass translation-validation axis")
    f.add_argument("--no-layout", action="store_true",
                   help="skip the layout-on vs layout-off axis")
    f.add_argument("--no-superopt", action="store_true",
                   help="skip the superopt-on vs superopt-off axis")
    f.set_defaults(handler=cmd_fuzz)

    t = sub.add_parser("tv", help="certify per-pass semantic equivalence")
    t.add_argument("--suite", default="sysdig,xdp",
                   help="comma-separated suites "
                        "(sysdig,tetragon,tracee,xdp; '' skips)")
    t.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="also certify N fuzz-generated programs")
    t.add_argument("--seed", type=int, default=2024)
    t.add_argument("--scale", type=float, default=0.2,
                   help="trace-suite size scale (default: 0.2)")
    t.add_argument("--count", type=int, default=None,
                   help="programs per trace suite (default: profile-derived)")
    t.add_argument("--kernel", default="6.5", choices=sorted(KERNELS))
    t.add_argument("--out", default="TV_report.json",
                   help="certificate report file "
                        "(default: TV_report.json; '' skips)")
    t.add_argument("--json", action="store_true",
                   help="emit the full certificate report as JSON")
    t.set_defaults(handler=cmd_tv)

    b = sub.add_parser("bench", help="batch-compile a suite through Merlin")
    b.add_argument("--suite", default="sysdig",
                   help="comma-separated suites (sysdig,tetragon,tracee)")
    b.add_argument("--scale", type=float, default=0.2,
                   help="fraction of Table-1 program sizes (default: 0.2)")
    b.add_argument("--count", type=int, default=None,
                   help="programs per suite (default: profile-derived)")
    b.add_argument("--seed", type=int, default=2024)
    b.add_argument("--jobs", type=int, default=1,
                   help="compiler worker processes (default: 1)")
    b.add_argument("--cache", metavar="DIR",
                   help="content-addressed compilation cache directory")
    b.add_argument("--mcpu", default=None, choices=["v2", "v3"],
                   help="override the suite profile's mcpu")
    b.add_argument("--kernel", default="6.5", choices=sorted(KERNELS))
    b.add_argument("--json", action="store_true",
                   help="emit machine-readable results")
    b.set_defaults(handler=cmd_bench)

    v = sub.add_parser("bench-vm",
                       help="microbenchmark the VM execution engines")
    v.add_argument("--suite", default="sysdig,xdp",
                   help="comma-separated suites "
                        "(sysdig,tetragon,tracee,xdp)")
    v.add_argument("--seed", type=int, default=2024)
    v.add_argument("--scale", type=float, default=0.2,
                   help="trace-suite size scale (default: 0.2)")
    v.add_argument("--count", type=int, default=None,
                   help="programs per suite (default: profile-derived)")
    v.add_argument("--tests", type=int, default=6,
                   help="inputs per program (default: 6)")
    v.add_argument("--repeats", type=int, default=8,
                   help="battery repetitions per program (default: 8)")
    v.add_argument("--passes", default=None, metavar="P1,P2|all",
                   help="optimize benchmark programs through Merlin "
                        "first: a comma-separated pass subset, or 'all' "
                        "for the full default set (default: baseline "
                        "pipeline, no passes)")
    v.add_argument("--pgo", action="store_true",
                   help="also run the profile-guided layout tier")
    v.add_argument("--superopt", action="store_true",
                   help="also run the caching superoptimizer tier")
    v.add_argument("--out", default="BENCH_vm.json",
                   help="result file (default: BENCH_vm.json; '' skips)")
    v.add_argument("--json", action="store_true",
                   help="emit machine-readable results")
    v.set_defaults(handler=cmd_bench_vm)

    lb = sub.add_parser("bench-layout",
                        help="measure the profile-guided layout tier "
                             "(BENCH_layout.json)")
    lb.add_argument("--suite", default="sysdig,tetragon,tracee,xdp",
                    help="comma-separated suites "
                         "(sysdig,tetragon,tracee,xdp)")
    lb.add_argument("--seed", type=int, default=2024)
    lb.add_argument("--scale", type=float, default=0.2,
                    help="trace-suite size scale (default: 0.2)")
    lb.add_argument("--count", type=int, default=None,
                    help="programs per suite (default: profile-derived)")
    lb.add_argument("--tests", type=int, default=6,
                    help="inputs per program (default: 6)")
    lb.add_argument("--engine", default="fast",
                    choices=["reference", "fast"],
                    help="VM engine for the measurement (default: fast)")
    lb.add_argument("--out", default="BENCH_layout.json",
                    help="result file (default: BENCH_layout.json; "
                         "'' skips)")
    lb.add_argument("--json", action="store_true",
                    help="emit machine-readable results")
    lb.set_defaults(handler=cmd_bench_layout)

    sb = sub.add_parser("bench-superopt",
                        help="measure the caching superoptimizer tier "
                             "(BENCH_superopt.json)")
    sb.add_argument("--suite", default="sysdig,tetragon,tracee,xdp",
                    help="comma-separated suites "
                         "(sysdig,tetragon,tracee,xdp)")
    sb.add_argument("--seed", type=int, default=2024)
    sb.add_argument("--scale", type=float, default=0.2,
                    help="trace-suite size scale (default: 0.2)")
    sb.add_argument("--count", type=int, default=None,
                    help="programs per suite (default: profile-derived)")
    sb.add_argument("--tests", type=int, default=6,
                    help="inputs per program (default: 6)")
    sb.add_argument("--engine", default="fast",
                    choices=["reference", "fast"],
                    help="VM engine for the behaviour replay "
                         "(default: fast)")
    sb.add_argument("--out", default="BENCH_superopt.json",
                    help="result file (default: BENCH_superopt.json; "
                         "'' skips)")
    sb.add_argument("--json", action="store_true",
                    help="emit machine-readable results")
    sb.set_defaults(handler=cmd_bench_superopt)

    s = sub.add_parser("serve",
                       help="run the optimization-as-a-service daemon")
    s.add_argument("--socket", metavar="PATH",
                   help="unix socket path (default: auto temp path)")
    s.add_argument("--tcp", type=int, metavar="PORT",
                   help="serve on 127.0.0.1:PORT instead of a unix socket")
    s.add_argument("--jobs", type=int, default=1,
                   help="compiler worker processes (default: 1)")
    s.add_argument("--cache", metavar="DIR",
                   help="shared compilation cache directory")
    s.add_argument("--max-batch", type=int, default=16,
                   help="admission batch size ceiling (default: 16)")
    s.add_argument("--max-delay-ms", type=float, default=10.0,
                   help="admission window linger in ms (default: 10)")
    s.add_argument("--kernel", default="6.5", choices=sorted(KERNELS))
    s.add_argument("--fleet", type=int, default=0, metavar="N",
                   help="run a consistent-hash router over N shard "
                        "daemons instead of a single daemon")
    s.add_argument("--cache-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="idle TTL for cache entries (default: keep)")
    s.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="disk-store size budget (LRU-evicted by sweep)")
    s.add_argument("--preempt-priority", type=int, default=1,
                   help="priority that cuts the admission linger short "
                        "(default: 1)")
    s.add_argument("--stats-out", metavar="FILE",
                   help="write the final stats snapshot as JSON")
    s.set_defaults(handler=cmd_serve)

    bs = sub.add_parser("bench-serve",
                        help="cold-vs-warm service benchmark "
                             "(BENCH_service.json)")
    bs.add_argument("--requests", type=int, default=1000,
                    help="requests per phase (default: 1000)")
    bs.add_argument("--clients", type=int, default=4,
                    help="concurrent clients (default: 4)")
    bs.add_argument("--unique", type=int, default=80,
                    help="unique programs in the pool (default: 80)")
    bs.add_argument("--seed", type=int, default=2024)
    bs.add_argument("--zipf", type=float, default=1.1,
                    help="Zipf skew exponent (default: 1.1)")
    bs.add_argument("--depth", type=int, default=8,
                    help="per-client pipeline depth (default: 8)")
    bs.add_argument("--jobs", type=int, default=1,
                    help="daemon worker processes (default: 1)")
    bs.add_argument("--max-batch", type=int, default=16)
    bs.add_argument("--max-delay-ms", type=float, default=5.0)
    bs.add_argument("--faults", action="store_true",
                    help="mix protocol-abuse faults into the stream "
                         "(single-daemon mode only)")
    bs.add_argument("--fleet", type=int, default=0, metavar="N",
                    help="benchmark a router over N shard daemons "
                         "instead of a single daemon")
    bs.add_argument("--trace", metavar="FILE",
                    help="with --fleet: replay this recorded trace "
                         "instead of synthesizing load")
    bs.add_argument("--record", metavar="FILE",
                    help="with --fleet: record the cold phase's "
                         "stream as a replayable trace")
    bs.add_argument("--speed", type=float, default=0.0,
                    help="with --trace: inter-arrival time scale "
                         "(0 = flat out, 1 = recorded timing)")
    bs.add_argument("--cache-ttl", type=float, default=None,
                    metavar="SECONDS",
                    help="with --fleet: idle TTL for cache entries")
    bs.add_argument("--cache-max-bytes", type=int, default=None,
                    metavar="BYTES",
                    help="with --fleet: disk-store size budget")
    bs.add_argument("--priority-mix", metavar="SPEC",
                    help="with --fleet: priority distribution, e.g. "
                         "'0:0.9,5:0.1'")
    bs.add_argument("--out", default="BENCH_service.json",
                    help="result file (default: BENCH_service.json; "
                         "'' skips)")
    bs.add_argument("--json", action="store_true",
                    help="emit machine-readable results")
    bs.set_defaults(handler=cmd_bench_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
