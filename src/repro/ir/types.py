"""Type system for the SSA IR (a small subset of LLVM's).

Integers of 8/16/32/64 bits, pointers, fixed arrays, and named structs
with explicit field offsets (so the frontend controls layout, exactly
like clang does for eBPF's context structs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Type:
    """Base class of all IR types."""

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"

    @property
    def size_bytes(self) -> int:
        return 0


@dataclass(frozen=True)
class IntType(Type):
    """An integer of 8, 16, 32 or 64 bits."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.bits}")

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to *pointee*.  All pointers are 64 bits on eBPF."""

    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    @property
    def size_bytes(self) -> int:
        return self.element.size_bytes * self.count


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


@dataclass(frozen=True)
class StructType(Type):
    """A named struct with explicit byte offsets (C layout decided by
    the frontend)."""

    name: str
    fields: Tuple[StructField, ...]

    def __str__(self) -> str:
        return f"%struct.{self.name}"

    @property
    def size_bytes(self) -> int:
        if not self.fields:
            return 0
        last = max(self.fields, key=lambda f: f.offset)
        size = last.offset + last.type.size_bytes
        # round up to 8-byte alignment like C would for 64-bit members
        align = self.alignment
        return (size + align - 1) // align * align

    @property
    def alignment(self) -> int:
        return max((natural_alignment(f.type) for f in self.fields), default=1)

    def field(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.name} has no field {name!r}")


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)


def int_type(bits: int) -> IntType:
    return {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}[bits]


def pointer(pointee: Type) -> PointerType:
    return PointerType(pointee)


def natural_alignment(ty: Type) -> int:
    """The ABI alignment of *ty* (what a well-aligned object guarantees)."""
    if isinstance(ty, IntType):
        return ty.size_bytes
    if isinstance(ty, PointerType):
        return 8
    if isinstance(ty, ArrayType):
        return natural_alignment(ty.element)
    if isinstance(ty, StructType):
        return ty.alignment
    return 1


def make_struct(name: str, members: List[Tuple[str, Type]],
                packed: bool = False) -> StructType:
    """Lay out *members* in order with C-like padding (or none if packed)."""
    fields: List[StructField] = []
    offset = 0
    for member_name, ty in members:
        if not packed:
            align = natural_alignment(ty)
            offset = (offset + align - 1) // align * align
        fields.append(StructField(member_name, ty, offset))
        offset += ty.size_bytes
    return StructType(name, tuple(fields))
