"""SSA values: the common base class plus constants and arguments."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from .types import IntType, Type

if TYPE_CHECKING:  # pragma: no cover
    from .instructions import IRInstruction


class Value:
    """Anything that can appear as an operand.

    SSA discipline: an instruction value is defined exactly once; uses
    are tracked so passes can run def-use queries and RAUW.
    """

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name
        self.uses: List["IRInstruction"] = []

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every user's operand list to refer to *other*."""
        if other is self:
            return
        for user in list(self.uses):
            user.replace_operand(self, other)

    @property
    def ref(self) -> str:
        """Printable reference, e.g. ``%x`` or a literal."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref}: {self.type}>"


class Constant(Value):
    """An integer literal (wrapped to the type's width)."""

    def __init__(self, ty: IntType, value: int):
        super().__init__(ty)
        if not isinstance(ty, IntType):
            raise TypeError("constants must have integer type")
        self.value = value & ty.mask

    @property
    def signed(self) -> int:
        """The value interpreted as signed."""
        sign_bit = 1 << (self.type.bits - 1)
        return self.value - (1 << self.type.bits) if self.value & sign_bit else self.value

    @property
    def ref(self) -> str:
        return str(self.signed)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """An undefined value (used only transiently by passes)."""

    @property
    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A function parameter."""

    def __init__(self, ty: Type, name: str, index: int):
        super().__init__(ty, name)
        self.index = index


class GlobalSymbol(Value):
    """A module-level symbol, e.g. an eBPF map referenced by ld_imm64."""

    def __init__(self, ty: Type, name: str):
        super().__init__(ty, name)

    @property
    def ref(self) -> str:
        return f"@{self.name}"
