"""Structural validation of IR functions.

Checks the invariants every pass must preserve: blocks terminated,
operand def-before-use along some path, phi edges matching predecessors,
type coherence for terminators, and use-list integrity.  Run in tests
after every transformation.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .basicblock import BasicBlock, Function
from .instructions import CondBr, IRInstruction, Phi, Ret
from .values import Argument, Constant, GlobalSymbol, UndefValue, Value


class IRValidationError(Exception):
    """Raised when an IR function violates a structural invariant."""


def validate_function(func: Function) -> None:
    """Raise :class:`IRValidationError` on the first violated invariant."""
    if not func.blocks:
        raise IRValidationError(f"{func.name}: function has no blocks")

    block_set = set(func.blocks)
    defined: Set[Value] = set(func.args)
    position: dict = {}
    for block in func.blocks:
        for index, instruction in enumerate(block.instructions):
            if not instruction.type.is_void:
                if instruction in defined:
                    raise IRValidationError(
                        f"{func.name}: value %{instruction.name} defined twice"
                    )
                defined.add(instruction)
            position[id(instruction)] = (block, index)

    preds = func.predecessors()

    for block in func.blocks:
        if block.terminator is None:
            raise IRValidationError(f"{func.name}/{block.name}: no terminator")
        for i, instruction in enumerate(block.instructions):
            if instruction.is_terminator and i != len(block.instructions) - 1:
                raise IRValidationError(
                    f"{func.name}/{block.name}: terminator not last"
                )
            if isinstance(instruction, Phi) and block.non_phis()[:1] and \
                    block.instructions.index(block.non_phis()[0]) < i:
                raise IRValidationError(
                    f"{func.name}/{block.name}: phi after non-phi instruction"
                )
            if instruction.parent is not block:
                raise IRValidationError(
                    f"{func.name}/{block.name}: instruction parent link broken"
                )
            for operand in instruction.operands:
                _check_operand(func, block, instruction, operand, defined)
                # same-block def must precede the use (phis aggregate
                # values from predecessors and are exempt)
                if not isinstance(instruction, Phi):
                    op_pos = position.get(id(operand))
                    if op_pos is not None and op_pos[0] is block and \
                            op_pos[1] >= i:
                        raise IRValidationError(
                            f"{func.name}/{block.name}: %{operand.name} "
                            f"used before its definition"
                        )
            if isinstance(instruction, Phi):
                _check_phi(func, block, instruction, preds[block], block_set)
        for succ in block.successors():
            if succ not in block_set:
                raise IRValidationError(
                    f"{func.name}/{block.name}: branch to foreign block "
                    f"{succ.name}"
                )

    _check_returns(func)
    _check_use_lists(func)


def _check_operand(func: Function, block: BasicBlock, user: IRInstruction,
                   operand: Value, defined: Set[Value]) -> None:
    if isinstance(operand, (Constant, UndefValue, GlobalSymbol, Argument)):
        if isinstance(operand, Argument) and operand not in defined:
            raise IRValidationError(
                f"{func.name}/{block.name}: foreign argument %{operand.name}"
            )
        return
    if operand not in defined:
        raise IRValidationError(
            f"{func.name}/{block.name}: use of undefined value "
            f"%{operand.name} in '{user.render()}'"
        )


def _check_phi(func: Function, block: BasicBlock, phi: Phi,
               preds: List[BasicBlock], block_set: Set[BasicBlock]) -> None:
    incoming_blocks = list(phi.incoming_blocks)
    if set(incoming_blocks) != set(preds):
        raise IRValidationError(
            f"{func.name}/{block.name}: phi %{phi.name} incoming blocks "
            f"{sorted(b.name for b in incoming_blocks)} != predecessors "
            f"{sorted(b.name for b in preds)}"
        )
    for pred in incoming_blocks:
        if pred not in block_set:
            raise IRValidationError(
                f"{func.name}/{block.name}: phi references foreign block"
            )


def _check_returns(func: Function) -> None:
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if func.return_type.is_void and term.value is not None:
                raise IRValidationError(
                    f"{func.name}: ret with value in void function"
                )
            if not func.return_type.is_void:
                if term.value is None:
                    raise IRValidationError(f"{func.name}: ret void, expected value")
                if term.value.type != func.return_type:
                    raise IRValidationError(
                        f"{func.name}: ret type {term.value.type} != "
                        f"{func.return_type}"
                    )


def _check_use_lists(func: Function) -> None:
    for block in func.blocks:
        for instruction in block.instructions:
            for operand in instruction.operands:
                if instruction not in operand.uses:
                    raise IRValidationError(
                        f"{func.name}: use-list missing user for "
                        f"%{getattr(operand, 'name', '?')}"
                    )


def validate_module(module) -> None:
    for func in module:
        validate_function(func)
