"""IR instruction classes (the subset of LLVM Merlin's passes need)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .types import I1, I64, IntType, PointerType, Type, VOID
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock

BINARY_OPS = (
    "add",
    "sub",
    "mul",
    "udiv",
    "sdiv",
    "urem",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)

ICMP_PREDICATES = (
    "eq",
    "ne",
    "ugt",
    "uge",
    "ult",
    "ule",
    "sgt",
    "sge",
    "slt",
    "sle",
)

ATOMIC_RMW_OPS = ("add", "sub", "and", "or", "xor", "xchg")

CAST_OPS = ("zext", "sext", "trunc", "ptrtoint", "inttoptr", "bitcast")


class IRInstruction(Value):
    """Base class: an SSA value with operands, owned by a basic block."""

    opcode: str = "?"

    def __init__(self, ty: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, name)
        self.operands: List[Value] = []
        self.parent: Optional["BasicBlock"] = None
        for operand in operands:
            self._add_operand(operand)

    def _add_operand(self, operand: Value) -> None:
        self.operands.append(operand)
        operand.uses.append(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        """Swap every occurrence of *old* in the operand list for *new*."""
        changed = False
        for i, operand in enumerate(self.operands):
            if operand is old:
                self.operands[i] = new
                changed = True
        if changed:
            while self in old.uses:
                old.uses.remove(self)
            new.uses.append(self)

    def drop_operands(self) -> None:
        """Detach from all operands' use lists (before deletion)."""
        for operand in self.operands:
            while self in operand.uses:
                operand.uses.remove(self)
        self.operands.clear()

    def erase(self) -> None:
        """Remove this instruction from its block and the use graph."""
        self.drop_operands()
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret, Unreachable))

    def has_side_effects(self) -> bool:
        return isinstance(self, (Store, AtomicRMW, Call, Br, CondBr, Ret, Unreachable))

    def render(self) -> str:
        raise NotImplementedError


class BinaryOp(IRInstruction):
    """``%x = <op> <ty> %a, %b``."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.ref} = {self.opcode} {self.type} "
            f"{self.lhs.ref}, {self.rhs.ref}"
        )


class ICmp(IRInstruction):
    """``%x = icmp <pred> <ty> %a, %b`` producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError("icmp operand types must match")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.ref} = icmp {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref}, {self.rhs.ref}"
        )


class Load(IRInstruction):
    """``%x = load <ty>, <ty>* %p, align N``.

    ``align`` is the *asserted* alignment; the backend must decompose an
    access whose alignment is below the access width (exactly what
    LLVM's eBPF backend does and what Merlin's DAO pass fixes).
    """

    opcode = "load"

    def __init__(self, ptr: Value, align: int = 1, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("load needs a pointer operand")
        super().__init__(ptr.type.pointee, [ptr], name)
        self.align = align

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return (
            f"{self.ref} = load {self.type}, {self.ptr.type} "
            f"{self.ptr.ref}, align {self.align}"
        )


class Store(IRInstruction):
    """``store <ty> %v, <ty>* %p, align N``."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value, align: int = 1):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("store needs a pointer operand")
        if ptr.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {ptr.type}"
            )
        super().__init__(VOID, [value, ptr])
        self.align = align

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"store {self.value.type} {self.value.ref}, {self.ptr.type} "
            f"{self.ptr.ref}, align {self.align}"
        )


class AtomicRMW(IRInstruction):
    """``%old = atomicrmw <op> ptr %p, <ty> %v monotonic, align N``."""

    opcode = "atomicrmw"

    def __init__(self, op: str, ptr: Value, value: Value, align: int = 8,
                 name: str = "", ordering: str = "monotonic"):
        if op not in ATOMIC_RMW_OPS:
            raise ValueError(f"unknown atomicrmw op {op!r}")
        if not isinstance(ptr.type, PointerType):
            raise TypeError("atomicrmw needs a pointer operand")
        if ptr.type.pointee != value.type:
            raise TypeError("atomicrmw value/pointee type mismatch")
        super().__init__(value.type, [ptr, value], name)
        self.rmw_op = op
        self.align = align
        self.ordering = ordering

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.ref} = atomicrmw {self.rmw_op} ptr {self.ptr.ref}, "
            f"{self.value.type} {self.value.ref} {self.ordering}, "
            f"align {self.align}"
        )


class Alloca(IRInstruction):
    """Stack slot: ``%x = alloca <ty>, align N``."""

    opcode = "alloca"

    def __init__(self, allocated: Type, align: Optional[int] = None, name: str = ""):
        from .types import natural_alignment, pointer

        super().__init__(pointer(allocated), [], name)
        self.allocated = allocated
        self.align = align if align is not None else natural_alignment(allocated)

    def render(self) -> str:
        return f"{self.ref} = alloca {self.allocated}, align {self.align}"


class Gep(IRInstruction):
    """Byte-granular pointer arithmetic.

    ``%p2 = gep <result-pointee>* %p, %offset`` computes ``%p + offset``
    (offset in bytes) and retypes the result.  The frontend folds index
    scaling and struct-field offsets into *offset*, so backend and
    passes only ever see byte offsets — a deliberate simplification of
    LLVM's getelementptr that keeps the alignment-inference pass exact.
    """

    opcode = "gep"

    def __init__(self, ptr: Value, offset: Value, result_type: PointerType,
                 name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("gep needs a pointer operand")
        if not isinstance(offset.type, IntType):
            raise TypeError("gep offset must be an integer")
        super().__init__(result_type, [ptr, offset], name)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def offset(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.ref} = gep {self.type} {self.ptr.ref}, "
            f"{self.offset.type} {self.offset.ref}"
        )


class Cast(IRInstruction):
    """zext / sext / trunc / ptrtoint / inttoptr / bitcast."""

    def __init__(self, op: str, value: Value, to: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast {op!r}")
        super().__init__(to, [value], name)
        self.opcode = op

    @property
    def value(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return (
            f"{self.ref} = {self.opcode} {self.value.type} "
            f"{self.value.ref} to {self.type}"
        )


class Select(IRInstruction):
    """``%x = select i1 %c, <ty> %a, <ty> %b``."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if if_true.type != if_false.type:
            raise TypeError("select arm types must match")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        t, f = self.operands[1], self.operands[2]
        return (
            f"{self.ref} = select i1 {self.cond.ref}, {t.type} {t.ref}, "
            f"{f.type} {f.ref}"
        )


class Call(IRInstruction):
    """Call an eBPF helper (by name) or a local function."""

    opcode = "call"

    def __init__(self, callee: str, args: Sequence[Value], return_type: Type,
                 name: str = ""):
        super().__init__(return_type, list(args), name)
        self.callee = callee

    def render(self) -> str:
        args = ", ".join(f"{a.type} {a.ref}" for a in self.operands)
        prefix = "" if self.type.is_void else f"{self.ref} = "
        return f"{prefix}call {self.type} @{self.callee}({args})"


class Phi(IRInstruction):
    """SSA phi node; incoming values paired with predecessor blocks."""

    opcode = "phi"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, [], name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError("phi incoming type mismatch")
        self._add_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                operand = self.operands.pop(i)
                self.incoming_blocks.pop(i)
                while self in operand.uses and self.operands.count(operand) == 0:
                    operand.uses.remove(self)
                return

    def render(self) -> str:
        pairs = ", ".join(
            f"[ {v.ref}, %{b.name} ]" for v, b in self.incoming()
        )
        return f"{self.ref} = phi {self.type} {pairs}"


class Br(IRInstruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def render(self) -> str:
        return f"br label %{self.target.name}"


class CondBr(IRInstruction):
    """Conditional branch on an i1."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return (
            f"br i1 {self.cond.ref}, label %{self.if_true.name}, "
            f"label %{self.if_false.name}"
        )


class Ret(IRInstruction):
    """Return, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def render(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref}"


class Unreachable(IRInstruction):
    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(VOID, [])

    def render(self) -> str:
        return "unreachable"


def successors(terminator: IRInstruction) -> List["BasicBlock"]:
    """CFG successors encoded by a terminator instruction."""
    if isinstance(terminator, Br):
        return [terminator.target]
    if isinstance(terminator, CondBr):
        return [terminator.if_true, terminator.if_false]
    return []
