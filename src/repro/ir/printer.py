"""Textual rendering of IR modules/functions (LLVM-flavoured)."""

from __future__ import annotations

from typing import List

from .basicblock import Function, Module


def print_function(func: Function) -> str:
    args = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    lines: List[str] = [f"define {func.return_type} @{func.name}({args}) {{"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            lines.append(f"  {instruction.render()}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = [f"; ModuleID = '{module.name}'"]
    for map_name, spec in module.maps.items():
        parts.append(
            f"@{map_name} = map {spec.map_type} key={spec.key_size} "
            f"value={spec.value_size} max_entries={spec.max_entries}"
        )
    parts.extend(print_function(func) for func in module)
    return "\n\n".join(parts)
