"""Parser for the textual IR syntax emitted by :mod:`repro.ir.printer`.

Round-trips ``print_function`` output, which makes pass tests writable
as before/after IR snippets::

    func = parse_function('''
    define i64 @f(i8* %ctx) {
    entry:
      %1 = gep i16* %ctx, i64 36
      %2 = load i16, i16* %1, align 1
      %3 = zext i16 %2 to i64
      ret i64 %3
    }
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import instructions as iri
from .basicblock import BasicBlock, Function
from .types import ArrayType, IntType, PointerType, Type, VOID, int_type, pointer
from .values import Argument, Constant, GlobalSymbol, Value


class IRParseError(SyntaxError):
    def __init__(self, line_no: int, line: str, message: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")


_TYPE_RE = re.compile(r"^(void|i1|i8|i16|i32|i64)(\**)$")
_ARRAY_RE = re.compile(r"^\[(\d+)\s*x\s*(.+)\](\**)$")
_DEFINE_RE = re.compile(
    r"^define\s+(\S+)\s+@([\w.$-]+)\s*\(([^)]*)\)\s*\{$"
)
_LABEL_RE = re.compile(r"^([\w.$-]+):$")
_ASSIGN_RE = re.compile(r"^%([\w.$-]+)\s*=\s*(.*)$")


def parse_type(text: str) -> Type:
    array = _ARRAY_RE.match(text.strip())
    if array:
        count, element, stars = array.groups()
        ty: Type = ArrayType(parse_type(element), int(count))
        for _ in stars:
            ty = pointer(ty)
        return ty
    match = _TYPE_RE.match(text.strip())
    if not match:
        raise ValueError(f"unknown type {text!r}")
    base, stars = match.groups()
    if base == "void":
        if stars:
            raise ValueError("pointer to void is not supported")
        return VOID
    ty: Type = int_type(int(base[1:]))
    for _ in stars:
        ty = pointer(ty)
    return ty


class _FunctionParser:
    def __init__(self) -> None:
        self.func: Optional[Function] = None
        self.values: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.pending: List[Tuple] = []  # fixups for forward block refs
        #: typed placeholders for values used before their textual
        #: definition — legal SSA whenever the defining block dominates
        #: the use even though it *prints* later (branch folding leaves
        #: blocks in layout order); resolved in _fixup_forwards
        self.forward: Dict[str, Tuple[Value, int, str]] = {}
        self.current: Optional[BasicBlock] = None

    # ------------------------------------------------------------- values
    def _value(self, ty: Type, token: str, line_no: int, line: str) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            if name not in self.values:
                if name not in self.forward:
                    self.forward[name] = (Value(ty, name), line_no, line)
                return self.forward[name][0]
            return self.values[name]
        if token.startswith("@"):
            return GlobalSymbol(pointer(int_type(8)), token[1:])
        if token == "undef":
            from .values import UndefValue

            return UndefValue(ty)
        if isinstance(ty, IntType):
            try:
                return Constant(ty, int(token, 0))
            except ValueError:
                pass
        raise IRParseError(line_no, line, f"cannot parse operand {token!r}")

    def _block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = BasicBlock(name, self.func)
            self.blocks[name] = block
        return self.blocks[name]

    def _define(self, insn: iri.IRInstruction, name: str) -> None:
        insn.name = name
        self.values[name] = insn
        assert self.current is not None
        self.current.instructions.append(insn)
        insn.parent = self.current

    def _append(self, insn: iri.IRInstruction) -> None:
        assert self.current is not None
        self.current.instructions.append(insn)
        insn.parent = self.current

    # -------------------------------------------------------------- parse
    def parse(self, text: str) -> Function:
        lines = text.splitlines()
        for line_no, raw in enumerate(lines, start=1):
            line = raw.split(";")[0].strip()
            if not line:
                continue
            if line == "}":
                break
            if self.func is None:
                self._parse_define(line_no, line)
                continue
            label = _LABEL_RE.match(line)
            if label:
                block = self._block(label.group(1))
                if block not in self.func.blocks:
                    self.func.blocks.append(block)
                self.current = block
                continue
            if self.current is None:
                raise IRParseError(line_no, line, "instruction outside block")
            self._parse_instruction(line_no, line)
        if self.func is None:
            raise SyntaxError("no 'define' found")
        self._fixup_forwards()
        self._fixup_phis()
        return self.func

    def _parse_define(self, line_no: int, line: str) -> None:
        match = _DEFINE_RE.match(line)
        if not match:
            raise IRParseError(line_no, line, "expected 'define'")
        ret_text, name, params = match.groups()
        arg_types: List[Type] = []
        arg_names: List[str] = []
        if params.strip():
            for param in params.split(","):
                ty_text, _, pname = param.strip().rpartition(" ")
                arg_types.append(parse_type(ty_text))
                arg_names.append(pname.lstrip("%"))
        self.func = Function(name, parse_type(ret_text), arg_types, arg_names)
        for arg in self.func.args:
            self.values[arg.name] = arg

    # ------------------------------------------------------- instructions
    def _parse_instruction(self, line_no: int, line: str) -> None:
        assign = _ASSIGN_RE.match(line)
        name = None
        body = line
        if assign:
            name, body = assign.groups()
        insn = self._build(line_no, line, body.strip())
        if name is not None:
            self._define(insn, name)
        else:
            self._append(insn)

    def _build(self, line_no: int, line: str, body: str) -> iri.IRInstruction:
        head = body.split(None, 1)[0]
        rest = body[len(head):].strip()

        if head in iri.BINARY_OPS:
            ty, lhs, rhs = self._ty_two_operands(line_no, line, rest)
            return iri.BinaryOp(head, lhs, rhs)
        if head == "icmp":
            pred, remainder = rest.split(None, 1)
            ty, lhs, rhs = self._ty_two_operands(line_no, line, remainder)
            return iri.ICmp(pred, lhs, rhs)
        if head == "load":
            # load i16, i16* %p, align N
            parts = [p.strip() for p in rest.split(",")]
            ptr_ty_text, ptr_tok = parts[1].rsplit(None, 1)
            ptr = self._value(parse_type(ptr_ty_text), ptr_tok, line_no, line)
            align = self._align(parts, default=1)
            return iri.Load(ptr, align=align)
        if head == "store":
            parts = [p.strip() for p in rest.split(",")]
            val_ty_text, val_tok = parts[0].rsplit(None, 1)
            val_ty = parse_type(val_ty_text)
            value = self._value(val_ty, val_tok, line_no, line)
            ptr_ty_text, ptr_tok = parts[1].rsplit(None, 1)
            ptr = self._value(parse_type(ptr_ty_text), ptr_tok, line_no, line)
            return iri.Store(value, ptr, align=self._align(parts, default=1))
        if head == "atomicrmw":
            # atomicrmw add ptr %p, i64 %v monotonic, align 8
            op_name, remainder = rest.split(None, 1)
            parts = [p.strip() for p in remainder.split(",")]
            ptr_tok = parts[0].split()[-1]
            val_text = parts[1].split()
            val_ty = parse_type(val_text[0])
            value = self._value(val_ty, val_text[1], line_no, line)
            ordering = val_text[2] if len(val_text) > 2 else "monotonic"
            ptr = self._value(pointer(val_ty), ptr_tok, line_no, line)
            if not isinstance(ptr.type, PointerType) or \
                    ptr.type.pointee != val_ty:
                # 'ptr' syntax is untyped: trust the value type
                pass
            return iri.AtomicRMW(op_name, ptr, value,
                                 align=self._align(parts, default=8),
                                 ordering=ordering)
        if head == "alloca":
            parts = [p.strip() for p in rest.split(",")]
            allocated = parse_type(parts[0])
            return iri.Alloca(allocated, self._align(parts, default=None))
        if head == "gep":
            # gep i16* %p, i64 36
            parts = [p.strip() for p in rest.split(",")]
            res_ty_text, ptr_tok = parts[0].rsplit(None, 1)
            result_type = parse_type(res_ty_text)
            off_ty_text, off_tok = parts[1].rsplit(None, 1)
            offset = self._value(parse_type(off_ty_text), off_tok, line_no,
                                 line)
            base = self._pointer_operand(ptr_tok, line_no, line)
            if not isinstance(result_type, PointerType):
                raise IRParseError(line_no, line, "gep result must be pointer")
            return iri.Gep(base, offset, result_type)
        if head in iri.CAST_OPS:
            # zext i16 %2 to i64
            source_text, _, to_text = rest.rpartition(" to ")
            ty_text, tok = source_text.rsplit(None, 1)
            value = self._value(parse_type(ty_text), tok, line_no, line)
            return iri.Cast(head, value, parse_type(to_text))
        if head == "select":
            parts = [p.strip() for p in rest.split(",")]
            cond = self._value(int_type(1), parts[0].split()[-1], line_no,
                               line)
            t_ty_text, t_tok = parts[1].rsplit(None, 1)
            t_val = self._value(parse_type(t_ty_text), t_tok, line_no, line)
            f_ty_text, f_tok = parts[2].rsplit(None, 1)
            f_val = self._value(parse_type(f_ty_text), f_tok, line_no, line)
            return iri.Select(cond, t_val, f_val)
        if head == "call":
            # call i64 @name(i64 %a, ...)
            match = re.match(r"^(\S+)\s+@([\w.$-]+)\((.*)\)$", rest)
            if not match:
                raise IRParseError(line_no, line, "malformed call")
            ret_ty = parse_type(match.group(1))
            args = []
            if match.group(3).strip():
                for arg in match.group(3).split(","):
                    ty_text, tok = arg.strip().rsplit(None, 1)
                    args.append(self._value(parse_type(ty_text), tok,
                                            line_no, line))
            return iri.Call(match.group(2), args, ret_ty)
        if head == "phi":
            # phi i64 [ %a, %bb1 ], [ 0, %bb2 ] — incoming values may be
            # defined later (loop back-edges), so resolution is deferred
            ty_text, remainder = rest.split(None, 1)
            ty = parse_type(ty_text)
            phi = iri.Phi(ty)
            pairs = re.findall(r"\[\s*([^,\]]+)\s*,\s*%([\w.$-]+)\s*\]",
                               remainder)
            self.pending.append((phi, ty, pairs, line_no, line))
            return phi
        if head == "br":
            cond_match = re.match(
                r"^i1\s+(\S+),\s*label\s+%([\w.$-]+),\s*label\s+%([\w.$-]+)$",
                rest)
            if cond_match:
                cond = self._value(int_type(1), cond_match.group(1), line_no,
                                   line)
                return iri.CondBr(cond, self._block(cond_match.group(2)),
                                  self._block(cond_match.group(3)))
            plain = re.match(r"^label\s+%([\w.$-]+)$", rest)
            if plain:
                return iri.Br(self._block(plain.group(1)))
            raise IRParseError(line_no, line, "malformed br")
        if head == "ret":
            if rest == "void":
                return iri.Ret()
            ty_text, tok = rest.rsplit(None, 1)
            return iri.Ret(self._value(parse_type(ty_text), tok, line_no,
                                       line))
        if head == "unreachable":
            return iri.Unreachable()
        raise IRParseError(line_no, line, f"unknown instruction {head!r}")

    # ------------------------------------------------------------ helpers
    def _pointer_operand(self, token: str, line_no: int,
                         line: str) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            if name in self.values:
                return self.values[name]
        raise IRParseError(line_no, line, f"unknown pointer {token!r}")

    def _ty_two_operands(self, line_no: int, line: str, rest: str):
        # "<ty> a, b"
        ty_text, remainder = rest.split(None, 1)
        ty = parse_type(ty_text)
        lhs_tok, _, rhs_tok = remainder.partition(",")
        lhs = self._value(ty, lhs_tok, line_no, line)
        rhs = self._value(ty, rhs_tok, line_no, line)
        return ty, lhs, rhs

    @staticmethod
    def _align(parts: List[str], default):
        for part in parts:
            match = re.match(r"^align\s+(\d+)$", part.strip())
            if match:
                return int(match.group(1))
        return default

    def _fixup_forwards(self) -> None:
        for name, (placeholder, line_no, line) in self.forward.items():
            defined = self.values.get(name)
            if defined is None:
                raise IRParseError(line_no, line,
                                   f"use of undefined value %{name}")
            if defined.type != placeholder.type:
                raise IRParseError(
                    line_no, line,
                    f"%{name} used as {placeholder.type} but defined as "
                    f"{defined.type}")
            placeholder.replace_all_uses_with(defined)

    def _fixup_phis(self) -> None:
        assert self.func is not None
        for phi, ty, pairs, line_no, line in self.pending:
            for value_tok, block_name in pairs:
                value = self._value(ty, value_tok, line_no, line)
                phi.add_incoming(value, self._block(block_name))
        # ensure every referenced block ended up in the function
        known = set(self.func.blocks)
        for block in list(self.blocks.values()):
            if block not in known:
                raise SyntaxError(f"branch to undefined block {block.name!r}")


def parse_function(text: str) -> Function:
    """Parse one ``define ... { ... }`` into a Function."""
    return _FunctionParser().parse(text)
