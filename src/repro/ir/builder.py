"""Convenience builder for constructing IR, mirroring llvmlite's IRBuilder."""

from __future__ import annotations

from typing import Optional, Sequence

from . import instructions as insn
from .basicblock import BasicBlock, Function
from .types import I1, I8, I16, I32, I64, IntType, PointerType, Type, pointer
from .values import Constant, Value


class IRBuilder:
    """Appends instructions to a block and hands back their SSA values."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder is not positioned inside a function")
        return self.block.parent

    def _emit(self, instruction: insn.IRInstruction) -> insn.IRInstruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if not instruction.name and not instruction.type.is_void:
            instruction.name = self.function.next_name()
        return self.block.append(instruction)

    # --- constants --------------------------------------------------------
    @staticmethod
    def const(ty: IntType, value: int) -> Constant:
        return Constant(ty, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    def i32(self, value: int) -> Constant:
        return Constant(I32, value)

    # --- arithmetic ---------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(insn.BinaryOp(op, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("udiv", lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("ashr", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(insn.ICmp(pred, lhs, rhs, name))

    def select(self, cond: Value, if_true: Value, if_false: Value,
               name: str = "") -> Value:
        return self._emit(insn.Select(cond, if_true, if_false, name))

    # --- memory ---------------------------------------------------------------
    def alloca(self, ty: Type, align: Optional[int] = None, name: str = "") -> Value:
        return self._emit(insn.Alloca(ty, align, name))

    def load(self, ptr: Value, align: int = 1, name: str = "") -> Value:
        return self._emit(insn.Load(ptr, align, name))

    def store(self, value: Value, ptr: Value, align: int = 1) -> Value:
        return self._emit(insn.Store(value, ptr, align))

    def atomic_rmw(self, op: str, ptr: Value, value: Value, align: int = 8,
                   name: str = "") -> Value:
        return self._emit(insn.AtomicRMW(op, ptr, value, align, name))

    def gep(self, ptr: Value, offset: Value, result_pointee: Type,
            name: str = "") -> Value:
        return self._emit(insn.Gep(ptr, offset, pointer(result_pointee), name))

    def gep_const(self, ptr: Value, offset: int, result_pointee: Type,
                  name: str = "") -> Value:
        return self.gep(ptr, self.i64(offset), result_pointee, name)

    # --- casts ------------------------------------------------------------------
    def cast(self, op: str, value: Value, to: Type, name: str = "") -> Value:
        return self._emit(insn.Cast(op, value, to, name))

    def zext(self, value: Value, to: Type, name: str = "") -> Value:
        return self.cast("zext", value, to, name)

    def sext(self, value: Value, to: Type, name: str = "") -> Value:
        return self.cast("sext", value, to, name)

    def trunc(self, value: Value, to: Type, name: str = "") -> Value:
        return self.cast("trunc", value, to, name)

    def inttoptr(self, value: Value, to: PointerType, name: str = "") -> Value:
        return self.cast("inttoptr", value, to, name)

    def ptrtoint(self, value: Value, to: IntType = I64, name: str = "") -> Value:
        return self.cast("ptrtoint", value, to, name)

    def bitcast(self, value: Value, to: Type, name: str = "") -> Value:
        return self.cast("bitcast", value, to, name)

    # --- control flow --------------------------------------------------------------
    def call(self, callee: str, args: Sequence[Value], return_type: Type,
             name: str = "") -> Value:
        return self._emit(insn.Call(callee, args, return_type, name))

    def phi(self, ty: Type, name: str = "") -> insn.Phi:
        node = insn.Phi(ty, name)
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if not node.name:
            node.name = self.function.next_name()
        # phis go before non-phi instructions
        index = len(self.block.phis())
        self.block.insert(index, node)
        return node

    def br(self, target: BasicBlock) -> Value:
        return self._emit(insn.Br(target))

    def cbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Value:
        return self._emit(insn.CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Value:
        return self._emit(insn.Ret(value))

    def unreachable(self) -> Value:
        return self._emit(insn.Unreachable())
