"""Basic blocks and functions of the SSA IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .instructions import IRInstruction, Phi, successors
from .types import Type, VOID
from .values import Argument, Value


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[IRInstruction] = []

    def append(self, insn: IRInstruction) -> IRInstruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name} already has a terminator")
        insn.parent = self
        self.instructions.append(insn)
        return insn

    def insert(self, index: int, insn: IRInstruction) -> IRInstruction:
        insn.parent = self
        self.instructions.insert(index, insn)
        return insn

    @property
    def terminator(self) -> Optional[IRInstruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return successors(term) if term is not None else []

    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phis(self) -> List[IRInstruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def __iter__(self) -> Iterator[IRInstruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insns)>"


class Function:
    """A function: arguments, blocks, a return type, and a name scope."""

    def __init__(self, name: str, return_type: Type = VOID,
                 arg_types: Sequence[Type] = (), arg_names: Sequence[str] = ()):
        self.name = name
        self.return_type = return_type
        self.args: List[Argument] = [
            Argument(ty, arg_names[i] if i < len(arg_names) else f"arg{i}", i)
            for i, ty in enumerate(arg_types)
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = 0

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        name = name or self.next_name("bb")
        existing = {b.name for b in self.blocks}
        if name in existing:
            base = name
            counter = 1
            while f"{base}{counter}" in existing:
                counter += 1
            name = f"{base}{counter}"
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def next_name(self, prefix: str = "") -> str:
        # skip names already taken: a parsed function starts its counter
        # at zero, but its instructions keep their printed names, and a
        # collision silently merges two SSA values on the next textual
        # round trip
        used = {arg.name for arg in self.args}
        for block in self.blocks:
            for insn in block.instructions:
                if insn.name:
                    used.add(insn.name)
        while True:
            self._name_counter += 1
            name = f"{prefix}{self._name_counter}"
            if name not in used:
                return name

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map each block to the blocks that branch to it."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def instructions(self) -> Iterator[IRInstruction]:
        for block in self.blocks:
            yield from block.instructions

    def remove_block(self, block: BasicBlock) -> None:
        """Remove *block*, detaching its instructions and phi edges."""
        for other in self.blocks:
            for phi in other.phis():
                phi.remove_incoming(block)
        for insn in list(block.instructions):
            insn.drop_operands()
            insn.parent = None
        block.instructions.clear()
        self.blocks.remove(block)

    def renumber(self) -> None:
        """Give every unnamed value a fresh sequential name (printing aid)."""
        counter = 0
        for block in self.blocks:
            for insn in block.instructions:
                if not insn.type.is_void:
                    counter += 1
                    insn.name = str(counter)

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compilation unit: functions plus map declarations."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.maps: Dict[str, "object"] = {}  # name -> isa.MapSpec

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def get(self, name: str) -> Function:
        return self.functions[name]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())
