"""repro — reproduction of "Merlin: Multi-tier Optimization of eBPF Code
for Performance and Compactness" (ASPLOS 2024).

The package is a full eBPF toolchain in Python plus the paper's
optimizer:

- :mod:`repro.frontend` — mini-C to SSA IR ("clang")
- :mod:`repro.ir` — the SSA IR ("LLVM IR")
- :mod:`repro.codegen` — IR to eBPF bytecode ("llc")
- :mod:`repro.core` — **Merlin**: IR + bytecode optimization tiers
- :mod:`repro.isa` — eBPF instructions, assembler, disassembler
- :mod:`repro.verifier` — kernel verifier model (NPI, states, pruning)
- :mod:`repro.vm` — eBPF interpreter with cycle/cache/branch models
- :mod:`repro.hw` — cache / branch-predictor / perf-counter models
- :mod:`repro.baselines` — the K2 stochastic-search baseline
- :mod:`repro.workloads` — XDP programs and Sysdig/Tetragon/Tracee-style
  suites
- :mod:`repro.eval` — harnesses regenerating every paper table/figure
- :mod:`repro.fuzz` — differential fuzzer for the optimizer (generate,
  diff, bisect to the guilty pass, minimize)

Quickstart::

    from repro import compile_bpf, optimize, run_xdp

    module = compile_bpf(open("prog.c").read())
    program, report = optimize(module, "xdp_main")
    print(report.ni_reduction)
"""

from typing import Optional, Tuple

from . import codegen, core, frontend, hw, ir, isa, verifier, vm
from .core import MerlinPipeline, MerlinReport, compile_with_merlin
from .frontend import compile_source as compile_bpf
from .isa import BpfProgram, ProgramType
from .verifier import KERNELS, verify
from .vm import Machine

__version__ = "1.0.0"

#: our xdp_md context layout is 24 bytes (u64 data/data_end + 2 u32s)
XDP_CTX_SIZE = 24


def compile_baseline(
    module: ir.Module,
    function: Optional[str] = None,
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = XDP_CTX_SIZE,
) -> BpfProgram:
    """Compile one function with the native pipeline (no Merlin)."""
    func = module.get(function) if function else next(iter(module))
    return codegen.compile_function(func, module, prog_type=prog_type,
                                    mcpu=mcpu, ctx_size=ctx_size)


def optimize(
    module: ir.Module,
    function: Optional[str] = None,
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = XDP_CTX_SIZE,
    pgo=None,
    superopt=None,
    **pipeline_kwargs,
) -> Tuple[BpfProgram, MerlinReport]:
    """Compile one function through the full Merlin pipeline.

    The pipeline compiles from a private clone, so *module* comes back
    unchanged and repeated calls yield identical reports.  ``pgo``
    enables the profile-guided layout tier (``True`` for the default
    spec, or a :class:`repro.core.bytecode_passes.layout.PgoSpec`);
    ``superopt`` enables the caching superoptimizer tier (``True`` for
    the default spec, or a :class:`repro.core.superopt.SuperoptSpec`).
    """
    func = module.get(function) if function else next(iter(module))
    pipeline = MerlinPipeline(**pipeline_kwargs)
    return pipeline.compile(func, module, prog_type=prog_type, mcpu=mcpu,
                            ctx_size=ctx_size, pgo=pgo, superopt=superopt)


def run_xdp(program: BpfProgram, packet: bytes, machine: Optional[Machine] = None):
    """Run an XDP program over one packet; returns the RunResult."""
    m = machine if machine is not None else Machine(program)
    return m.run(packet=packet)


__all__ = [
    "codegen",
    "core",
    "frontend",
    "hw",
    "ir",
    "isa",
    "verifier",
    "vm",
    "MerlinPipeline",
    "MerlinReport",
    "compile_with_merlin",
    "compile_bpf",
    "BpfProgram",
    "ProgramType",
    "KERNELS",
    "verify",
    "Machine",
    "XDP_CTX_SIZE",
    "compile_baseline",
    "optimize",
    "run_xdp",
]
