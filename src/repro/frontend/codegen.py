"""AST -> SSA IR generation (the reproduction's ``clang -O2``).

Scalar locals are promoted straight to SSA with on-the-fly phi
construction (Braun et al., CC'13), so the baseline IR is comparable to
what clang -O2 emits rather than a naive alloca-per-variable lowering.
Only address-taken locals and arrays get stack slots.

Alignment model: dereferences through *cast-derived* pointers (packet
parsing ``*(u32*)(data + off)``, tracepoint context offsets) and through
pointer-typed variables are emitted ``align 1``, matching what clang
emits for packed kernel structs and integer-cast pointers — this is
exactly the slack Merlin's DAO pass recovers.  Dereferences of ``&local``
use the slot's natural alignment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import ir
from ..ir import instructions as iri
from ..isa import MapSpec
from . import ast_nodes as ast
from .parser import parse

_INT_TYPES = {"u8": ir.I8, "u16": ir.I16, "u32": ir.I32, "u64": ir.I64}

#: builtin struct: our xdp_md layout (u64 data/data_end + two u32s)
XDP_FIELDS = {
    "data": (0, ir.I64, 8),
    "data_end": (8, ir.I64, 8),
    "ingress_ifindex": (16, ir.I32, 4),
    "rx_queue_index": (20, ir.I32, 4),
}

#: builtin helper calls: name -> (helper_name, return_type or "map_value")
BUILTINS = {
    "map_lookup": ("map_lookup_elem", "map_value"),
    "map_update": ("map_update_elem", ir.I64),
    "map_delete": ("map_delete_elem", ir.I64),
    "probe_read": ("probe_read", ir.I64),
    "probe_read_str": ("probe_read_str", ir.I64),
    "ktime_get_ns": ("ktime_get_ns", ir.I64),
    "ktime_get_boot_ns": ("ktime_get_boot_ns", ir.I64),
    "get_prandom_u32": ("get_prandom_u32", ir.I32),
    "get_smp_processor_id": ("get_smp_processor_id", ir.I32),
    "get_current_pid_tgid": ("get_current_pid_tgid", ir.I64),
    "get_current_uid_gid": ("get_current_uid_gid", ir.I64),
    "get_current_comm": ("get_current_comm", ir.I64),
    "trace_printk": ("trace_printk", ir.I64),
    "perf_event_output": ("perf_event_output", ir.I64),
    "ringbuf_output": ("ringbuf_output", ir.I64),
    "csum_diff": ("csum_diff", ir.I64),
    "xdp_adjust_head": ("xdp_adjust_head", ir.I64),
    "redirect": ("redirect", ir.I64),
    "redirect_map": ("redirect_map", ir.I64),
    "fib_lookup": ("fib_lookup", ir.I64),
}

#: XDP action constants available to every program
ACTION_CONSTS = {
    "XDP_ABORTED": 0,
    "XDP_DROP": 1,
    "XDP_PASS": 2,
    "XDP_TX": 3,
    "XDP_REDIRECT": 4,
    "BPF_ANY": 0,
    "BPF_NOEXIST": 1,
    "BPF_EXIST": 2,
}


class CompileError(Exception):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


def _lower_type(tname: ast.TypeName) -> ir.Type:
    if tname.base == "void" and tname.pointer_depth == 0:
        return ir.VOID
    base: ir.Type = _INT_TYPES.get(tname.base, ir.I8)
    if tname.base == "void":
        base = ir.I8
    for _ in range(tname.pointer_depth):
        base = ir.pointer(base)
    return base


class _SSA:
    """Braun-style on-the-fly SSA construction for scalar variables."""

    def __init__(self, func: ir.Function):
        self.func = func
        self.defs: Dict[Tuple[str, ir.BasicBlock], ir.Value] = {}
        self.types: Dict[str, ir.Type] = {}
        self.sealed: Set[ir.BasicBlock] = set()
        self.incomplete: Dict[ir.BasicBlock, Dict[str, iri.Phi]] = {}
        self.preds: Dict[ir.BasicBlock, List[ir.BasicBlock]] = {}

    def add_edge(self, pred: ir.BasicBlock, succ: ir.BasicBlock) -> None:
        self.preds.setdefault(succ, []).append(pred)

    def write(self, var: str, block: ir.BasicBlock, value: ir.Value) -> None:
        self.defs[(var, block)] = value

    def read(self, var: str, block: ir.BasicBlock, line: int) -> ir.Value:
        """Braun-style variable read.

        The walk up single-predecessor chains is iterative — long
        straight-line functions produce thousands of sequential blocks,
        far past Python's recursion limit.
        """
        ty = self.types.get(var)
        if ty is None and (var, block) not in self.defs:
            raise CompileError(line, f"use of undeclared variable {var!r}")
        chain: List[ir.BasicBlock] = []
        current = block
        while True:
            if (var, current) in self.defs:
                value = self.defs[(var, current)]
                break
            if current not in self.sealed:
                phi = self._place_phi(current, ty)
                self.incomplete.setdefault(current, {})[var] = phi
                value = phi
                self.write(var, current, value)
                break
            preds = self.preds.get(current, [])
            if len(preds) == 1:
                chain.append(current)
                current = preds[0]
                continue
            if not preds:
                raise CompileError(
                    line, f"variable {var!r} may be used uninitialized"
                )
            phi = self._place_phi(current, ty)
            self.write(var, current, phi)
            value = self._add_phi_operands(var, phi, current, line)
            break
        for visited in chain:
            self.write(var, visited, value)
        return value

    def _place_phi(self, block: ir.BasicBlock, ty: ir.Type) -> iri.Phi:
        phi = iri.Phi(ty, self.func.next_name())
        block.insert(len(block.phis()), phi)
        return phi

    def _add_phi_operands(self, var: str, phi: iri.Phi, block: ir.BasicBlock,
                          line: int) -> ir.Value:
        for pred in self.preds.get(block, []):
            phi.add_incoming(self.read(var, pred, line), pred)
        return self._try_remove_trivial(phi)

    def _try_remove_trivial(self, phi: iri.Phi) -> ir.Value:
        same: Optional[ir.Value] = None
        for value, _ in phi.incoming():
            if value is phi or value is same:
                continue
            if same is not None:
                return phi  # merges at least two distinct values
            same = value
        if same is None:
            return phi
        users = [u for u in phi.uses if u is not phi]
        phi.replace_all_uses_with(same)
        # fix stale defs pointing at the removed phi
        for key, value in list(self.defs.items()):
            if value is phi:
                self.defs[key] = same
        phi.erase()
        for user in users:
            if isinstance(user, iri.Phi):
                self._try_remove_trivial(user)
        return same

    def seal(self, block: ir.BasicBlock) -> None:
        for var, phi in self.incomplete.pop(block, {}).items():
            self._add_phi_operands(var, phi, block, 0)
        self.sealed.add(block)


class _InlineFrame:
    """State of one in-progress function inlining."""

    def __init__(self, func_def: ast.FuncDef, prefix: str,
                 continuation: ir.BasicBlock, result_var: Optional[str]):
        self.func_def = func_def
        self.prefix = prefix
        self.continuation = continuation
        self.result_var = result_var


class FunctionCompiler:
    """Compiles one function definition to IR."""

    #: guard against runaway mutual inlining
    MAX_INLINE_DEPTH = 6

    def __init__(self, module: ir.Module, consts: Dict[str, int],
                 func_def: ast.FuncDef,
                 user_functions: Optional[Dict[str, ast.FuncDef]] = None):
        self.module = module
        self.consts = dict(ACTION_CONSTS)
        self.consts.update(consts)
        self.func_def = func_def
        arg_types = [_lower_type(p.type) for p in func_def.params]
        self.func = ir.Function(
            func_def.name,
            _lower_type(func_def.return_type),
            arg_types,
            [p.name for p in func_def.params],
        )
        self.builder = ir.IRBuilder()
        self.ssa = _SSA(self.func)
        self.allocas: Dict[str, iri.Alloca] = {}
        self.address_taken = self._find_address_taken(func_def.body)
        self.loop_stack: List[Tuple[ir.BasicBlock, ir.BasicBlock]] = []
        self.terminated = False
        # program-local functions (paper §5.1's "local functions"): eBPF
        # has no general call instruction for them, so they are inlined
        self.user_functions = user_functions or {}
        self.inline_stack: List["_InlineFrame"] = []
        self._inline_counter = 0

    # --- entry ------------------------------------------------------------
    def compile(self) -> ir.Function:
        entry = self.func.add_block("entry")
        self.ssa.seal(entry)
        self.builder.position_at_end(entry)
        for param, arg in zip(self.func_def.params, self.func.args):
            self._bind_local(param.name, arg)
        self._block(self.func_def.body)
        if not self.terminated:
            if self.func.return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(ir.Constant(self.func.return_type, 0))
        return self.func

    # --- helpers ----------------------------------------------------------------
    def _bind_local(self, name: str, value: ir.Value) -> None:
        """Introduce a named local holding *value* (parameter binding).

        Address-taken locals need a stack slot; everything else lives as
        a plain SSA value.
        """
        self.ssa.types[name] = value.type
        if name in self.address_taken:
            alloca = self.builder.alloca(value.type, name=name)
            self.allocas[name] = alloca
            self.builder.store(value, alloca, align=alloca.align)
        else:
            self.ssa.write(name, self.builder.block, value)

    def _mangle(self, name: str) -> str:
        """Scope-qualify *name* for the innermost inlined function."""
        if self.inline_stack:
            return self.inline_stack[-1].prefix + name
        return name

    @staticmethod
    def _find_address_taken(body: ast.Block) -> Set[str]:
        taken: Set[str] = set()

        def visit(node) -> None:
            if isinstance(node, ast.Unary) and node.op == "&" and \
                    isinstance(node.operand, ast.Name):
                taken.add(node.operand.ident)
            for field_name in getattr(node, "__dataclass_fields__", {}):
                child = getattr(node, field_name)
                if isinstance(child, list):
                    for item in child:
                        if hasattr(item, "__dataclass_fields__"):
                            visit(item)
                elif hasattr(child, "__dataclass_fields__"):
                    visit(child)

        visit(body)
        return taken

    def _branch_to(self, target: ir.BasicBlock) -> None:
        if not self.terminated:
            self.ssa.add_edge(self.builder.block, target)
            self.builder.br(target)
        self.terminated = False  # caller repositions

    def _cond_branch(self, cond: ir.Value, if_true: ir.BasicBlock,
                     if_false: ir.BasicBlock) -> None:
        self.ssa.add_edge(self.builder.block, if_true)
        self.ssa.add_edge(self.builder.block, if_false)
        self.builder.cbr(cond, if_true, if_false)

    def _to_bool(self, value: ir.Value, line: int) -> ir.Value:
        if value.type == ir.I1:
            return value
        if isinstance(value.type, ir.IntType):
            return self.builder.icmp("ne", value, ir.Constant(value.type, 0))
        if isinstance(value.type, ir.PointerType):
            as_int = self.builder.ptrtoint(value)
            return self.builder.icmp("ne", as_int, self.builder.i64(0))
        raise CompileError(line, "condition is not an integer")

    def _coerce(self, value: ir.Value, ty: ir.Type) -> ir.Value:
        if value.type == ty:
            return value
        if isinstance(value, ir.Constant) and isinstance(ty, ir.IntType):
            return ir.Constant(ty, value.value)
        if isinstance(value.type, ir.IntType) and isinstance(ty, ir.IntType):
            if value.type.bits < ty.bits:
                if value.type == ir.I1:
                    return self.builder.zext(value, ty)
                return self.builder.zext(value, ty)
            return self.builder.trunc(value, ty)
        if isinstance(value.type, ir.PointerType) and isinstance(ty, ir.IntType):
            result = self.builder.ptrtoint(value)
            return self._coerce(result, ty)
        if isinstance(value.type, ir.IntType) and isinstance(ty, ir.PointerType):
            wide = self._coerce(value, ir.I64)
            return self.builder.inttoptr(wide, ty)
        if isinstance(value.type, ir.PointerType) and isinstance(ty, ir.PointerType):
            return self.builder.bitcast(value, ty)
        raise CompileError(0, f"cannot convert {value.type} to {ty}")

    # --- statements ------------------------------------------------------------
    def _block(self, block: ast.Block) -> None:
        for statement in block.statements:
            if self.terminated:
                break  # unreachable code after return/break
            self._statement(statement)

    def _statement(self, stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Break):
            self._break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._continue(stmt)
        else:
            raise CompileError(getattr(stmt, "line", 0),
                               f"unsupported statement {type(stmt).__name__}")

    def _var_decl(self, stmt: ast.VarDecl) -> None:
        ty = _lower_type(stmt.type)
        name = self._mangle(stmt.name)
        if stmt.array_size is not None:
            elem = ty
            array = ir.ArrayType(elem, stmt.array_size)
            # clang gives local buffers at least 8-byte alignment
            align = max(ir.natural_alignment(array), 8)
            alloca = self.builder.alloca(array, align=align, name=name)
            self.allocas[name] = alloca
            self.ssa.types[name] = ir.pointer(elem)
            self.ssa.write(name, self.builder.block,
                           self.builder.bitcast(alloca, ir.pointer(elem)))
            return
        self.ssa.types[name] = ty
        if name in self.address_taken:
            alloca = self.builder.alloca(ty, name=name)
            self.allocas[name] = alloca
        if stmt.init is not None:
            value = self._coerce(self._expr(stmt.init), ty)
        else:
            value = ir.Constant(ty, 0) if isinstance(ty, ir.IntType) else None
        if name in self.allocas and not isinstance(
                self.allocas[name].allocated, ir.ArrayType):
            if value is not None:
                self.builder.store(value, self.allocas[name],
                                   align=self.allocas[name].align)
        elif value is not None:
            self.ssa.write(name, self.builder.block, value)

    def _if(self, stmt: ast.If) -> None:
        cond = self._to_bool(self._expr(stmt.cond), stmt.line)
        then_block = self.func.add_block("if.then")
        merge_block = self.func.add_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self.func.add_block("if.else")
        self._cond_branch(cond, then_block, else_block)
        self.ssa.seal(then_block)
        if stmt.otherwise is not None:
            self.ssa.seal(else_block)

        self.builder.position_at_end(then_block)
        self._statement(stmt.then)
        then_done = self.terminated
        self._branch_to(merge_block)

        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self.terminated = False
            self._statement(stmt.otherwise)
            self._branch_to(merge_block)
        self.ssa.seal(merge_block)
        self.builder.position_at_end(merge_block)
        self.terminated = False
        if not self.ssa.preds.get(merge_block):
            # both arms returned: merge block is unreachable
            self.builder.unreachable()
            self.terminated = True

    def _while(self, stmt: ast.While) -> None:
        header = self.func.add_block("while.cond")
        body = self.func.add_block("while.body")
        exit_block = self.func.add_block("while.end")
        self._branch_to(header)
        self.builder.position_at_end(header)
        cond = self._to_bool(self._expr(stmt.cond), stmt.line)
        self._cond_branch(cond, body, exit_block)
        self.ssa.seal(body)

        self.builder.position_at_end(body)
        self.loop_stack.append((header, exit_block))
        self._statement(stmt.body)
        self.loop_stack.pop()
        self._branch_to(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_block)
        self.builder.position_at_end(exit_block)
        self.terminated = False

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._statement(stmt.init)
        header = self.func.add_block("for.cond")
        body = self.func.add_block("for.body")
        step_block = self.func.add_block("for.step")
        exit_block = self.func.add_block("for.end")
        self._branch_to(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            cond = self._to_bool(self._expr(stmt.cond), stmt.line)
            self._cond_branch(cond, body, exit_block)
        else:
            self.ssa.add_edge(self.builder.block, body)
            self.builder.br(body)
        self.ssa.seal(body)

        self.builder.position_at_end(body)
        self.loop_stack.append((step_block, exit_block))
        self._statement(stmt.body)
        self.loop_stack.pop()
        self._branch_to(step_block)
        self.ssa.seal(step_block)
        self.builder.position_at_end(step_block)
        self.terminated = False
        if stmt.step is not None:
            self._statement(stmt.step)
        self._branch_to(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_block)
        self.builder.position_at_end(exit_block)
        self.terminated = False

    def _return(self, stmt: ast.Return) -> None:
        if self.inline_stack:
            self._inline_return(stmt)
            return
        if self.func.return_type.is_void:
            self.builder.ret()
        else:
            if stmt.value is None:
                raise CompileError(stmt.line, "return needs a value")
            value = self._coerce(self._expr(stmt.value), self.func.return_type)
            self.builder.ret(value)
        self.terminated = True

    def _inline_return(self, stmt: ast.Return) -> None:
        """A return inside an inlined function: record the result and
        branch to the call's continuation block."""
        frame = self.inline_stack[-1]
        ret_ty = _lower_type(frame.func_def.return_type)
        if frame.result_var is not None:
            if stmt.value is None:
                raise CompileError(stmt.line, "return needs a value")
            value = self._coerce(self._expr(stmt.value), ret_ty)
            self.ssa.write(frame.result_var, self.builder.block, value)
        self.ssa.add_edge(self.builder.block, frame.continuation)
        self.builder.br(frame.continuation)
        self.terminated = True

    def _break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise CompileError(stmt.line, "break outside loop")
        _, exit_block = self.loop_stack[-1]
        self.ssa.add_edge(self.builder.block, exit_block)
        self.builder.br(exit_block)
        self.terminated = True

    def _continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:
            raise CompileError(stmt.line, "continue outside loop")
        target, _ = self.loop_stack[-1]
        self.ssa.add_edge(self.builder.block, target)
        self.builder.br(target)
        self.terminated = True

    # --- expressions ---------------------------------------------------------------
    def _expr(self, expr) -> ir.Value:
        if isinstance(expr, ast.Number):
            return ir.Constant(ir.I64, expr.value)
        if isinstance(expr, ast.Name):
            return self._name_value(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, ast.Index):
            ptr, align = self._index_ptr(expr)
            return self.builder.load(ptr, align=align)
        if isinstance(expr, ast.Member):
            return self._member(expr)
        if isinstance(expr, ast.Conditional):
            cond = self._to_bool(self._expr(expr.cond), expr.line)
            t = self._expr(expr.if_true)
            f = self._expr(expr.if_false)
            t, f = self._promote_pair(t, f)
            return self.builder.select(cond, t, f)
        raise CompileError(getattr(expr, "line", 0),
                           f"unsupported expression {type(expr).__name__}")

    def _name_value(self, expr: ast.Name) -> ir.Value:
        name = self._mangle(expr.ident)
        if name not in self.ssa.types and expr.ident in self.consts:
            return ir.Constant(ir.I64, self.consts[expr.ident])
        if expr.ident in self.module.maps:
            raise CompileError(expr.line,
                               "maps may only be used as builtin arguments")
        if name in self.allocas:
            alloca = self.allocas[name]
            if isinstance(alloca.allocated, ir.ArrayType):
                return self.ssa.read(name, self.builder.block, expr.line)
            return self.builder.load(alloca, align=alloca.align)
        return self.ssa.read(name, self.builder.block, expr.line)

    def _unary(self, expr: ast.Unary) -> ir.Value:
        if expr.op == "&":
            if isinstance(expr.operand, ast.Name) and \
                    self._mangle(expr.operand.ident) in self.allocas:
                return self.allocas[self._mangle(expr.operand.ident)]
            raise CompileError(expr.line, "can only take address of a local")
        if expr.op == "*":
            ptr, align = self._deref_ptr(expr.operand, expr.line)
            return self.builder.load(ptr, align=align)
        value = self._expr(expr.operand)
        if expr.op == "-":
            zero = ir.Constant(value.type, 0)
            return self.builder.sub(zero, value)
        if expr.op == "~":
            ones = ir.Constant(value.type, value.type.mask)
            return self.builder.xor(value, ones)
        if expr.op == "!":
            as_bool = self._to_bool(value, expr.line)
            return self.builder.xor(as_bool, ir.Constant(ir.I1, 1))
        raise CompileError(expr.line, f"unsupported unary {expr.op!r}")

    def _deref_ptr(self, operand, line: int) -> Tuple[ir.Value, int]:
        """Pointer + the alignment clang would assert for this deref.

        clang trusts the static type of a *typed* pointer expression
        (``u64* v; *v`` is an align-8 access).  Only accesses through a
        cast — ``*(u32*)(data + off)``, the packed-struct / raw-offset
        idiom eBPF code is full of — are asserted ``align 1``, and those
        are exactly what Merlin's DAO pass recovers.
        """
        value = self._expr(operand)
        if not isinstance(value.type, ir.PointerType):
            raise CompileError(line, f"cannot dereference {value.type}")
        if isinstance(operand, ast.Unary) and operand.op == "&" and \
                isinstance(operand.operand, ast.Name):
            alloca = self.allocas.get(operand.operand.ident)
            if alloca is not None:
                return value, alloca.align
        if self._contains_cast(operand):
            return value, 1
        return value, ir.natural_alignment(value.type.pointee)

    @staticmethod
    def _contains_cast(operand) -> bool:
        node = operand
        while True:
            if isinstance(node, ast.Cast):
                return True
            if isinstance(node, ast.Binary):
                node = node.lhs
                continue
            return False

    def _binary(self, expr: ast.Binary) -> ir.Value:
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        lhs = self._expr(expr.lhs)
        rhs = self._expr(expr.rhs)
        cmp_ops = {"==": "eq", "!=": "ne", "<": "ult", ">": "ugt",
                   "<=": "ule", ">=": "uge"}
        if expr.op in cmp_ops:
            lhs, rhs = self._promote_pair(lhs, rhs)
            if isinstance(lhs.type, ir.PointerType):
                lhs = self.builder.ptrtoint(lhs)
                rhs = self.builder.ptrtoint(rhs) if isinstance(
                    rhs.type, ir.PointerType) else self._coerce(rhs, ir.I64)
            if isinstance(rhs.type, ir.PointerType):
                rhs = self.builder.ptrtoint(rhs)
                lhs = self._coerce(lhs, ir.I64)
            return self.builder.icmp(cmp_ops[expr.op], lhs, rhs)
        # pointer arithmetic: ptr + int scales by element size
        if isinstance(lhs.type, ir.PointerType) and expr.op in ("+", "-"):
            return self._pointer_offset(lhs, rhs, expr.op)
        arith = {"+": "add", "-": "sub", "*": "mul", "/": "udiv",
                 "%": "urem", "&": "and", "|": "or", "^": "xor",
                 "<<": "shl", ">>": "lshr"}
        if expr.op not in arith:
            raise CompileError(expr.line, f"unsupported operator {expr.op!r}")
        lhs, rhs = self._promote_pair(lhs, rhs)
        return self.builder.binop(arith[expr.op], lhs, rhs)

    def _pointer_offset(self, ptr: ir.Value, offset: ir.Value,
                        op: str) -> ir.Value:
        elem = ptr.type.pointee
        scale = max(elem.size_bytes, 1)
        if isinstance(offset, ir.Constant):
            delta = offset.signed * scale
            if op == "-":
                delta = -delta
            return self.builder.gep_const(ptr, delta, elem)
        wide = self._coerce(offset, ir.I64)
        if scale != 1:
            wide = self.builder.mul(wide, self.builder.i64(scale))
        if op == "-":
            wide = self.builder.sub(self.builder.i64(0), wide)
        return self.builder.gep(ptr, wide, elem)

    def _short_circuit(self, expr: ast.Binary) -> ir.Value:
        lhs = self._to_bool(self._expr(expr.lhs), expr.line)
        rhs_block = self.func.add_block("sc.rhs")
        merge = self.func.add_block("sc.end")
        lhs_block = self.builder.block
        if expr.op == "&&":
            self._cond_branch(lhs, rhs_block, merge)
        else:
            self._cond_branch(lhs, merge, rhs_block)
        self.ssa.seal(rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs = self._to_bool(self._expr(expr.rhs), expr.line)
        rhs_end = self.builder.block
        self.ssa.add_edge(rhs_end, merge)
        self.builder.br(merge)
        self.ssa.seal(merge)
        self.builder.position_at_end(merge)
        phi = iri.Phi(ir.I1, self.func.next_name())
        merge.insert(0, phi)
        short_value = ir.Constant(ir.I1, 0 if expr.op == "&&" else 1)
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_end)
        return phi

    def _promote_pair(self, lhs: ir.Value,
                      rhs: ir.Value) -> Tuple[ir.Value, ir.Value]:
        if lhs.type == rhs.type:
            return lhs, rhs
        if isinstance(lhs.type, ir.PointerType) or isinstance(
                rhs.type, ir.PointerType):
            return lhs, rhs
        # constants adapt to the other operand's type
        if isinstance(lhs, ir.Constant) and isinstance(rhs.type, ir.IntType):
            return ir.Constant(rhs.type, lhs.value), rhs
        if isinstance(rhs, ir.Constant) and isinstance(lhs.type, ir.IntType):
            return lhs, ir.Constant(lhs.type, rhs.value)
        if lhs.type.bits < rhs.type.bits:  # type: ignore[union-attr]
            return self.builder.zext(lhs, rhs.type), rhs
        return lhs, self.builder.zext(rhs, lhs.type)

    # --- lvalues --------------------------------------------------------------
    def _assign(self, expr: ast.Assign) -> ir.Value:
        target = expr.target
        if isinstance(target, ast.Name):
            return self._assign_name(expr, target)
        if isinstance(target, ast.Unary) and target.op == "*":
            ptr, align = self._deref_ptr(target.operand, expr.line)
            return self._assign_mem(expr, ptr, align)
        if isinstance(target, ast.Index):
            ptr, align = self._index_ptr(target)
            return self._assign_mem(expr, ptr, align)
        raise CompileError(expr.line, "invalid assignment target")

    def _assign_name(self, expr: ast.Assign, target: ast.Name) -> ir.Value:
        name = self._mangle(target.ident)
        ty = self.ssa.types.get(name)
        if ty is None:
            raise CompileError(expr.line,
                               f"assignment to undeclared {target.ident!r}")
        if name in self.allocas and not isinstance(
                self.allocas[name].allocated, ir.ArrayType):
            alloca = self.allocas[name]
            value = self._rmw_value(expr, lambda: self.builder.load(
                alloca, align=alloca.align), ty)
            self.builder.store(value, alloca, align=alloca.align)
            return value
        value = self._rmw_value(
            expr,
            lambda: self.ssa.read(name, self.builder.block, expr.line),
            ty,
        )
        self.ssa.write(name, self.builder.block, value)
        return value

    def _assign_mem(self, expr: ast.Assign, ptr: ir.Value,
                    align: int) -> ir.Value:
        ty = ptr.type.pointee
        if not isinstance(ty, ir.IntType):
            raise CompileError(expr.line, "can only store integers")
        value = self._rmw_value(
            expr, lambda: self.builder.load(ptr, align=align), ty
        )
        self.builder.store(value, ptr, align=align)
        return value

    def _rmw_value(self, expr: ast.Assign, read_old, ty: ir.Type) -> ir.Value:
        value = self._coerce(self._expr(expr.value), ty)
        if expr.op == "=":
            return value
        ops = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "udiv",
               "%=": "urem", "&=": "and", "|=": "or", "^=": "xor",
               "<<=": "shl", ">>=": "lshr"}
        old = read_old()
        return self.builder.binop(ops[expr.op], old, value)

    def _cast(self, expr: ast.Cast) -> ir.Value:
        target = _lower_type(expr.type)
        value = self._expr(expr.value)
        if target.is_void:
            raise CompileError(expr.line, "cannot cast to void")
        return self._coerce(value, target)

    def _index_ptr(self, expr: ast.Index) -> Tuple[ir.Value, int]:
        base = self._expr(expr.base)
        if not isinstance(base.type, ir.PointerType):
            raise CompileError(expr.line, "subscript of non-pointer")
        index = self._expr(expr.index)
        elem = base.type.pointee
        ptr = self._pointer_offset(base, index, "+")
        # element access through an arbitrary pointer: align 1
        align = 1
        if isinstance(expr.base, ast.Name) and \
                self._mangle(expr.base.ident) in self.allocas:
            alloca = self.allocas[self._mangle(expr.base.ident)]
            align = min(alloca.align, max(elem.size_bytes, 1))
        return ptr, align

    def _member(self, expr: ast.Member) -> ir.Value:
        base = self._expr(expr.base)
        if not isinstance(base.type, ir.PointerType):
            raise CompileError(expr.line, "-> on non-pointer")
        field = XDP_FIELDS.get(expr.name)
        if field is None:
            raise CompileError(expr.line, f"unknown field {expr.name!r}")
        offset, ty, align = field
        ptr = self.builder.gep_const(base, offset, ty)
        return self.builder.load(ptr, align=align)

    # --- calls -----------------------------------------------------------------
    _CTX_LOADS = {
        "ctx_load_u8": ir.I8,
        "ctx_load_u16": ir.I16,
        "ctx_load_u32": ir.I32,
        "ctx_load_u64": ir.I64,
    }

    def _call(self, expr: ast.Call) -> ir.Value:
        if expr.callee in self._CTX_LOADS:
            return self._ctx_load(expr)
        if expr.callee in self.user_functions:
            return self._inline_call(expr)
        builtin = BUILTINS.get(expr.callee)
        if builtin is None:
            raise CompileError(expr.line, f"unknown function {expr.callee!r}")
        helper, return_type = builtin
        args: List[ir.Value] = []
        value_type: ir.Type = ir.I64
        for i, arg in enumerate(expr.args):
            if isinstance(arg, ast.Name) and arg.ident in self.module.maps:
                if i == 0 and helper.startswith("map_"):
                    spec = self.module.maps[arg.ident]
                    value_type = ir.int_type(min(spec.value_size, 8) * 8) \
                        if spec.value_size in (1, 2, 4, 8) else ir.I8
                args.append(ir.GlobalSymbol(ir.pointer(ir.I8), arg.ident))
                continue
            args.append(self._expr(arg))
        if return_type == "map_value":
            result_ty: ir.Type = ir.pointer(value_type)
        else:
            result_ty = return_type
        return self.builder.call(helper, args, result_ty)

    def _inline_call(self, expr: ast.Call) -> ir.Value:
        """Inline a program-local function at the call site.

        eBPF's call instruction only reaches helpers; local functions
        are compiled into the caller, exactly how clang handles
        ``static __always_inline`` eBPF code.
        """
        callee = self.user_functions[expr.callee]
        if len(self.inline_stack) >= self.MAX_INLINE_DEPTH:
            raise CompileError(expr.line, "inlining too deep (recursion?)")
        if any(f.func_def.name == callee.name for f in self.inline_stack) or \
                callee.name == self.func_def.name:
            raise CompileError(
                expr.line, f"recursive call to {callee.name!r} "
                "(eBPF forbids recursion)"
            )
        if len(expr.args) != len(callee.params):
            raise CompileError(
                expr.line, f"{callee.name}() takes {len(callee.params)} "
                f"arguments, got {len(expr.args)}"
            )
        self._inline_counter += 1
        prefix = f"__{callee.name}{self._inline_counter}."

        # evaluate arguments in the caller's scope, bind in the callee's
        bound = []
        for param, arg in zip(callee.params, expr.args):
            value = self._coerce(self._expr(arg), _lower_type(param.type))
            bound.append((prefix + param.name, value))
        for taken in self._find_address_taken(callee.body):
            self.address_taken.add(prefix + taken)

        ret_ty = _lower_type(callee.return_type)
        continuation = self.func.add_block(f"{callee.name}.ret")
        result_var = None if ret_ty.is_void else prefix + "__ret"
        frame = _InlineFrame(callee, prefix, continuation, result_var)
        self.inline_stack.append(frame)
        for name, value in bound:
            self._bind_local(name, value)
        if result_var is not None:
            self.ssa.types[result_var] = ret_ty

        self._block(callee.body)
        if not self.terminated:
            # fall off the end: a void return (or zero for integers)
            if result_var is not None:
                self.ssa.write(result_var, self.builder.block,
                               ir.Constant(ret_ty, 0))
            self.ssa.add_edge(self.builder.block, continuation)
            self.builder.br(continuation)
        self.inline_stack.pop()
        self.ssa.seal(continuation)
        self.builder.position_at_end(continuation)
        self.terminated = False
        if result_var is None:
            return ir.Constant(ir.I64, 0)
        return self.ssa.read(result_var, continuation, expr.line)

    def _ctx_load(self, expr: ast.Call) -> ir.Value:
        """``ctx_load_uN(ptr, off)``: a load at a *known-layout* struct
        field — clang asserts the natural alignment, so the backend
        emits a single access even without Merlin."""
        if len(expr.args) != 2 or not isinstance(expr.args[1], ast.Number):
            raise CompileError(expr.line,
                               f"{expr.callee} takes (pointer, const-offset)")
        base = self._expr(expr.args[0])
        if not isinstance(base.type, ir.PointerType):
            raise CompileError(expr.line, f"{expr.callee} needs a pointer")
        ty = self._CTX_LOADS[expr.callee]
        offset = expr.args[1].value
        ptr = self.builder.gep_const(base, offset, ty)
        return self.builder.load(ptr, align=ty.size_bytes)


def compile_source(source: str, module_name: str = "module") -> ir.Module:
    """Parse and lower mini-C *source* into an IR module."""
    program = parse(source)
    module = ir.Module(module_name)
    for map_decl in program.maps:
        key_size = _lower_type(map_decl.key_type).size_bytes
        value_size = _lower_type(map_decl.value_type).size_bytes
        module.maps[map_decl.name] = MapSpec(
            name=map_decl.name,
            map_type=map_decl.kind,
            key_size=key_size,
            value_size=value_size,
            max_entries=map_decl.max_entries,
        )
    consts = {c.name: c.value for c in program.consts}
    user_functions = {f.name: f for f in program.functions}
    for func_def in program.functions:
        compiler = FunctionCompiler(module, consts, func_def, user_functions)
        module.add_function(compiler.compile())
    return module
