"""Recursive-descent parser for the mini-C eBPF language.

Grammar sketch::

    program   := (mapdecl | constdecl | funcdef)*
    mapdecl   := "map" kind NAME "(" type "," type "," expr ")" ";"
    constdecl := "const" NAME "=" expr ";"
    funcdef   := type NAME "(" params? ")" block
    stmt      := vardecl | if | while | for | return | break | continue
               | block | expr ";"
    expr      := assignment with the usual C precedence levels

Casts are written ``(u32*)expr`` or ``(u64)expr``; dereference of a cast
pointer (``*(u16*)(data + 12)``) is the idiomatic packet access.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .lexer import Token, tokenize

_TYPE_NAMES = {"u8", "u16", "u32", "u64", "void"}

# precedence climbing table: op -> (precedence, right_assoc)
_BINARY_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
               ">>="}


class ParseError(SyntaxError):
    def __init__(self, token: Token, message: str):
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # --- plumbing ------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            expected = text if text is not None else kind
            raise ParseError(self.current, f"expected {expected!r}")
        return token

    # --- top level -------------------------------------------------------------
    def parse(self) -> ast.Program:
        program = ast.Program(line=1)
        while self.current.kind != "eof":
            if self.current.kind == "kw" and self.current.text == "map":
                program.maps.append(self._map_decl())
            elif self.current.kind == "kw" and self.current.text == "const":
                program.consts.append(self._const_decl())
            else:
                program.functions.append(self._func_def())
        return program

    def _map_decl(self) -> ast.MapDecl:
        line = self.expect("kw", "map").line
        kind = self.expect("name").text
        if kind not in ("array", "hash", "percpu_array", "lru_hash"):
            raise ParseError(self.current, f"unknown map kind {kind!r}")
        name = self.expect("name").text
        self.expect("punct", "(")
        key_type = self._type()
        self.expect("punct", ",")
        value_type = self._type()
        self.expect("punct", ",")
        entries = self._const_int()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return ast.MapDecl(line=line, kind=kind, name=name, key_type=key_type,
                           value_type=value_type, max_entries=entries)

    def _const_decl(self) -> ast.ConstDecl:
        line = self.expect("kw", "const").line
        name = self.expect("name").text
        self.expect("punct", "=")
        value = self._const_int()
        self.expect("punct", ";")
        return ast.ConstDecl(line=line, name=name, value=value)

    def _const_int(self) -> int:
        negative = bool(self.accept("punct", "-"))
        token = self.expect("num")
        value = int(token.text, 0)
        return -value if negative else value

    def _func_def(self) -> ast.FuncDef:
        return_type = self._type()
        name = self.expect("name").text
        self.expect("punct", "(")
        params: List[ast.Param] = []
        if not self.accept("punct", ")"):
            while True:
                ptype = self._type()
                pname = self.expect("name").text
                params.append(ast.Param(type=ptype, name=pname))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        body = self._block()
        return ast.FuncDef(return_type=return_type, name=name, params=params,
                           body=body)

    # --- types ---------------------------------------------------------------
    def _looks_like_type(self) -> bool:
        return self.current.kind == "kw" and self.current.text in _TYPE_NAMES

    def _type(self) -> ast.TypeName:
        token = self.expect("kw")
        if token.text not in _TYPE_NAMES:
            raise ParseError(token, f"expected a type, got {token.text!r}")
        depth = 0
        while self.accept("punct", "*"):
            depth += 1
        return ast.TypeName(line=token.line, base=token.text,
                            pointer_depth=depth)

    # --- statements -------------------------------------------------------------
    def _block(self) -> ast.Block:
        line = self.expect("punct", "{").line
        statements: List[object] = []
        while not self.accept("punct", "}"):
            statements.append(self._statement())
        return ast.Block(line=line, statements=statements)

    def _statement(self):
        token = self.current
        if token.kind == "punct" and token.text == "{":
            return self._block()
        if token.kind == "kw":
            if token.text in _TYPE_NAMES:
                return self._var_decl()
            if token.text == "if":
                return self._if()
            if token.text == "while":
                return self._while()
            if token.text == "for":
                return self._for()
            if token.text == "return":
                self.advance()
                value = None
                if not (self.current.kind == "punct" and self.current.text == ";"):
                    value = self._expression()
                self.expect("punct", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self.advance()
                self.expect("punct", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("punct", ";")
                return ast.Continue(line=token.line)
        expr = self._expression()
        self.expect("punct", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _var_decl(self) -> ast.VarDecl:
        vtype = self._type()
        name = self.expect("name").text
        array_size = None
        if self.accept("punct", "["):
            array_size = self._const_int()
            self.expect("punct", "]")
        init = None
        if self.accept("punct", "="):
            init = self._expression()
        self.expect("punct", ";")
        return ast.VarDecl(line=vtype.line, type=vtype, name=name, init=init,
                           array_size=array_size)

    def _if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("punct", "(")
        cond = self._expression()
        self.expect("punct", ")")
        then = self._statement()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self._statement()
        return ast.If(line=line, cond=cond, then=then, otherwise=otherwise)

    def _while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("punct", "(")
        cond = self._expression()
        self.expect("punct", ")")
        body = self._statement()
        return ast.While(line=line, cond=cond, body=body)

    def _for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("punct", "(")
        init = None
        if not (self.current.kind == "punct" and self.current.text == ";"):
            if self._looks_like_type():
                init = self._var_decl()  # consumes the ';'
            else:
                init = ast.ExprStmt(line=line, expr=self._expression())
                self.expect("punct", ";")
        else:
            self.expect("punct", ";")
        cond = None
        if not (self.current.kind == "punct" and self.current.text == ";"):
            cond = self._expression()
        self.expect("punct", ";")
        step = None
        if not (self.current.kind == "punct" and self.current.text == ")"):
            step = ast.ExprStmt(line=line, expr=self._expression())
        self.expect("punct", ")")
        body = self._statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    # --- expressions -------------------------------------------------------------
    def _expression(self):
        return self._assignment()

    def _assignment(self):
        lhs = self._conditional()
        token = self.current
        if token.kind == "punct" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self._assignment()
            return ast.Assign(line=token.line, op=token.text, target=lhs,
                              value=value)
        return lhs

    def _conditional(self):
        cond = self._binary(0)
        if self.accept("punct", "?"):
            if_true = self._expression()
            self.expect("punct", ":")
            if_false = self._conditional()
            return ast.Conditional(line=cond.line, cond=cond, if_true=if_true,
                                   if_false=if_false)
        return cond

    def _binary(self, min_prec: int):
        lhs = self._unary()
        while True:
            token = self.current
            prec = _BINARY_PREC.get(token.text) if token.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self._binary(prec + 1)
            lhs = ast.Binary(line=token.line, op=token.text, lhs=lhs, rhs=rhs)

    def _unary(self):
        token = self.current
        if token.kind == "punct" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "punct" and token.text in ("++", "--"):
            self.advance()
            target = self._unary()
            one = ast.Number(line=token.line, value=1)
            return ast.Assign(line=token.line,
                              op="+=" if token.text == "++" else "-=",
                              target=target, value=one)
        # cast: '(' type ')' unary
        if token.kind == "punct" and token.text == "(" and \
                self.peek().kind == "kw" and self.peek().text in _TYPE_NAMES:
            self.advance()
            ctype = self._type()
            self.expect("punct", ")")
            value = self._unary()
            return ast.Cast(line=token.line, type=ctype, value=value)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            if self.accept("punct", "["):
                index = self._expression()
                self.expect("punct", "]")
                expr = ast.Index(line=getattr(expr, "line", 0), base=expr,
                                 index=index)
            elif self.accept("punct", "->"):
                name = self.expect("name").text
                expr = ast.Member(line=getattr(expr, "line", 0), base=expr,
                                  name=name, arrow=True)
            elif self.current.kind == "punct" and self.current.text in ("++", "--"):
                token = self.advance()
                one = ast.Number(line=token.line, value=1)
                expr = ast.Assign(line=token.line,
                                  op="+=" if token.text == "++" else "-=",
                                  target=expr, value=one)
            else:
                return expr

    def _primary(self):
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Number(line=token.line, value=int(token.text, 0))
        if token.kind == "name":
            self.advance()
            if self.accept("punct", "("):
                args: List[object] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept("punct", ","):
                            break
                    self.expect("punct", ")")
                return ast.Call(line=token.line, callee=token.text, args=args)
            return ast.Name(line=token.line, ident=token.text)
        if token.kind == "kw" and token.text == "sizeof":
            self.advance()
            self.expect("punct", "(")
            stype = self._type()
            self.expect("punct", ")")
            sizes = {"u8": 1, "u16": 2, "u32": 4, "u64": 8, "void": 0}
            size = 8 if stype.pointer_depth else sizes[stype.base]
            return ast.Number(line=token.line, value=size)
        if token.kind == "punct" and token.text == "(":
            self.advance()
            expr = self._expression()
            self.expect("punct", ")")
            return expr
        raise ParseError(token, "expected an expression")


def parse(source: str) -> ast.Program:
    return Parser(source).parse()
