"""AST node definitions for the mini-C eBPF language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0


# --- types (syntactic) ----------------------------------------------------
@dataclass
class TypeName(Node):
    base: str = "u64"  # u8/u16/u32/u64/void
    pointer_depth: int = 0

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


# --- expressions -------------------------------------------------------------
@dataclass
class Number(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class Unary(Node):
    op: str = ""  # "-", "!", "~", "*" (deref), "&" (address-of)
    operand: "Expr" = None


@dataclass
class Binary(Node):
    op: str = ""
    lhs: "Expr" = None
    rhs: "Expr" = None


@dataclass
class Assign(Node):
    op: str = "="  # "=", "+=", ...
    target: "Expr" = None  # Name, Unary("*"), Index, Member
    value: "Expr" = None


@dataclass
class Call(Node):
    callee: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Cast(Node):
    type: TypeName = None
    value: "Expr" = None


@dataclass
class Index(Node):
    base: "Expr" = None
    index: "Expr" = None


@dataclass
class Member(Node):
    base: "Expr" = None
    name: str = ""
    arrow: bool = True


@dataclass
class Conditional(Node):
    cond: "Expr" = None
    if_true: "Expr" = None
    if_false: "Expr" = None


Expr = object  # union of the expression classes above


# --- statements -------------------------------------------------------------
@dataclass
class VarDecl(Node):
    type: TypeName = None
    name: str = ""
    init: Optional[Expr] = None
    array_size: Optional[int] = None


@dataclass
class ExprStmt(Node):
    expr: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then: "Stmt" = None
    otherwise: Optional["Stmt"] = None


@dataclass
class While(Node):
    cond: Expr = None
    body: "Stmt" = None


@dataclass
class For(Node):
    init: Optional["Stmt"] = None
    cond: Optional[Expr] = None
    step: Optional["Stmt"] = None
    body: "Stmt" = None


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Block(Node):
    statements: List["Stmt"] = field(default_factory=list)


Stmt = object


# --- top level -----------------------------------------------------------------
@dataclass
class Param(Node):
    type: TypeName = None
    name: str = ""


@dataclass
class FuncDef(Node):
    return_type: TypeName = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class MapDecl(Node):
    kind: str = "array"  # array/hash/percpu_array/lru_hash
    name: str = ""
    key_type: TypeName = None
    value_type: TypeName = None
    max_entries: int = 1


@dataclass
class ConstDecl(Node):
    name: str = ""
    value: int = 0


@dataclass
class Program(Node):
    maps: List[MapDecl] = field(default_factory=list)
    consts: List[ConstDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
