"""Lexer for the mini-C eBPF source language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "u8", "u16", "u32", "u64", "void",
    "if", "else", "while", "for", "return", "break", "continue",
    "map", "const", "struct", "sizeof",
}

# longest-first so "<<=" wins over "<<" and "<"
PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "->", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in PUNCTUATION) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(SyntaxError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "name" | "kw" | "punct" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        text = match.group(0)
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
        elif kind == "num":
            tokens.append(Token("num", text, line))
        elif kind == "name":
            if text in KEYWORDS:
                tokens.append(Token("kw", text, line))
            else:
                tokens.append(Token("name", text, line))
        elif kind == "punct":
            tokens.append(Token("punct", text, line))
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
