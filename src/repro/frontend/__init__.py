"""Mini-C frontend: the reproduction's ``clang``."""

from .ast_nodes import Program
from .codegen import ACTION_CONSTS, BUILTINS, CompileError, compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, parse

__all__ = [
    "Program",
    "ACTION_CONSTS",
    "BUILTINS",
    "CompileError",
    "compile_source",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "Parser",
    "parse",
]
