"""repro.cache — content-addressed compilation caching.

Keys digest the canonical IR text plus the full pipeline configuration
(enabled passes, kernel config, mcpu, program type, ctx size), so two
textually identical functions compiled the same way share one entry —
and *any* configuration change is automatically a different key (the
invalidation rule: there is none, keys are immutable facts).

::

    from repro.cache import CompilationCache

    cache = CompilationCache(directory=".merlin-cache")
    program, report = pipeline.compile(func, module, cache=cache)
    print(cache.stats.hit_rate)
"""

from .keys import (
    SCHEMA_VERSION,
    canonical_text,
    compose_key,
    kernel_fingerprint,
    key_for_bytecode,
    key_for_function,
)
from .store import CacheStats, CompilationCache

__all__ = [
    "SCHEMA_VERSION",
    "canonical_text",
    "compose_key",
    "kernel_fingerprint",
    "key_for_bytecode",
    "key_for_function",
    "CacheStats",
    "CompilationCache",
]
