"""The compilation cache: an in-memory LRU layer over an optional
on-disk content-addressed store.

Entries are stored *pickled* even in memory: every ``get`` deserializes
a private copy, so callers can freely mutate the returned program (the
bytecode passes rewrite in place) without corrupting the cache — the
same property the disk layer gets for free.  Deserializing is orders of
magnitude cheaper than recompiling, which is the whole point.

The disk layout is ``<dir>/<digest[:2]>/<digest>.pkl`` (git-style
sharding keeps directories small at fleet scale); writes go through a
temp file + ``os.replace`` so concurrent writers — e.g. the parallel
batch compiler's worker processes — can never expose a torn entry.

Fleet-sized stores need a retention policy too: ``ttl_seconds`` expires
entries that have not been *touched* (written or read) for that long,
and ``max_disk_bytes`` bounds the tree with an LRU :meth:`sweep` (disk
hits touch the entry's mtime, so mtime order is access order).  Both
removal paths go through an atomic tombstone — ``os.replace`` the entry
to a ``.tomb-*`` name, then unlink — so exactly one of N racing
evictors claims each entry (the loser's rename raises) and counters
never double-count.  A reader that already opened the file keeps its
fd across the unlink (POSIX), so eviction can never tear an in-flight
read; a reader that arrives after the rename sees a plain miss and
recompiles.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .. import ir
from ..core.pipeline import MerlinReport
from ..isa import BpfProgram, ProgramType
from ..verifier import KernelConfig
from . import keys as _keys


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, mergeable across worker processes.

    ``write_errors``/``read_errors`` count disk-layer I/O failures the
    cache absorbed (permission loss, the directory replaced, torn
    bytes): the store degrades to memory-only behavior instead of
    propagating them, and a long-running service surfaces the counters
    through its stats endpoint.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0        # memory-LRU overflow
    memory_hits: int = 0
    disk_hits: int = 0
    write_errors: int = 0
    read_errors: int = 0
    expired: int = 0          # TTL removals (memory or disk)
    disk_evictions: int = 0   # size-budget sweep removals

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.write_errors += other.write_errors
        self.read_errors += other.read_errors
        self.expired += other.expired
        self.disk_evictions += other.disk_evictions

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "write_errors": self.write_errors,
            "read_errors": self.read_errors,
            "expired": self.expired,
            "disk_evictions": self.disk_evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompilationCache:
    """Content-addressed cache of ``(BpfProgram, MerlinReport)`` pairs.

    ``max_memory_entries`` bounds the LRU layer; overflow evicts the
    least-recently-used entry (still recoverable from disk when a
    ``directory`` is configured).  ``directory=None`` keeps the cache
    purely in-memory.

    ``ttl_seconds`` is an *idle* TTL: an entry untouched (no store, no
    hit) for that long is expired on next sight — lazily at lookup and
    eagerly by :meth:`sweep`.  ``max_disk_bytes`` is the disk-tree size
    budget :meth:`sweep` enforces LRU-first; neither bound is enforced
    unless set, keeping the PR-2 behavior for existing callers.
    """

    #: consecutive disk-write failures before the store stops trying —
    #: a filesystem gone read-only (EROFS, quota, revoked mount) fails
    #: every subsequent write, and probing it forever just burns a
    #: syscall + an exception per ``put``
    WRITE_DEGRADE_AFTER = 3

    def __init__(self, directory: Optional[str] = None,
                 max_memory_entries: int = 1024,
                 ttl_seconds: Optional[float] = None,
                 max_disk_bytes: Optional[int] = None):
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_disk_bytes is not None and max_disk_bytes < 0:
            raise ValueError("max_disk_bytes must be >= 0")
        self.directory = directory
        self.max_memory_entries = max_memory_entries
        self.ttl_seconds = ttl_seconds
        self.max_disk_bytes = max_disk_bytes
        #: memory layer holds (blob, last-touched wall-clock timestamp)
        self._memory: "OrderedDict[str, Tuple[bytes, float]]" = OrderedDict()
        self._consecutive_write_errors = 0
        self._write_degraded = False
        self.stats = CacheStats()
        if directory is not None:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError:
                # directory unusable from the start (read-only parent):
                # run memory-only rather than refusing to start
                self.stats.write_errors += 1
                self._write_degraded = True

    # ------------------------------------------------------------- keys
    def key_for_function(self, func: ir.Function,
                         module: Optional[ir.Module] = None, *,
                         enabled: FrozenSet[str], kernel: KernelConfig,
                         prog_type: ProgramType = ProgramType.XDP,
                         mcpu: str = "v2", ctx_size: int = 64,
                         verify_after: bool = False,
                         validate: bool = False,
                         pgo: Optional[str] = None,
                         superopt: Optional[str] = None) -> str:
        return _keys.key_for_function(
            func, module, enabled=enabled, kernel=kernel,
            prog_type=prog_type, mcpu=mcpu, ctx_size=ctx_size,
            verify_after=verify_after, validate=validate, pgo=pgo,
            superopt=superopt)

    # ----------------------------------------------------------- lookup
    def get_object(self, key: str) -> Optional[object]:
        """Raw object lookup — the machinery behind :meth:`get`, also
        used directly by the superoptimizer's rewrite memo (entries in
        the ``key_for_window`` namespace are :class:`RewriteMemoEntry`
        objects, not program/report pairs)."""
        now = time.time()
        cached = self._memory.get(key)
        if cached is not None:
            blob, touched = cached
            if self.ttl_seconds is not None \
                    and now - touched > self.ttl_seconds:
                # idle too long: drop it and fall through to disk,
                # which will agree (its mtime is at least as old)
                del self._memory[key]
                self.stats.expired += 1
            else:
                self._memory[key] = (blob, now)
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return pickle.loads(blob)
        if self.directory is not None:
            path = self._path(key)
            try:
                if self.ttl_seconds is not None:
                    age = now - os.stat(path).st_mtime
                    if age > self.ttl_seconds:
                        if self._tombstone(path):
                            self.stats.expired += 1
                        raise FileNotFoundError(path)
                with open(path, "rb") as handle:
                    blob = handle.read()
                entry = pickle.loads(blob)
            except FileNotFoundError:
                entry = None  # a plain miss, not a fault
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                # unreadable or torn entry (permission loss, directory
                # replaced, schema drift): degrade to a miss
                entry = None
                self.stats.read_errors += 1
            if entry is not None:
                self._remember(key, blob)
                # a disk hit is an access: refresh the entry's mtime so
                # the LRU sweep and the idle TTL both see it as hot
                try:
                    os.utime(path, None)
                except OSError:
                    pass
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def put_object(self, key: str, obj: object) -> None:
        """Store an arbitrary picklable object under *key* (see
        :meth:`get_object`)."""
        blob = pickle.dumps(obj)
        self._remember(key, blob)
        if self.directory is not None:
            self._write_disk(key, blob)
        self.stats.stores += 1

    def get(self, key: str) -> Optional[Tuple[BpfProgram, MerlinReport]]:
        return self.get_object(key)

    def put(self, key: str, program: BpfProgram, report: MerlinReport) -> None:
        self.put_object(key, (program, report))

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        try:
            return os.path.exists(self._path(key))
        except OSError:  # e.g. the directory replaced by a file
            return False

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the LRU layer (disk entries, if any, survive)."""
        self._memory.clear()

    @property
    def write_degraded(self) -> bool:
        """True once the disk layer stopped accepting writes (e.g. the
        filesystem went read-only mid-run).  Reads are still attempted —
        a read-only mount serves existing entries fine — and ``get``
        never re-raises either way."""
        return self._write_degraded

    # ------------------------------------------------------ ttl / sweep
    def sweep(self, now: Optional[float] = None) -> dict:
        """Enforce the retention policy over the disk tree.

        Two passes in one walk: entries idle beyond ``ttl_seconds`` are
        expired unconditionally, then — if ``max_disk_bytes`` is set and
        the survivors still exceed it — the least-recently-touched
        entries are evicted until the tree fits.  Safe to run from any
        number of processes concurrently: the tombstone rename makes
        each removal claimed by exactly one sweeper, and in-flight
        readers keep their fd.  Returns the counts for this call.
        """
        removed = {"expired": 0, "evicted": 0, "scanned": 0,
                   "bytes": 0, "bytes_freed": 0}
        if self.directory is None:
            return removed
        now = time.time() if now is None else now
        entries = []  # (mtime, size, path)
        try:
            shards = os.scandir(self.directory)
        except OSError:
            return removed
        with shards:
            for shard in shards:
                if not shard.is_dir(follow_symlinks=False):
                    continue
                try:
                    files = os.scandir(shard.path)
                except OSError:
                    continue
                with files:
                    for entry in files:
                        name = entry.name
                        try:
                            stat = entry.stat(follow_symlinks=False)
                        except OSError:
                            continue  # raced with another sweeper
                        if not name.endswith(".pkl") \
                                or name.startswith("."):
                            # temp file (``.tmp-*.pkl``) or tombstone
                            # left by a crashed writer/sweeper: reap
                            # it once clearly abandoned
                            if now - stat.st_mtime > 300:
                                try:
                                    os.unlink(entry.path)
                                except OSError:
                                    pass
                            continue
                        entries.append((stat.st_mtime, stat.st_size,
                                        entry.path))
        removed["scanned"] = len(entries)
        live_bytes = sum(size for _mtime, size, _path in entries)
        survivors = []
        for mtime, size, path in entries:
            if self.ttl_seconds is not None \
                    and now - mtime > self.ttl_seconds:
                if self._tombstone(path):
                    self.stats.expired += 1
                    removed["expired"] += 1
                    removed["bytes_freed"] += size
                    live_bytes -= size
                continue
            survivors.append((mtime, size, path))
        if self.max_disk_bytes is not None \
                and live_bytes > self.max_disk_bytes:
            survivors.sort()  # oldest mtime (= least recently touched) first
            for mtime, size, path in survivors:
                if live_bytes <= self.max_disk_bytes:
                    break
                if self._tombstone(path):
                    self.stats.disk_evictions += 1
                    removed["evicted"] += 1
                    removed["bytes_freed"] += size
                    live_bytes -= size
        removed["bytes"] = live_bytes
        return removed

    def _tombstone(self, path: str) -> bool:
        """Atomically claim and remove one disk entry.

        The rename either succeeds (this process owns the removal) or
        raises because another evictor got there first — so N racing
        sweepers remove the entry exactly once between them, and a
        reader can never observe a half-deleted file: the path either
        resolves to the complete entry or not at all.
        """
        tomb = f"{path[:-4]}.tomb-{os.getpid()}-{id(self) & 0xffff}"
        try:
            os.replace(path, tomb)
        except OSError:
            return False  # already claimed (or the tree vanished)
        try:
            os.unlink(tomb)
        except OSError:
            pass  # sweep() reaps stale tombstones later
        return True

    # ---------------------------------------------------------- helpers
    def _remember(self, key: str, blob: bytes) -> None:
        self._memory[key] = (blob, time.time())
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _write_disk(self, key: str, blob: bytes) -> None:
        """Best-effort: a failed disk write (permission lost, directory
        deleted or replaced mid-run) degrades the store to memory-only
        for that entry instead of taking the caller down.  After
        ``WRITE_DEGRADE_AFTER`` failures in a row the degradation goes
        sticky and later ``put`` calls skip the disk entirely; one
        successful write re-arms the counter."""
        if self._write_degraded:
            return
        path = self._path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=".tmp-", suffix=".pkl")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            self._consecutive_write_errors = 0
        except OSError:
            self.stats.write_errors += 1
            self._consecutive_write_errors += 1
            if self._consecutive_write_errors >= self.WRITE_DEGRADE_AFTER:
                self._write_degraded = True
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
