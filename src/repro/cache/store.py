"""The compilation cache: an in-memory LRU layer over an optional
on-disk content-addressed store.

Entries are stored *pickled* even in memory: every ``get`` deserializes
a private copy, so callers can freely mutate the returned program (the
bytecode passes rewrite in place) without corrupting the cache — the
same property the disk layer gets for free.  Deserializing is orders of
magnitude cheaper than recompiling, which is the whole point.

The disk layout is ``<dir>/<digest[:2]>/<digest>.pkl`` (git-style
sharding keeps directories small at fleet scale); writes go through a
temp file + ``os.replace`` so concurrent writers — e.g. the parallel
batch compiler's worker processes — can never expose a torn entry.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .. import ir
from ..core.pipeline import MerlinReport
from ..isa import BpfProgram, ProgramType
from ..verifier import KernelConfig
from . import keys as _keys


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, mergeable across worker processes.

    ``write_errors``/``read_errors`` count disk-layer I/O failures the
    cache absorbed (permission loss, the directory replaced, torn
    bytes): the store degrades to memory-only behavior instead of
    propagating them, and a long-running service surfaces the counters
    through its stats endpoint.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    write_errors: int = 0
    read_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.write_errors += other.write_errors
        self.read_errors += other.read_errors

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "write_errors": self.write_errors,
            "read_errors": self.read_errors,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompilationCache:
    """Content-addressed cache of ``(BpfProgram, MerlinReport)`` pairs.

    ``max_memory_entries`` bounds the LRU layer; overflow evicts the
    least-recently-used entry (still recoverable from disk when a
    ``directory`` is configured).  ``directory=None`` keeps the cache
    purely in-memory.
    """

    #: consecutive disk-write failures before the store stops trying —
    #: a filesystem gone read-only (EROFS, quota, revoked mount) fails
    #: every subsequent write, and probing it forever just burns a
    #: syscall + an exception per ``put``
    WRITE_DEGRADE_AFTER = 3

    def __init__(self, directory: Optional[str] = None,
                 max_memory_entries: int = 1024):
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.directory = directory
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._consecutive_write_errors = 0
        self._write_degraded = False
        self.stats = CacheStats()
        if directory is not None:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError:
                # directory unusable from the start (read-only parent):
                # run memory-only rather than refusing to start
                self.stats.write_errors += 1
                self._write_degraded = True

    # ------------------------------------------------------------- keys
    def key_for_function(self, func: ir.Function,
                         module: Optional[ir.Module] = None, *,
                         enabled: FrozenSet[str], kernel: KernelConfig,
                         prog_type: ProgramType = ProgramType.XDP,
                         mcpu: str = "v2", ctx_size: int = 64,
                         verify_after: bool = False,
                         validate: bool = False,
                         pgo: Optional[str] = None,
                         superopt: Optional[str] = None) -> str:
        return _keys.key_for_function(
            func, module, enabled=enabled, kernel=kernel,
            prog_type=prog_type, mcpu=mcpu, ctx_size=ctx_size,
            verify_after=verify_after, validate=validate, pgo=pgo,
            superopt=superopt)

    # ----------------------------------------------------------- lookup
    def get_object(self, key: str) -> Optional[object]:
        """Raw object lookup — the machinery behind :meth:`get`, also
        used directly by the superoptimizer's rewrite memo (entries in
        the ``key_for_window`` namespace are :class:`RewriteMemoEntry`
        objects, not program/report pairs)."""
        blob = self._memory.get(key)
        if blob is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return pickle.loads(blob)
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                entry = pickle.loads(blob)
            except FileNotFoundError:
                entry = None  # a plain miss, not a fault
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                # unreadable or torn entry (permission loss, directory
                # replaced, schema drift): degrade to a miss
                entry = None
                self.stats.read_errors += 1
            if entry is not None:
                self._remember(key, blob)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def put_object(self, key: str, obj: object) -> None:
        """Store an arbitrary picklable object under *key* (see
        :meth:`get_object`)."""
        blob = pickle.dumps(obj)
        self._remember(key, blob)
        if self.directory is not None:
            self._write_disk(key, blob)
        self.stats.stores += 1

    def get(self, key: str) -> Optional[Tuple[BpfProgram, MerlinReport]]:
        return self.get_object(key)

    def put(self, key: str, program: BpfProgram, report: MerlinReport) -> None:
        self.put_object(key, (program, report))

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        try:
            return os.path.exists(self._path(key))
        except OSError:  # e.g. the directory replaced by a file
            return False

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the LRU layer (disk entries, if any, survive)."""
        self._memory.clear()

    @property
    def write_degraded(self) -> bool:
        """True once the disk layer stopped accepting writes (e.g. the
        filesystem went read-only mid-run).  Reads are still attempted —
        a read-only mount serves existing entries fine — and ``get``
        never re-raises either way."""
        return self._write_degraded

    # ---------------------------------------------------------- helpers
    def _remember(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _write_disk(self, key: str, blob: bytes) -> None:
        """Best-effort: a failed disk write (permission lost, directory
        deleted or replaced mid-run) degrades the store to memory-only
        for that entry instead of taking the caller down.  After
        ``WRITE_DEGRADE_AFTER`` failures in a row the degradation goes
        sticky and later ``put`` calls skip the disk entirely; one
        successful write re-arms the counter."""
        if self._write_degraded:
            return
        path = self._path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=".tmp-", suffix=".pkl")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            self._consecutive_write_errors = 0
        except OSError:
            self.stats.write_errors += 1
            self._consecutive_write_errors += 1
            if self._consecutive_write_errors >= self.WRITE_DEGRADE_AFTER:
                self._write_degraded = True
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
