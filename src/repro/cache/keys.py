"""Content-addressed cache keys for compilation results.

A key digests everything that determines the output of
:meth:`MerlinPipeline.compile`:

* the **canonical IR text** of the function being compiled (the same
  textual form ``repro.fuzz`` round-trips through), plus the module's
  map declarations and sibling functions when a module is supplied —
  codegen reads both;
* the **enabled optimizer set** (sorted short names);
* the **kernel configuration** (every field: the gate decisions, limits
  and verifier cost model all feed the result);
* **mcpu**, **program type**, **ctx size**, ``verify_after``, and
  whether **translation validation** ran (a validated entry carries
  per-pass certificates in its report; an unvalidated one does not, so
  the two must never share an entry);
* the **profile-guided layout spec** when PGO is requested — the
  deterministic :class:`~repro.core.bytecode_passes.layout.PgoSpec`
  fingerprint (workload size, runs, seed, budget), not the collected
  counts: the spec fully determines the profile for a given program, so
  keying the spec keys the layout;
* the **superoptimizer spec** when the superopt tier is requested — the
  :class:`~repro.core.superopt.SuperoptSpec` fingerprint (window,
  search budget, seed): the tier is deterministic for a given spec, so
  keying the spec keys the rewrites.

The same store also holds the superoptimizer's *rewrite memo* under a
separate key namespace (:func:`key_for_window`): entries keyed by the
canonicalized window content plus the search-relevant spec parts, so
one discovery is shared by every program — and every serve worker —
that contains the same window shape.

Keys are hex SHA-256 digests, so they are safe as file names for the
on-disk store.  ``SCHEMA_VERSION`` is folded in; bump it whenever the
serialized entry format or pipeline semantics change incompatibly.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import FrozenSet, Iterable, Optional

from .. import ir
from ..ir.printer import print_function, print_module
from ..isa import ProgramType
from ..verifier import KernelConfig

#: bump to invalidate every previously written cache entry
SCHEMA_VERSION = 4


def canonical_text(func: ir.Function, module: Optional[ir.Module] = None) -> str:
    """The text-canonical form of a compilation input.

    With a module, the whole module is rendered (maps and sibling
    functions can both affect codegen) and the entry point is recorded;
    without one, the function's own textual IR stands alone.
    """
    if module is not None:
        return f"entry @{func.name}\n{print_module(module)}"
    return print_function(func)


def kernel_fingerprint(kernel: KernelConfig) -> str:
    """Every field of the kernel config, in declaration order."""
    return ",".join(
        f"{f.name}={getattr(kernel, f.name)}"
        for f in dataclasses.fields(kernel)
    )


def compose_key(
    ir_text: str,
    enabled: Iterable[str],
    kernel: KernelConfig,
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = 64,
    verify_after: bool = False,
    validate: bool = False,
    pgo: Optional[str] = None,
    superopt: Optional[str] = None,
) -> str:
    """SHA-256 hex digest over the full compilation configuration.

    *pgo* is the :meth:`PgoSpec.fingerprint` string when profile-guided
    layout runs, or ``None``; the two configurations must never share
    an entry (layout reorders the emitted instruction stream).
    *superopt* is likewise the :meth:`SuperoptSpec.fingerprint` string
    when the superopt tier runs (it rewrites the instruction stream).
    """
    parts = (
        f"schema={SCHEMA_VERSION}",
        f"passes={','.join(sorted(enabled))}",
        f"kernel={kernel_fingerprint(kernel)}",
        f"prog_type={prog_type.value}",
        f"mcpu={mcpu}",
        f"ctx_size={ctx_size}",
        f"verify_after={int(verify_after)}",
        f"validate={int(validate)}",
        f"pgo={pgo if pgo is not None else '-'}",
        f"superopt={superopt if superopt is not None else '-'}",
        "ir:",
        ir_text,
    )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def key_for_bytecode(program) -> str:
    """Content key for a :class:`repro.isa.BpfProgram`'s *executable
    identity*: the encoded instruction stream plus the map declarations
    (map handles feed ``ld_imm64`` pseudo relocations).

    This is the key the VM's pre-decode cache (:mod:`repro.vm.engine`)
    uses, so a program decoded once is shared by every Machine built
    over the same bytecode — across batch runs, fuzz observations, and
    benchmark loops.  Name, prog type and ctx size do not affect
    decoding and are deliberately excluded.
    """
    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION};vm-decode;".encode())
    for name, spec in program.maps.items():
        digest.update(
            f"map={name}:{spec.map_type}:{spec.key_size}:"
            f"{spec.value_size}:{spec.max_entries};".encode()
        )
    digest.update(program.encode())
    return digest.hexdigest()


def key_for_window(insns, search: str = "") -> str:
    """Content key for a *canonicalized* superoptimizer window — the
    rewrite-memo namespace.

    The digest covers the canonical instruction encoding (registers
    renamed, offsets rebased by :func:`repro.core.superopt
    .canonicalize_window`) plus *search*, the spec's search-relevant
    fingerprint: entries found under different search budgets or seeds
    must not answer for one another, or ``cached == fresh`` breaks.
    """
    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION};superopt-memo;{search};".encode())
    for insn in insns:
        digest.update(insn.encode())
    return digest.hexdigest()


def key_for_function(
    func: ir.Function,
    module: Optional[ir.Module] = None,
    *,
    enabled: FrozenSet[str],
    kernel: KernelConfig,
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = 64,
    verify_after: bool = False,
    validate: bool = False,
    pgo: Optional[str] = None,
    superopt: Optional[str] = None,
) -> str:
    """Key an IR function directly (renders its canonical text first)."""
    return compose_key(canonical_text(func, module), enabled, kernel,
                       prog_type=prog_type, mcpu=mcpu, ctx_size=ctx_size,
                       verify_after=verify_after, validate=validate,
                       pgo=pgo, superopt=superopt)
