"""Synthetic Sysdig / Tetragon / Tracee-style program suites.

The paper evaluates three eBPF-based security systems (Table 1):

===========  =====  ========  ========  ========  ====
suite        count  largest   smallest  average   mcpu
===========  =====  ========  ========  ========  ====
Sysdig       168    33765     180       1094      v3
Tetragon     186    15673     21        3405      v3
Tracee       129    16633     29        2654      v2
===========  =====  ========  ========  ========  ====

We cannot ship those systems, so each suite is a seeded generator that
produces tracepoint/kprobe-style programs with the *statistical mix of
optimizable patterns* that drives the paper's per-suite results:

* **Sysdig** programs marshal large syscall-event payloads field by
  field into output buffers.  The struct offsets are naturally aligned,
  but clang only asserts ``align 1`` (packed kernel structs), so the
  baseline decomposes every copy byte-by-byte — exactly the slack DAO
  recovers, giving the suite its ~60% average NI reduction.
* **Tetragon** and **Tracee** programs are dominated by policy checks
  and branching, and what marshalling they do reads *genuinely
  misaligned* packed fields that no pass can widen, so their NI
  reductions stay in single digits.

``scale`` shrinks both program count and sizes proportionally so tests
and quick benchmarks stay fast; ``scale=1.0`` reproduces Table 1's
population (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import compile_source
from ..isa import BpfProgram, ProgramType
from .. import ir

TRACE_CTX_SIZE = 512


@dataclass(frozen=True)
class SuiteProfile:
    name: str
    count: int
    smallest: int  # target NI of the smallest program
    average: int
    largest: int
    mcpu: str
    #: fraction of marshalling copies at naturally-aligned offsets
    #: (DAO-recoverable); the rest are genuinely misaligned
    aligned_fraction: float
    #: relative weight of marshalling vs control-flow filler
    marshal_weight: float
    #: probability a program contains a bounded string-copy loop
    loop_probability: float


SYSDIG = SuiteProfile(
    name="sysdig", count=168, smallest=180, average=1094, largest=33765,
    mcpu="v3", aligned_fraction=0.95, marshal_weight=0.90,
    loop_probability=0.25,
)
TETRAGON = SuiteProfile(
    name="tetragon", count=186, smallest=21, average=3405, largest=15673,
    mcpu="v3", aligned_fraction=0.10, marshal_weight=0.30,
    loop_probability=0.45,
)
TRACEE = SuiteProfile(
    name="tracee", count=129, smallest=29, average=2654, largest=16633,
    mcpu="v2", aligned_fraction=0.08, marshal_weight=0.28,
    loop_probability=0.40,
)

PROFILES: Dict[str, SuiteProfile] = {
    "sysdig": SYSDIG,
    "tetragon": TETRAGON,
    "tracee": TRACEE,
}

_HOOKS = (
    "sys_enter_open", "sys_exit_open", "sys_enter_execve", "sys_exit_execve",
    "sys_enter_connect", "sys_exit_connect", "sys_enter_write",
    "sys_exit_write", "sys_enter_read", "sys_exit_read", "sys_enter_close",
    "sched_process_exit", "sys_enter_clone", "sys_exit_clone",
    "sys_enter_unlink", "sys_enter_chmod", "sys_enter_mmap", "sys_enter_bpf",
)


@dataclass
class SuiteProgram:
    name: str
    source: str
    entry: str
    hook: str
    target_ni: int


def _size_samples(profile: SuiteProfile, count: int, scale: float,
                  rng: random.Random) -> List[int]:
    """Draw sizes whose min/avg/max roughly match the profile."""
    smallest = max(8, int(profile.smallest * scale))
    average = max(smallest + 4, int(profile.average * scale))
    largest = max(average + 8, int(profile.largest * scale))
    sizes = [smallest, largest]
    # lognormal between the extremes, calibrated around the mean
    mu = math.log(average)
    sigma = max(0.3, math.log(largest / average) / 2.5)
    while len(sizes) < count:
        value = int(rng.lognormvariate(mu, sigma))
        sizes.append(min(max(value, smallest), largest))
    rng.shuffle(sizes)
    return sizes[:count]


class SuiteGenerator:
    """Generates one suite's worth of mini-C tracepoint programs."""

    #: baseline NI cost of one u64 marshal copy: byte-decomposed load
    #: (~22 insns) plus byte-decomposed store (~22), measured empirically
    MARSHAL_UNIT_COST = 40
    FILTER_UNIT_COST = 7
    LOOP_COST = 90
    BASE_COST = 40

    def __init__(self, profile: SuiteProfile, seed: int = 2024,
                 scale: float = 1.0, count: Optional[int] = None):
        self.profile = profile
        # zlib.crc32 is stable across processes (str hash is randomized)
        import zlib

        self.rng = random.Random(seed ^ zlib.crc32(profile.name.encode()))
        self.scale = scale
        self.count = count if count is not None else max(
            2, int(profile.count * min(scale * 4, 1.0))
        )

    # ------------------------------------------------------------------
    def generate(self) -> List[SuiteProgram]:
        sizes = _size_samples(self.profile, self.count, self.scale, self.rng)
        return [
            self._program(index, target)
            for index, target in enumerate(sizes)
        ]

    # ------------------------------------------------------------------
    def _program(self, index: int, target_ni: int) -> SuiteProgram:
        profile = self.profile
        rng = self.rng
        hook = rng.choice(_HOOKS)
        name = f"{profile.name}_{hook}_{index}"
        entry = f"trace_{index}"

        budget = max(target_ni - self.BASE_COST, 8)
        marshal_budget = int(budget * profile.marshal_weight)
        filler_budget = budget - marshal_budget
        copies = max(1, marshal_budget // self.MARSHAL_UNIT_COST)
        filters = max(1, filler_budget // self.FILTER_UNIT_COST)
        has_loop = rng.random() < profile.loop_probability
        if has_loop:
            filters = max(1, filters - self.LOOP_COST // self.FILTER_UNIT_COST)

        parts: List[str] = [f"""
map percpu_array {name}_stats(u32, u64, 16);
map hash {name}_state(u64, u64, 4096);
map percpu_array {name}_events(u32, u64, 1);

u64 {entry}(u8* ctx) {{
    u64 pid_tgid = get_current_pid_tgid();
    u32 pid = (u32)pid_tgid;
    u64 uid_gid = get_current_uid_gid();
    if (pid == 0) {{ return 0; }}
"""]
        parts.append(self._filter_block(filters))
        parts.append(self._marshal_block(copies, f"{name}_events"))
        if has_loop:
            parts.append(self._loop_block())
        parts.append(f"""
    u64 state_key = pid_tgid ^ (uid_gid << 7);
    u64* seen = map_lookup({name}_state, &state_key);
    if (seen != 0) {{
        *seen += 1;
    }} else {{
        u64 one = 1;
        map_update({name}_state, &state_key, &one, BPF_ANY);
    }}
    u32 stat_key = pid & 0xf;
    u64* stat = map_lookup({name}_stats, &stat_key);
    if (stat != 0) {{ *stat += 1; }}
    return 0;
}}
""")
        return SuiteProgram(name=name, source="".join(parts), entry=entry,
                            hook=hook, target_ni=target_ni)

    # ------------------------------------------------------------------
    def _filter_block(self, filters: int) -> str:
        """Policy-style compare/branch chains (Tetragon/Tracee filler).

        Field reads use the aligned ``ctx_load_*`` builtins: these model
        known-layout tracepoint struct accesses, which clang already
        emits optimally — Merlin gains nothing here, exactly why the
        branch-heavy suites see single-digit NI reductions.
        """
        rng = self.rng
        lines = ["    u64 verdict = 0;\n"]
        for i in range(filters):
            off = rng.randrange(0, 56) * 8
            constant = rng.randrange(1, 1 << 16)
            op_choice = rng.random()
            if op_choice < 0.4:
                lines.append(
                    f"    if (ctx_load_u64(ctx, {off}) == {constant}) "
                    f"{{ verdict += {i + 1}; }}\n"
                )
            elif op_choice < 0.7:
                lines.append(
                    f"    if ((ctx_load_u64(ctx, {off}) & {constant}) != 0) "
                    f"{{ verdict |= {1 << (i % 63)}; }}\n"
                )
            else:
                lines.append(
                    f"    if (ctx_load_u32(ctx, {off}) > {constant}) "
                    f"{{ verdict ^= {constant}; }}\n"
                )
        lines.append("    if (verdict == 0xdeadbeefcafe) { return 0; }\n")
        return "".join(lines)

    def _marshal_block(self, copies: int, events_map: str) -> str:
        """Field-by-field event marshalling into 64-byte output chunks."""
        rng = self.rng
        profile = self.profile
        event_type = rng.randrange(1, 512)
        header = (
            f"    *(u16*)(buf + 0) = {event_type};\n"
            "    *(u16*)(buf + 2) = 0;\n"
            "    *(u32*)(buf + 4) = 0;\n"
        )
        lines = ["    u8 buf[64];\n", header]
        buf_off = 8
        for i in range(copies):
            size = rng.choice((8, 8, 8, 4, 4, 2))
            tname = {8: "u64", 4: "u32", 2: "u16"}[size]
            aligned = rng.random() < profile.aligned_fraction
            if aligned:
                # packed-struct field at a naturally aligned offset:
                # clang asserts align 1, DAO can prove the real alignment
                ctx_off = rng.randrange(0, (TRACE_CTX_SIZE - 8) // size) * size
                buf_off = (buf_off + size - 1) // size * size
            else:
                # genuinely misaligned packed field: DAO cannot widen it
                ctx_off = rng.randrange(0, TRACE_CTX_SIZE - 9) | 1
                if buf_off % size == 0:
                    buf_off += 1  # tight packing leaves the copy unaligned
            if buf_off + size > 64:
                lines.append(
                    f"    perf_event_output(ctx, {events_map}, 0, buf, 64);\n"
                )
                lines.append(header)
                buf_off = 8 if aligned else 9
            lines.append(
                f"    *({tname}*)(buf + {buf_off}) = "
                f"*({tname}*)(ctx + {ctx_off});\n"
            )
            buf_off += size
        lines.append(
            f"    perf_event_output(ctx, {events_map}, 0, buf, 64);\n"
        )
        return "".join(lines)

    def _loop_block(self) -> str:
        """Bounded hashing loop plus a comm capture (path/arg digesting)."""
        return """
    u8 comm[16];
    get_current_comm(comm, 16);
    u64 acc = ctx_load_u64(ctx, 8);
    for (u64 i = 0; i < 16; i += 1) {
        acc = (acc ^ (acc >> 13)) * 0x100000001b3 + i;
        acc = acc ^ (acc << 7);
    }
    if ((acc & 0xff) == 0x5a) { verdict += 1; }
"""


def generate_suite(name: str, seed: int = 2024, scale: float = 1.0,
                   count: Optional[int] = None) -> List[SuiteProgram]:
    """Generate the programs of one suite ("sysdig"/"tetragon"/"tracee")."""
    profile = PROFILES[name]
    generator = SuiteGenerator(profile, seed=seed, scale=scale, count=count)
    return generator.generate()


def compile_suite_program(program: SuiteProgram, optimize: bool = False,
                          mcpu: Optional[str] = None, cache=None,
                          pgo=None, superopt=None,
                          **pipeline_kwargs) -> BpfProgram:
    """Compile one suite program (optionally through Merlin).

    *cache* is a :class:`repro.cache.CompilationCache`; repeated suite
    builds (ablations, overhead sweeps) are then served content-
    addressed instead of recompiled.  *pgo* and *superopt* forward to
    :meth:`MerlinPipeline.compile` (the layout and superoptimizer
    tiers); the remaining keyword arguments configure the pipeline
    itself (``enabled``, ``kernel``, ...).
    """
    module = compile_source(program.source, program.name)
    func = module.get(program.entry)
    suite_mcpu = mcpu if mcpu is not None else "v3"
    if optimize:
        from ..core import MerlinPipeline

        pipeline = MerlinPipeline(**pipeline_kwargs)
        compiled, _ = pipeline.compile(
            func, module, prog_type=ProgramType.TRACEPOINT,
            mcpu=suite_mcpu, ctx_size=TRACE_CTX_SIZE, cache=cache,
            pgo=pgo, superopt=superopt,
        )
        return compiled
    from ..codegen import compile_function

    return compile_function(func, module, prog_type=ProgramType.TRACEPOINT,
                            mcpu=suite_mcpu, ctx_size=TRACE_CTX_SIZE)


def suite_jobs(programs: Sequence[SuiteProgram],
               mcpu: Optional[str] = None) -> List["CompileJob"]:
    """Turn generated suite programs into batch-compiler jobs."""
    from ..core import CompileJob

    suite_mcpu = mcpu if mcpu is not None else "v3"
    return [
        CompileJob(name=p.name, source=p.source, entry=p.entry,
                   prog_type=ProgramType.TRACEPOINT, mcpu=suite_mcpu,
                   ctx_size=TRACE_CTX_SIZE)
        for p in programs
    ]


def compile_suite(programs: Sequence[SuiteProgram], jobs: int = 1,
                  cache=None, mcpu: Optional[str] = None,
                  **pipeline_kwargs) -> "BatchReport":
    """Batch-compile a whole suite through Merlin.

    Fans out over *jobs* worker processes and/or serves repeats from
    *cache*; returns the :class:`repro.core.BatchReport` whose programs
    are in suite order.
    """
    from ..core import MerlinPipeline

    pipeline = MerlinPipeline(**pipeline_kwargs)
    return pipeline.compile_many(suite_jobs(programs, mcpu=mcpu),
                                 jobs=jobs, cache=cache)
