"""The 19 XDP benchmark programs (paper Table 1).

Sources follow the real programs they stand in for: kernel samples
(xdp1, xdp2, xdp_router_ipv4, xdp_fwd, ...), Meta's Katran-style
xdp-balancer and pktcntr, hXDP's suite (ddos mitigator, firewall, ...)
and Cilium-style datapath programs.  All are written in the package's
mini-C and parse real packet layouts (Ethernet/IPv4/TCP/UDP offsets).

Simplification: multi-byte packet fields are read in little-endian host
order and the packet generator writes them the same way (network byte
order round-trips through ``bswap`` in real code; elided here — it does
not affect instruction mix materially).

``FORWARDING`` lists the four programs that can forward traffic; these
are the ones Table 3 measures for throughput/latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import ir
from ..frontend import compile_source
from ..isa import BpfProgram, ProgramType


@dataclass(frozen=True)
class XdpWorkload:
    name: str
    source: str
    entry: str
    origin: str  # kernel / meta / hxdp / cilium


# --- shared source fragments -------------------------------------------------

_PARSE_ETH_IP = """
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 34 > end) { return XDP_PASS; }
    u16 proto = *(u16*)(data + 12);
    if (proto != 0x0800) { return XDP_PASS; }
    u8 ipproto = *(u8*)(data + 23);
    u32 saddr = *(u32*)(data + 26);
    u32 daddr = *(u32*)(data + 30);
"""


def _jhash_rounds(a: str, b: str, c: str, rounds: int = 3) -> str:
    """Inline jhash-style mixing (always inlined in real XDP code too)."""
    body = []
    for _ in range(rounds):
        body.append(f"""
    {a} -= {c}; {a} ^= ({c} << 4) | ({c} >> 28); {c} += {b};
    {b} -= {a}; {b} ^= ({a} << 6) | ({a} >> 26); {a} += {c};
    {c} -= {b}; {c} ^= ({b} << 8) | ({b} >> 24); {b} += {a};
""")
    return "".join(body)


# --- the 19 programs -----------------------------------------------------------

XDP1 = XdpWorkload(
    name="xdp1",
    origin="kernel",
    entry="xdp_prog1",
    source="""
map percpu_array rxcnt(u32, u64, 256);

u32 xdp_prog1(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u16 proto = *(u16*)(data + 12);
    u32 key = proto & 0xff;
    u64* value = map_lookup(rxcnt, &key);
    if (value != 0) {
        *value += 1;
    }
    return XDP_DROP;
}
""",
)

XDP2 = XdpWorkload(
    name="xdp2",
    origin="kernel",
    entry="xdp_prog2",
    source="""
map percpu_array rxcnt(u32, u64, 256);

u32 xdp_prog2(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u16 proto = *(u16*)(data + 12);
    u32 key = proto & 0xff;
    u64* value = map_lookup(rxcnt, &key);
    if (value != 0) {
        *value += 1;
    }
    // swap source and destination MAC addresses (6 bytes each)
    u32 dst_lo = *(u32*)(data + 0);
    u16 dst_hi = *(u16*)(data + 4);
    u32 src_lo = *(u32*)(data + 6);
    u16 src_hi = *(u16*)(data + 10);
    *(u32*)(data + 0) = src_lo;
    *(u16*)(data + 4) = src_hi;
    *(u32*)(data + 6) = dst_lo;
    *(u16*)(data + 10) = dst_hi;
    return XDP_TX;
}
""",
)

XDP_ROUTER_IPV4 = XdpWorkload(
    name="xdp_router_ipv4",
    origin="kernel",
    entry="xdp_router_ipv4",
    source="""
map array route_table(u32, u32, 256);
map percpu_array stats(u32, u64, 8);

u32 xdp_router_ipv4(u8* ctx) {
""" + _PARSE_ETH_IP + """
    u8 ttl = *(u8*)(data + 22);
    if (ttl <= 1) { return XDP_PASS; }
    u32 prefix = daddr >> 24;
    u32* nh = map_lookup(route_table, &prefix);
    if (nh == 0) {
        u32 miss_key = 1;
        u64* miss = map_lookup(stats, &miss_key);
        if (miss != 0) { *miss += 1; }
        return XDP_PASS;
    }
    u32 ifindex = *nh;
    if (ifindex == 0) { return XDP_PASS; }
    *(u8*)(data + 22) = ttl - 1;
    u32 hit_key = 0;
    u64* hit = map_lookup(stats, &hit_key);
    if (hit != 0) { *hit += 1; }
    return XDP_TX;
}
""",
)

XDP_FWD = XdpWorkload(
    name="xdp_fwd",
    origin="kernel",
    entry="xdp_fwd",
    source="""
map percpu_array fwd_stats(u32, u64, 4);

u32 xdp_fwd(u8* ctx) {
""" + _PARSE_ETH_IP + """
    u8 ttl = *(u8*)(data + 22);
    if (ttl <= 1) { return XDP_PASS; }
    // build fib_lookup params on the stack (64-byte struct, zeroed
    // header-by-header like real code initializing struct bpf_fib_lookup)
    u8 params[64];
    *(u32*)(params + 0) = 0;        // family AF_INET
    *(u32*)(params + 24) = 0;       // tot_len/tbid words
    *(u32*)(params + 28) = 0;
    *(u32*)(params + 32) = 0;
    *(u32*)(params + 36) = 0;
    *(u32*)(params + 4) = (u32)ipproto;
    *(u32*)(params + 8) = saddr;
    *(u32*)(params + 12) = daddr;
    *(u32*)(params + 16) = ctx->ingress_ifindex;
    u64 rc = fib_lookup(ctx, params, 64, 0);
    if (rc != 0) { return XDP_PASS; }
    u32 oif = *(u32*)(params + 56);
    if (oif == 0) { return XDP_PASS; }
    *(u8*)(data + 22) = ttl - 1;
    u32 key = 0;
    u64* count = map_lookup(fwd_stats, &key);
    if (count != 0) { *count += 1; }
    return redirect(oif, 0);
}
""",
)

# Katran-style load balancer: the largest program (paper: 1771 insns).
_BALANCER_PARSE = """
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u16 proto = *(u16*)(data + 12);
    u64 l3 = data + 14;
    if (proto == 0x8100) {
        if (data + 18 > end) { return XDP_DROP; }
        proto = *(u16*)(data + 16);
        l3 = data + 18;
    }
    if (proto != 0x0800) { return XDP_PASS; }
    if (l3 + 20 > end) { return XDP_DROP; }
    u8 verihl = *(u8*)(l3 + 0);
    u8 ihl = verihl & 0x0f;
    if (ihl < 5) { return XDP_DROP; }
    u64 l4 = l3 + (u64)ihl * 4;
    u8 ipproto = *(u8*)(l3 + 9);
    u32 saddr = *(u32*)(l3 + 12);
    u32 daddr = *(u32*)(l3 + 16);
    u16 tot_len = *(u16*)(l3 + 2);
    u8 ttl2 = *(u8*)(l3 + 8);
    if (ttl2 <= 1) { return XDP_DROP; }
    if (l4 + 8 > end) { return XDP_DROP; }
    u16 sport = *(u16*)(l4 + 0);
    u16 dport = *(u16*)(l4 + 2);
"""

XDP_BALANCER = XdpWorkload(
    name="xdp-balancer",
    origin="meta",
    entry="balancer_ingress",
    source="""
map hash vip_map(u64, u32, 512);
map lru_hash conntrack(u64, u32, 65536);
map array ring(u32, u32, 4096);
map array reals(u32, u64, 256);
map percpu_array lb_stats(u32, u64, 32);

u32 balancer_ingress(u8* ctx) {
""" + _BALANCER_PARSE + """
    // vip lookup key: daddr:dport:proto
    u64 vip_key = ((u64)daddr << 32) | ((u64)dport << 8) | (u64)ipproto;
    u32* vip = map_lookup(vip_map, &vip_key);
    if (vip == 0) {
        u32 nk = 2;
        u64* nv = map_lookup(lb_stats, &nk);
        if (nv != 0) { *nv += 1; }
        return XDP_PASS;
    }
    u32 vip_num = *vip;

    // connection table lookup: saddr:sport
    u64 ct_key = ((u64)saddr << 16) | (u64)sport;
    u32 real_idx = 0;
    u32* existing = map_lookup(conntrack, &ct_key);
    if (existing != 0) {
        real_idx = *existing;
    } else {
        // pick backend via a jhash of the 5-tuple
        u32 a = saddr;
        u32 b = daddr;
        u32 c = ((u32)sport << 16) | (u32)dport;
        a += 0xdeadbef;
        b += vip_num;
        c += (u32)ipproto;
""" + _jhash_rounds("a", "b", "c", rounds=4) + """
        u32 slot = c & 0xfff;
        u32* ring_entry = map_lookup(ring, &slot);
        if (ring_entry == 0) { return XDP_DROP; }
        real_idx = *ring_entry;
        u32 cval = real_idx;
        map_update(conntrack, &ct_key, &cval, BPF_ANY);
        u32 newk = 3;
        u64* newv = map_lookup(lb_stats, &newk);
        if (newv != 0) { *newv += 1; }
    }

    u32 rk = real_idx & 0xff;
    u64* real = map_lookup(reals, &rk);
    if (real == 0) { return XDP_DROP; }
    u64 real_info = *real;
    u32 real_addr = (u32)real_info;
    if (real_addr == 0) { return XDP_DROP; }

    // stats: per-vip packets and bytes
    u32 sk = vip_num & 0x1f;
    u64* pkts = map_lookup(lb_stats, &sk);
    if (pkts != 0) { *pkts += 1; }

    // checksum delta for the daddr rewrite
    u8 oldhdr[8];
    u8 newhdr[8];
    *(u32*)(oldhdr + 0) = daddr;
    *(u32*)(oldhdr + 4) = (u32)dport;
    *(u32*)(newhdr + 0) = real_addr;
    *(u32*)(newhdr + 4) = (u32)(real_info >> 32) & 0xffff;
    u64 csum = csum_diff(oldhdr, 8, newhdr, 8, 0);

    // rewrite destination: DNAT to the chosen real server
    *(u32*)(l3 + 16) = real_addr;
    *(u16*)(l4 + 2) = (u16)(real_info >> 32);
    *(u8*)(l3 + 8) = ttl2 - 1;
    *(u16*)(l3 + 10) = (u16)csum;

    // second-chance hashing for icmp-sized anomalies
    if (tot_len < 28) {
        u32 a2 = saddr ^ 0x5bd1e995;
        u32 b2 = daddr ^ (u32)tot_len;
        u32 c2 = 0x9e3779b9;
""" + _jhash_rounds("a2", "b2", "c2", rounds=2) + """
        if ((c2 & 0xff) == 0) {
            u32 ak = 4;
            u64* av = map_lookup(lb_stats, &ak);
            if (av != 0) { *av += 1; }
        }
    }
    return XDP_TX;
}
""",
)

XDP_TX_IPTUNNEL = XdpWorkload(
    name="xdp_tx_iptunnel",
    origin="kernel",
    entry="xdp_tx_iptunnel",
    source="""
map hash tunnel_map(u64, u64, 256);
map percpu_array tunnel_stats(u32, u64, 4);

u32 xdp_tx_iptunnel(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 6 && ipproto != 17) { return XDP_PASS; }
    if (data + 38 > end) { return XDP_PASS; }
    u16 dport = *(u16*)(data + 36);
    u64 key = ((u64)daddr << 16) | (u64)dport;
    u64* tnl = map_lookup(tunnel_map, &key);
    if (tnl == 0) { return XDP_PASS; }
    u64 outer = *tnl;
    if (xdp_adjust_head(ctx, 0 - 20) != 0) { return XDP_DROP; }
    u64 d2 = ctx->data;
    u64 e2 = ctx->data_end;
    if (d2 + 54 > e2) { return XDP_DROP; }
    // write the outer IPv4 header
    *(u8*)(d2 + 14) = 0x45;
    *(u8*)(d2 + 15) = 0;
    *(u16*)(d2 + 16) = 0;
    *(u16*)(d2 + 18) = 1;
    *(u16*)(d2 + 20) = 0;
    *(u8*)(d2 + 22) = 64;
    *(u8*)(d2 + 23) = 4;
    *(u32*)(d2 + 26) = (u32)(outer >> 32);
    *(u32*)(d2 + 30) = (u32)outer;
    u32 sk = 0;
    u64* count = map_lookup(tunnel_stats, &sk);
    if (count != 0) { *count += 1; }
    return XDP_TX;
}
""",
)

XDP_ADJUST_TAIL = XdpWorkload(
    name="xdp_adjust_tail",
    origin="kernel",
    entry="xdp_adjust_tail",
    source="""
map percpu_array tail_stats(u32, u64, 2);

u32 xdp_adjust_tail(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    u64 length = end - data;
    if (length <= 578) { return XDP_PASS; }
    if (data + 34 > end) { return XDP_PASS; }
    u16 proto = *(u16*)(data + 12);
    if (proto != 0x0800) { return XDP_PASS; }
    u32 key = 0;
    u64* count = map_lookup(tail_stats, &key);
    if (count != 0) { *count += 1; }
    return XDP_DROP;
}
""",
)

XDP_RXQ_INFO = XdpWorkload(
    name="xdp_rxq_info",
    origin="kernel",
    entry="xdp_rxq_info",
    source="""
map percpu_array rxq_stats(u32, u64, 64);

u32 xdp_rxq_info(u8* ctx) {
    u32 queue = ctx->rx_queue_index;
    u32 key = queue & 0x3f;
    u64* count = map_lookup(rxq_stats, &key);
    if (count != 0) { *count += 1; }
    return XDP_PASS;
}
""",
)

XDP_REDIRECT_MAP = XdpWorkload(
    name="xdp_redirect_map",
    origin="kernel",
    entry="xdp_redirect_map",
    source="""
map array tx_port(u32, u32, 64);
map percpu_array redirect_stats(u32, u64, 2);

u32 xdp_redirect_map(u8* ctx) {
    u32 inif = ctx->ingress_ifindex;
    u32 key = inif & 0x3f;
    u32* port = map_lookup(tx_port, &key);
    if (port == 0) { return XDP_PASS; }
    u32 sk = 0;
    u64* count = map_lookup(redirect_stats, &sk);
    if (count != 0) { *count += 1; }
    return redirect_map(*port, 0);
}
""",
)

XDP_DDOS_MITIGATOR = XdpWorkload(
    name="xdp_ddos_mitigator",
    origin="hxdp",
    entry="xdp_ddos",
    source="""
map hash blacklist(u32, u64, 4096);
map percpu_array ddos_stats(u32, u64, 4);

u32 xdp_ddos(u8* ctx) {
""" + _PARSE_ETH_IP + """
    u64* hits = map_lookup(blacklist, &saddr);
    if (hits != 0) {
        *hits += 1;
        u32 dk = 0;
        u64* dropped = map_lookup(ddos_stats, &dk);
        if (dropped != 0) { *dropped += 1; }
        return XDP_DROP;
    }
    u32 pk = 1;
    u64* passed = map_lookup(ddos_stats, &pk);
    if (passed != 0) { *passed += 1; }
    return XDP_PASS;
}
""",
)

XDP_SIMPLE_FIREWALL = XdpWorkload(
    name="xdp_simple_firewall",
    origin="hxdp",
    entry="xdp_firewall",
    source="""
map hash fw_rules(u64, u32, 8192);
map lru_hash fw_sessions(u64, u32, 16384);
map percpu_array fw_stats(u32, u64, 8);

u32 xdp_firewall(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 6 && ipproto != 17) { return XDP_PASS; }
    if (data + 38 > end) { return XDP_DROP; }
    u16 sport = *(u16*)(data + 34);
    u16 dport = *(u16*)(data + 36);
    u64 session = ((u64)saddr << 32) | ((u64)sport << 16) | (u64)dport;
    u32* state = map_lookup(fw_sessions, &session);
    if (state != 0) {
        if (*state == 1) { return XDP_PASS; }
        return XDP_DROP;
    }
    u64 rule_key = ((u64)dport << 8) | (u64)ipproto;
    u32* verdict = map_lookup(fw_rules, &rule_key);
    u32 allowed = 0;
    if (verdict != 0) { allowed = *verdict; }
    u32 sval = allowed;
    map_update(fw_sessions, &session, &sval, BPF_ANY);
    u32 key = allowed & 1;
    u64* count = map_lookup(fw_stats, &key);
    if (count != 0) { *count += 1; }
    if (allowed == 1) { return XDP_PASS; }
    return XDP_DROP;
}
""",
)

XDP_MAP_ACCESS = XdpWorkload(
    name="xdp_map_access",
    origin="hxdp",
    entry="xdp_map_access",
    source="""
map percpu_array access_cnt(u32, u64, 1);

u32 xdp_map_access(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u32 key = 0;
    u64* value = map_lookup(access_cnt, &key);
    if (value != 0) { *value += 1; }
    return XDP_PASS;
}
""",
)

XDP_ETHER = XdpWorkload(
    name="xdp_ether",
    origin="hxdp",
    entry="xdp_ether",
    source="""
u32 xdp_ether(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u32 dst_lo = *(u32*)(data + 0);
    u16 dst_hi = *(u16*)(data + 4);
    u32 src_lo = *(u32*)(data + 6);
    u16 src_hi = *(u16*)(data + 10);
    *(u32*)(data + 0) = src_lo;
    *(u16*)(data + 4) = src_hi;
    *(u32*)(data + 6) = dst_lo;
    *(u16*)(data + 10) = dst_hi;
    return XDP_TX;
}
""",
)

CIL_LB4 = XdpWorkload(
    name="cil_lb4",
    origin="cilium",
    entry="cil_lb4",
    source="""
map hash lb4_services(u64, u64, 1024);
map array lb4_backends(u32, u64, 1024);
map percpu_array lb4_stats(u32, u64, 16);

u32 cil_lb4(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 6) { return XDP_PASS; }
    if (data + 38 > end) { return XDP_DROP; }
    u16 sport = *(u16*)(data + 34);
    u16 dport = *(u16*)(data + 36);
    u64 svc_key = ((u64)daddr << 16) | (u64)dport;
    u64* svc = map_lookup(lb4_services, &svc_key);
    if (svc == 0) { return XDP_PASS; }
    u64 svc_info = *svc;
    u32 count = (u32)(svc_info >> 32);
    if (count == 0) { return XDP_DROP; }
    u32 a = saddr;
    u32 b = ((u32)sport << 16) | (u32)dport;
    u32 c = 0x9e3779b9;
""" + _jhash_rounds("a", "b", "c", rounds=2) + """
    u32 backend_key = ((u32)svc_info + (c % count)) & 0x3ff;
    u64* backend = map_lookup(lb4_backends, &backend_key);
    if (backend == 0) { return XDP_DROP; }
    u64 be = *backend;
    u32 be_addr = (u32)be;
    u16 be_port = (u16)(be >> 32);
    *(u32*)(data + 30) = be_addr;
    *(u16*)(data + 36) = be_port;
    u32 sk = 0;
    u64* fwd = map_lookup(lb4_stats, &sk);
    if (fwd != 0) { *fwd += 1; }
    return XDP_TX;
}
""",
)

CIL_FROM_CONTAINER = XdpWorkload(
    name="cil_from_container",
    origin="cilium",
    entry="cil_from_container",
    source="""
map hash identity_map(u32, u32, 8192);
map hash policy_map(u64, u32, 16384);
map percpu_array policy_stats(u32, u64, 4);

u32 cil_from_container(u8* ctx) {
""" + _PARSE_ETH_IP + """
    u32* identity = map_lookup(identity_map, &saddr);
    u32 src_id = 0;
    if (identity != 0) { src_id = *identity; }
    u16 dport = 0;
    if (ipproto == 6 || ipproto == 17) {
        if (data + 38 > end) { return XDP_DROP; }
        dport = *(u16*)(data + 36);
    }
    u64 policy_key = ((u64)src_id << 32) | ((u64)ipproto << 16) | (u64)dport;
    u32* allow = map_lookup(policy_map, &policy_key);
    if (allow != 0 && *allow == 1) {
        u32 ak = 0;
        u64* acount = map_lookup(policy_stats, &ak);
        if (acount != 0) { *acount += 1; }
        return XDP_PASS;
    }
    u32 dk = 1;
    u64* dcount = map_lookup(policy_stats, &dk);
    if (dcount != 0) { *dcount += 1; }
    return XDP_DROP;
}
""",
)

XDP_PKTCNTR = XdpWorkload(
    name="xdp_pktcntr",
    origin="meta",
    entry="pktcntr",
    source="""
map percpu_array cntr_stats(u32, u64, 32);
map percpu_array sample_events(u32, u64, 1);

u32 pktcntr(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_PASS; }
    u16 proto = *(u16*)(data + 12);
    u32 key = 0;
    if (proto == 0x0800) { key = 1; }
    if (proto == 0x86dd) { key = 2; }
    u64* count = map_lookup(cntr_stats, &key);
    if (count != 0) { *count += 1; }
    u32 rnd = get_prandom_u32();
    if ((rnd & 0x3ff) == 0) {
        u8 event[16];
        *(u64*)(event + 0) = end - data;
        *(u64*)(event + 8) = (u64)proto;
        perf_event_output(ctx, sample_events, 0, event, 16);
    }
    return XDP_PASS;
}
""",
)

XDP_DROPCNT = XdpWorkload(
    name="xdp_dropcnt",
    origin="meta",
    entry="dropcnt",
    source="""
map percpu_array drop_reasons(u32, u64, 8);

u32 dropcnt(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) {
        u32 rk = 0;
        u64* runt = map_lookup(drop_reasons, &rk);
        if (runt != 0) { *runt += 1; }
        return XDP_DROP;
    }
    u16 proto = *(u16*)(data + 12);
    if (proto != 0x0800 && proto != 0x86dd) {
        u32 uk = 1;
        u64* unknown = map_lookup(drop_reasons, &uk);
        if (unknown != 0) { *unknown += 1; }
        return XDP_DROP;
    }
    if (data + 34 > end) {
        u32 tk = 2;
        u64* trunc = map_lookup(drop_reasons, &tk);
        if (trunc != 0) { *trunc += 1; }
        return XDP_DROP;
    }
    return XDP_PASS;
}
""",
)

XDP_PARSE_DNS = XdpWorkload(
    name="xdp_parse_dns",
    origin="cilium",
    entry="parse_dns",
    source="""
map hash dns_blocklist(u64, u32, 4096);
map percpu_array dns_stats(u32, u64, 4);

u32 parse_dns(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 17) { return XDP_PASS; }
    if (data + 42 > end) { return XDP_PASS; }
    u16 dport = *(u16*)(data + 36);
    if (dport != 53) { return XDP_PASS; }
    // hash the qname labels (bounded walk over 24 bytes)
    u64 qname = data + 54;
    u64 hash = 0xcbf29ce484222325;
    for (u64 i = 0; i < 24; i += 1) {
        if (qname + i + 1 > end) { break; }
        u8 byte = *(u8*)(qname + i);
        if (byte == 0) { break; }
        hash = (hash ^ (u64)byte) * 0x100000001b3;
    }
    u32* blocked = map_lookup(dns_blocklist, &hash);
    if (blocked != 0) {
        u32 bk = 0;
        u64* bcount = map_lookup(dns_stats, &bk);
        if (bcount != 0) { *bcount += 1; }
        return XDP_DROP;
    }
    return XDP_PASS;
}
""",
)

XDP_RATE_LIMITER = XdpWorkload(
    name="xdp_rate_limiter",
    origin="hxdp",
    entry="rate_limiter",
    source="""
map lru_hash buckets(u32, u64, 16384);
map percpu_array rl_stats(u32, u64, 4);

u32 rate_limiter(u8* ctx) {
""" + _PARSE_ETH_IP + """
    u64 now = ktime_get_ns();
    u64* bucket = map_lookup(buckets, &saddr);
    if (bucket == 0) {
        u64 fresh = (now & 0xffffffffffff0000) | 100;
        map_update(buckets, &saddr, &fresh, BPF_ANY);
        return XDP_PASS;
    }
    u64 state = *bucket;
    u64 tokens = state & 0xffff;
    u64 last = state >> 16;
    u64 elapsed = (now >> 16) - last;
    tokens = tokens + elapsed / 1000;
    if (tokens > 100) { tokens = 100; }
    if (tokens == 0) {
        u32 dk = 0;
        u64* dropped = map_lookup(rl_stats, &dk);
        if (dropped != 0) { *dropped += 1; }
        return XDP_DROP;
    }
    *bucket = ((now >> 16) << 16) | (tokens - 1);
    return XDP_PASS;
}
""",
)

XDP_QUIC_LB = XdpWorkload(
    name="xdp_quic_lb",
    origin="meta",
    entry="quic_lb",
    source="""
map array quic_workers(u32, u32, 128);
map percpu_array quic_stats(u32, u64, 4);

u32 quic_lb(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 17) { return XDP_PASS; }
    if (data + 50 > end) { return XDP_PASS; }
    u16 dport = *(u16*)(data + 36);
    if (dport != 443) { return XDP_PASS; }
    // connection id routing: the server id lives in the QUIC CID
    u8 first = *(u8*)(data + 42);
    u32 worker = 0;
    if ((first & 0x80) != 0) {
        worker = (u32)*(u8*)(data + 43) & 0x7f;
    } else {
        u32 cid = *(u32*)(data + 43);
        worker = cid & 0x7f;
    }
    u32* target = map_lookup(quic_workers, &worker);
    if (target == 0) { return XDP_PASS; }
    u32 sk = 0;
    u64* count = map_lookup(quic_stats, &sk);
    if (count != 0) { *count += 1; }
    return XDP_TX;
}
""",
)

XDP_L4_CSUM = XdpWorkload(
    name="xdp_l4_csum",
    origin="hxdp",
    entry="l4_csum",
    source="""
map percpu_array csum_stats(u32, u64, 2);

u32 l4_csum(u8* ctx) {
""" + _PARSE_ETH_IP + """
    if (ipproto != 17) { return XDP_PASS; }
    if (data + 42 > end) { return XDP_PASS; }
    // incremental checksum over the first 8 payload bytes
    u64 sum = 0;
    sum += (u64)*(u16*)(data + 34);
    sum += (u64)*(u16*)(data + 36);
    sum += (u64)*(u16*)(data + 38);
    sum += (u64)*(u16*)(data + 40);
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    *(u16*)(data + 40) = (u16)(~sum & 0xffff);
    u32 key = 0;
    u64* count = map_lookup(csum_stats, &key);
    if (count != 0) { *count += 1; }
    return XDP_TX;
}
""",
)

ALL_XDP: List[XdpWorkload] = [
    XDP1,
    XDP2,
    XDP_ROUTER_IPV4,
    XDP_FWD,
    XDP_BALANCER,
    XDP_TX_IPTUNNEL,
    XDP_ADJUST_TAIL,
    XDP_RXQ_INFO,
    XDP_REDIRECT_MAP,
    XDP_DDOS_MITIGATOR,
    XDP_SIMPLE_FIREWALL,
    XDP_MAP_ACCESS,
    XDP_ETHER,
    CIL_LB4,
    CIL_FROM_CONTAINER,
    XDP_PKTCNTR,
    XDP_DROPCNT,
    XDP_PARSE_DNS,
    XDP_RATE_LIMITER,
    XDP_QUIC_LB,
    XDP_L4_CSUM,
][:19]

BY_NAME: Dict[str, XdpWorkload] = {w.name: w for w in ALL_XDP}

#: the four programs that forward traffic (paper Table 3)
FORWARDING = ("xdp2", "xdp_router_ipv4", "xdp_fwd", "xdp-balancer")

XDP_CTX_SIZE = 24


def compile_workload(workload: XdpWorkload, optimize: bool = False,
                     pgo=None, superopt=None,
                     **pipeline_kwargs) -> BpfProgram:
    """Compile one XDP workload, optionally through Merlin.

    *pgo* and *superopt* forward to :meth:`MerlinPipeline.compile`;
    remaining keyword arguments configure the pipeline itself."""
    module = compile_source(workload.source, workload.name)
    func = module.get(workload.entry)
    if optimize:
        from ..core import MerlinPipeline

        pipeline = MerlinPipeline(**pipeline_kwargs)
        program, _ = pipeline.compile(func, module,
                                      prog_type=ProgramType.XDP,
                                      ctx_size=XDP_CTX_SIZE,
                                      pgo=pgo, superopt=superopt)
        return program
    from ..codegen import compile_function

    return compile_function(func, module, prog_type=ProgramType.XDP,
                            ctx_size=XDP_CTX_SIZE)
