"""Map pre-population for XDP workloads.

Lookups against empty maps would make every hit-path dead code (and let
a test-based equivalence oracle delete it), so both the network harness
and the K2 baseline seed each workload's maps with entries matching the
traffic generator's flow population.
"""

from __future__ import annotations

import random
import struct

from ..vm import Machine
from .packets import TrafficGenerator


def seed_maps(machine: Machine, generator: TrafficGenerator,
              coverage: float = 1.0, seed: int = 99) -> None:
    """Populate workload maps so lookups hit (routes, VIPs, backends...).

    ``coverage`` < 1 leaves a random fraction of entries absent so both
    hit and miss paths stay live — essential when the caller is an
    equivalence oracle rather than a throughput harness.
    """
    rng = random.Random(seed)
    keep = lambda: rng.random() < coverage
    u32 = lambda v: struct.pack("<I", v & 0xFFFFFFFF)
    u64 = lambda v: struct.pack("<Q", v & (2**64 - 1))
    for name, bpf_map in machine.maps.items():
        if name == "route_table":
            for prefix in range(bpf_map.spec.max_entries):
                if keep():
                    bpf_map.update(u32(prefix), u32(2 if keep() else 0))
        elif name == "vip_map":
            for i, (src, dst, sport, dport, proto) in enumerate(
                    generator.flows[:400]):
                if not keep():
                    continue
                key = ((dst & 0xFFFFFFFF) << 32) | ((dport & 0xFFFF) << 8) | proto
                if bpf_map.update(u64(key), u32(i % 64)) != 0:
                    break
        elif name == "ring":
            for slot in range(bpf_map.spec.max_entries):
                bpf_map.update(u32(slot), u32(slot % 256))
        elif name == "reals":
            for idx in range(bpf_map.spec.max_entries):
                info = (0x0A010000 + idx) | ((8000 + idx) << 32)
                bpf_map.update(u32(idx), u64(info))
        elif name == "tx_port":
            for idx in range(bpf_map.spec.max_entries):
                bpf_map.update(u32(idx), u32(2))
        elif name == "tunnel_map":
            for src, dst, sport, dport, proto in generator.flows[:200]:
                if keep():
                    key = ((dst & 0xFFFFFFFF) << 16) | (dport & 0xFFFF)
                    bpf_map.update(u64(key), u64(0xC0A80101C0A80202))
        elif name == "lb4_services":
            for src, dst, sport, dport, proto in generator.flows[:400]:
                if keep():
                    key = ((dst & 0xFFFFFFFF) << 16) | (dport & 0xFFFF)
                    bpf_map.update(u64(key), u64((8 << 32) | 0))
        elif name == "lb4_backends":
            for idx in range(bpf_map.spec.max_entries):
                info = (0x0A020000 + idx) | ((9000 + idx) << 32)
                bpf_map.update(u32(idx), u64(info))
        elif name == "identity_map":
            for src, dst, sport, dport, proto in generator.flows[:400]:
                if keep():
                    bpf_map.update(u32(src), u32(src & 0xFFFF))
        elif name == "policy_map":
            for i, (src, dst, sport, dport, proto) in enumerate(
                    generator.flows[:400]):
                key = (((src & 0xFFFF)) << 32) | (proto << 16) | dport
                bpf_map.update(u64(key), u32(1 if i % 3 else 0))
        elif name == "fw_rules":
            for dport in (80, 443, 53, 8080, 6443):
                for proto in (6, 17):
                    bpf_map.update(u64((dport << 8) | proto),
                                   u32(1 if dport != 6443 else 0))
        elif name == "quic_workers":
            for idx in range(bpf_map.spec.max_entries):
                bpf_map.update(u32(idx), u32(2))
        elif name == "blacklist":
            for src, *_ in generator.flows[:16]:
                bpf_map.update(u32(src), u64(0))
        # per-flow *state* maps: seeding entries for known flows keeps the
        # existing-state paths live (a single-run oracle would otherwise
        # see them as dead code)
        elif name == "conntrack":
            for i, (src, dst, sport, dport, proto) in enumerate(
                    generator.flows[:200]):
                if keep():
                    key = ((src & 0xFFFFFFFF) << 16) | (sport & 0xFFFF)
                    bpf_map.update(u64(key), u32(i % 256))
        elif name == "fw_sessions":
            for i, (src, dst, sport, dport, proto) in enumerate(
                    generator.flows[:200]):
                if keep():
                    key = (((src & 0xFFFFFFFF) << 32)
                           | ((sport & 0xFFFF) << 16) | (dport & 0xFFFF))
                    bpf_map.update(u64(key), u32(i % 2))
        elif name == "buckets":
            for i, (src, *_) in enumerate(generator.flows[:200]):
                if keep():
                    tokens = 0 if i % 4 == 0 else 2 + i % 50
                    bpf_map.update(u32(src), u64(tokens))
        elif name == "dns_blocklist":
            # generated DNS payloads are zero-filled, so their qname hash
            # is the bare FNV offset basis: seeding it makes the blocked
            # path reachable under test
            bpf_map.update(u64(0xCBF29CE484222325), u32(1))
