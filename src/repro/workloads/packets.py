"""Packet trace generation (the reproduction's T-Rex traffic generator).

Builds Ethernet/IPv4/TCP|UDP frames with seeded randomness.  Multi-byte
header fields are written little-endian to match the workloads' reads
(network byte order is elided throughout the reproduction; see
``workloads.xdp``).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

ETH_P_IP = 0x0800
ETH_P_IPV6 = 0x86DD
ETH_P_VLAN = 0x8100

IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_ICMP = 1


@dataclass
class FlowProfile:
    """Traffic mix knobs for the generator."""

    ipv4_fraction: float = 0.97
    tcp_fraction: float = 0.6
    udp_fraction: float = 0.35  # remainder is ICMP
    vlan_fraction: float = 0.0
    num_flows: int = 256
    dst_port_choices: Tuple[int, ...] = (80, 443, 53, 8080, 6443)


def build_packet(
    size: int = 64,
    src_ip: int = 0x0A000001,
    dst_ip: int = 0x0A000002,
    src_port: int = 12345,
    dst_port: int = 80,
    proto: int = IPPROTO_TCP,
    eth_proto: int = ETH_P_IP,
    ttl: int = 64,
    vlan: Optional[int] = None,
) -> bytes:
    """One frame, padded/truncated to *size* bytes (min 64)."""
    size = max(size, 60)
    frame = bytearray()
    frame += bytes(6)  # dst mac
    frame += bytes([0, 1, 2, 3, 4, 5])  # src mac
    if vlan is not None:
        frame += struct.pack("<H", ETH_P_VLAN)
        frame += struct.pack("<H", vlan)
    frame += struct.pack("<H", eth_proto)
    l3 = len(frame)
    if eth_proto == ETH_P_IP:
        payload_len = max(size - l3 - 20, 8)
        frame += bytes([0x45, 0])  # version/ihl, tos
        frame += struct.pack("<H", 20 + payload_len)  # tot_len
        frame += struct.pack("<H", 0)  # id
        frame += struct.pack("<H", 0)  # frag
        frame += bytes([ttl, proto])
        frame += struct.pack("<H", 0)  # checksum
        frame += struct.pack("<I", src_ip)
        frame += struct.pack("<I", dst_ip)
        if proto in (IPPROTO_TCP, IPPROTO_UDP):
            frame += struct.pack("<H", src_port)
            frame += struct.pack("<H", dst_port)
            frame += struct.pack("<I", 1)  # seq / len+csum
    if len(frame) < size:
        frame += bytes(size - len(frame))
    return bytes(frame[:size])


class TrafficGenerator:
    """Seeded stream of frames over a fixed flow population."""

    def __init__(self, profile: Optional[FlowProfile] = None, seed: int = 42):
        self.profile = profile if profile is not None else FlowProfile()
        self.rng = random.Random(seed)
        self.flows = self._make_flows()

    def _make_flows(self) -> List[Tuple[int, int, int, int, int]]:
        flows = []
        for _ in range(self.profile.num_flows):
            roll = self.rng.random()
            if roll < self.profile.tcp_fraction:
                proto = IPPROTO_TCP
            elif roll < self.profile.tcp_fraction + self.profile.udp_fraction:
                proto = IPPROTO_UDP
            else:
                proto = IPPROTO_ICMP
            flows.append((
                self.rng.getrandbits(32),  # src ip
                0x0A000000 | self.rng.randrange(1, 255),  # dst ip (VIP pool)
                self.rng.randrange(1024, 65536),  # src port
                self.rng.choice(self.profile.dst_port_choices),
                proto,
            ))
        return flows

    def packet(self, size: int = 64) -> bytes:
        src_ip, dst_ip, sport, dport, proto = self.rng.choice(self.flows)
        if self.rng.random() >= self.profile.ipv4_fraction:
            return build_packet(size, eth_proto=ETH_P_IPV6)
        vlan = 100 if self.rng.random() < self.profile.vlan_fraction else None
        # mostly fresh packets, but a trickle of expiring TTLs
        ttl = 64 if self.rng.random() < 0.95 else self.rng.choice((0, 1, 2))
        return build_packet(size, src_ip=src_ip, dst_ip=dst_ip,
                            src_port=sport, dst_port=dport, proto=proto,
                            vlan=vlan, ttl=ttl)

    def stream(self, count: int, size: int = 64) -> Iterator[bytes]:
        for _ in range(count):
            yield self.packet(size)
