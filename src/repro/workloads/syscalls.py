"""lmbench- and postmark-style workload models (paper Table 4).

Each micro test is a named operation with a vanilla latency (the
paper's measured "Vanilla" column, in microseconds) and the set of
tracepoint events one execution fires.  A security system attaches its
eBPF programs to hooks; the overhead harness adds the simulated eBPF
execution time of every fired program to the vanilla latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class MicroTest:
    """One lmbench operation."""

    name: str
    vanilla_us: float
    #: (hook substring, fires) — programs attached to matching hooks run
    events: Tuple[Tuple[str, int], ...]


#: paper Table 4's Vanilla column, with the syscall mix each op drives
LMBENCH_TESTS: Tuple[MicroTest, ...] = (
    MicroTest("NULL call", 0.06, (("sys_enter", 1), ("sys_exit", 1))),
    MicroTest("NULL I/O", 0.12, (("sys_enter_read", 1), ("sys_exit_read", 1),
                                 ("sys_enter_write", 1),
                                 ("sys_exit_write", 1))),
    MicroTest("stat", 0.36, (("sys_enter_open", 1), ("sys_exit_open", 1))),
    MicroTest("open/close file", 0.79, (("sys_enter_open", 2),
                                        ("sys_exit_open", 2),
                                        ("sys_enter_close", 2))),
    MicroTest("signal install", 0.10, (("sys_enter", 2), ("sys_exit", 2))),
    MicroTest("signal handle", 0.83, (("sys_enter", 3), ("sys_exit", 3))),
    MicroTest("fork process", 72.87, (("sys_enter_clone", 1),
                                      ("sys_exit_clone", 1),
                                      ("sched_process_exit", 1),
                                      ("sys_enter", 24), ("sys_exit", 24))),
    MicroTest("exec process", 321.53, (("sys_enter_execve", 1),
                                       ("sys_exit_execve", 1),
                                       ("sys_enter_open", 12),
                                       ("sys_exit_open", 12),
                                       ("sys_enter", 60), ("sys_exit", 60))),
    MicroTest("shell process", 738.76, (("sys_enter_execve", 2),
                                        ("sys_exit_execve", 2),
                                        ("sys_enter_clone", 2),
                                        ("sys_exit_clone", 2),
                                        ("sys_enter_open", 30),
                                        ("sys_exit_open", 30),
                                        ("sys_enter", 150),
                                        ("sys_exit", 150))),
    MicroTest("file create (0k)", 4.78, (("sys_enter_open", 2),
                                         ("sys_exit_open", 2),
                                         ("sys_enter_close", 2),
                                         ("sys_enter_write", 1),
                                         ("sys_exit_write", 1))),
    MicroTest("file delete (0k)", 3.02, (("sys_enter_unlink", 2),
                                         ("sys_enter", 4), ("sys_exit", 4))),
    MicroTest("file create (10k)", 9.73, (("sys_enter_open", 2),
                                          ("sys_exit_open", 2),
                                          ("sys_enter_close", 2),
                                          ("sys_enter_write", 6),
                                          ("sys_exit_write", 6))),
    MicroTest("file delete (10k)", 5.00, (("sys_enter_unlink", 2),
                                          ("sys_enter", 6), ("sys_exit", 6))),
    MicroTest("AF_UNIX", 3.42, (("sys_enter_connect", 1),
                                ("sys_exit_connect", 1),
                                ("sys_enter_read", 4), ("sys_exit_read", 4),
                                ("sys_enter_write", 4),
                                ("sys_exit_write", 4))),
    MicroTest("pipe", 5.24, (("sys_enter_read", 6), ("sys_exit_read", 6),
                             ("sys_enter_write", 6), ("sys_exit_write", 6))),
)


@dataclass(frozen=True)
class MacroWorkload:
    """A postmark-style transaction mix."""

    name: str
    vanilla_seconds: float
    #: total events fired over the whole run
    events: Tuple[Tuple[str, int], ...]


POSTMARK = MacroWorkload(
    name="Postmark",
    vanilla_seconds=58.86,
    events=(
        ("sys_enter_open", 60_000),
        ("sys_exit_open", 60_000),
        ("sys_enter_close", 60_000),
        ("sys_enter_read", 180_000),
        ("sys_exit_read", 180_000),
        ("sys_enter_write", 220_000),
        ("sys_exit_write", 220_000),
        ("sys_enter_unlink", 25_000),
        ("sys_enter", 400_000),
        ("sys_exit", 400_000),
    ),
)


def hook_matches(hook: str, event: str) -> bool:
    """Does a program attached to *hook* fire for *event*?

    Tracepoint hooks match exactly; the generic "sys_enter"/"sys_exit"
    raw-tracepoint events fire every program on a sys_* hook of that
    direction (how Sysdig-style agents attach).
    """
    if hook == event:
        return True
    if event == "sys_enter":
        return hook.startswith("sys_enter")
    if event == "sys_exit":
        return hook.startswith("sys_exit")
    return False


def random_ctx(rng: random.Random, size: int) -> bytes:
    """Synthesized tracepoint context: plausible syscall arg payload."""
    return bytes(rng.randrange(256) for _ in range(size))
