"""The eBPF virtual machine: an interpreter with a cycle/cache/branch
cost model attached.

A :class:`Machine` owns the program, its maps, and the hardware models;
map contents, cache state, and predictor state persist across ``run``
calls so repeated invocations (packet loops, syscall storms) behave like
an attached kernel program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hw import BranchPredictor, CacheModel, PerfCounters
from ..isa import BpfProgram, Instruction
from ..isa import opcodes as op
from ..isa.helpers import BPF_PSEUDO_MAP_FD, HELPER_NAMES
from . import cost
from .helpers import HelperRuntime, TaskContext
from .maps import BpfMap, create_map
from .memory import CTX_BASE, Memory, MemoryFault, PACKET_BASE, STACK_BASE

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

STACK_TOP = STACK_BASE + op.STACK_SIZE


class VmFault(Exception):
    """Raised when the program faults at run time."""


@dataclass
class RunResult:
    """Outcome of one program invocation."""

    return_value: int
    counters: PerfCounters  # delta for this run only

    @property
    def xdp_action(self) -> int:
        return self.return_value & _U32


#: engines selectable via ``Machine(engine=...)``
ENGINES = ("reference", "fast", "jit")

#: the kernel-stack poison pattern, allocated once (not per run)
_STACK_FILL = b"\xa5" * op.STACK_SIZE


class Machine:
    """Interpreter plus performance model for one loaded program.

    ``engine`` selects the execution engine: ``"reference"`` is the
    canonical if/elif interpreter below; ``"fast"`` is the pre-decoded
    fast-dispatch engine (:mod:`repro.vm.engine`) with basic-block
    superinstructions; ``"jit"`` compiles the whole program into one
    generated-Python function (:mod:`repro.vm.engine.jit`) with loop
    regions and guard specialization, deoptimizing onto the fast
    engine's dispatch loop when a guard fails.  All three produce
    bit-identical :class:`RunResult`s and machine state.
    """

    def __init__(
        self,
        program: BpfProgram,
        cache: Optional[CacheModel] = None,
        branch: Optional[BranchPredictor] = None,
        seed: int = 0,
        max_insns: int = 4_000_000,
        task: Optional[TaskContext] = None,
        engine: str = "reference",
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (choose from {', '.join(ENGINES)})"
            )
        self.program = program
        self.engine = engine
        self.memory = Memory()
        self.cache = cache if cache is not None else CacheModel()
        self.branch = branch if branch is not None else BranchPredictor()
        self.counters = PerfCounters()
        self.max_insns = max_insns
        self.task = task if task is not None else TaskContext()
        self.helpers = HelperRuntime(self, seed=seed)
        self.maps: Dict[str, BpfMap] = {}
        self.maps_by_id: Dict[int, BpfMap] = {}
        for index, (name, spec) in enumerate(program.maps.items()):
            bpf_map = create_map(spec, self.memory)
            self.maps[name] = bpf_map
            self.maps_by_id[index + 1] = bpf_map
        self._slots = self._expand_slots(program.insns)
        self._stack = self.memory.add_region("stack", STACK_BASE, op.STACK_SIZE)
        self._ctx = self.memory.add_region("ctx", CTX_BASE, max(program.ctx_size, 8))
        self._fast = None
        if engine == "fast":
            from .engine import bind_machine

            self._fast = bind_machine(self)
        elif engine == "jit":
            from .engine.jit import bind_jit

            self._fast = bind_jit(self)

    @staticmethod
    def _expand_slots(insns: List[Instruction]) -> List[Optional[Instruction]]:
        slots: List[Optional[Instruction]] = []
        for insn in insns:
            slots.append(insn)
            if insn.slots == 2:
                slots.append(None)
        return slots

    # ------------------------------------------------------------------ model
    def touch_memory(self, addr: int, size: int) -> None:
        """Route helper-internal memory traffic through the cache model."""
        self.counters.cycles += self.cache.access(addr, size)

    @property
    def stats(self) -> Dict[str, object]:
        """Engine-level statistics: the shared content-keyed caches
        (decode + JIT code objects) and, for the jit engine, this
        machine's compilation/deopt details."""
        from .engine import decode_cache_stats
        from .engine.jit import JitExecution, jit_cache_stats

        decode = decode_cache_stats()
        jit = jit_cache_stats()
        stats: Dict[str, object] = {
            "engine": self.engine,
            "decode_cache": {
                "hits": decode.hits,
                "misses": decode.misses,
                "hit_rate": decode.hit_rate,
            },
            "jit_cache": {
                "hits": jit.hits,
                "misses": jit.misses,
                "hit_rate": jit.hit_rate,
            },
        }
        if isinstance(self._fast, JitExecution):
            stats["jit"] = self._fast.stats
        return stats

    #: XDP headroom available for xdp_adjust_head (XDP_PACKET_HEADROOM)
    PACKET_HEADROOM = 256

    #: zeroed headroom prefix, reused when the packet region is recycled
    _ZERO_HEADROOM = bytes(PACKET_HEADROOM)

    def set_packet(self, packet: bytes) -> int:
        """Install packet bytes; returns the guest address of the data.

        The region includes the kernel's 256-byte headroom before the
        data so ``xdp_adjust_head`` with a negative delta stays mapped.
        The existing packet region (and its ``bytearray``) is reused
        across invocations — resized in place when the length changes —
        so a packet loop neither churns the region dict nor reallocates
        the buffer; a fresh region behaves identically (zeroed headroom,
        exact ``data_end`` bound).
        """
        needed = self.PACKET_HEADROOM + len(packet)
        region = self.memory.regions.get("packet")
        if region is None:
            region = self.memory.add_region("packet", PACKET_BASE, needed)
        else:
            data = region.data
            if len(data) > needed:
                del data[needed:]
            elif len(data) < needed:
                data.extend(bytes(needed - len(data)))
            # a fresh region's headroom is zero-filled; match it
            data[: self.PACKET_HEADROOM] = self._ZERO_HEADROOM
        region.data[self.PACKET_HEADROOM:] = packet
        return region.base + self.PACKET_HEADROOM

    def write_ctx(self, data: bytes) -> None:
        if len(data) > len(self._ctx.data):
            raise VmFault(
                f"context of {len(data)} bytes exceeds declared "
                f"ctx_size {len(self._ctx.data)}"
            )
        self._ctx.data[: len(data)] = data

    # -------------------------------------------------------------------- run
    def run(self, ctx: bytes = b"", packet: Optional[bytes] = None) -> RunResult:
        """Execute the program once; r1 points at the context."""
        if packet is not None:
            data_addr = self.set_packet(packet)
            header = data_addr.to_bytes(8, "little") + (
                data_addr + len(packet)
            ).to_bytes(8, "little")
            self.write_ctx(header + ctx)
        elif ctx:
            self.write_ctx(ctx)

        before = self.counters.snapshot()
        regs = [0] * 11
        regs[op.R1] = CTX_BASE
        regs[op.R10] = STACK_TOP
        # the kernel stack is NOT zeroed between invocations; a garbage
        # pattern catches programs relying on uninitialized slots
        self._stack.data[:] = _STACK_FILL

        try:
            if self._fast is not None:
                return_value = self._fast.execute(regs)
            else:
                return_value = self._execute(regs)
        finally:
            # mirror the model counters once per run (not per
            # instruction); the delta below and any caller reading
            # ``machine.counters`` after a fault both see synced values
            counters = self.counters
            counters.cache_references = self.cache.stats.references
            counters.cache_misses = self.cache.stats.misses
            counters.branch_misses = self.branch.stats.mispredictions
        delta = self.counters.delta(before)
        return RunResult(return_value=return_value, counters=delta)

    def _execute(self, regs: List[int]) -> int:
        slots = self._slots
        counters = self.counters
        pc = 0
        executed = 0
        n = len(slots)
        while True:
            if pc < 0 or pc >= n:
                raise VmFault(f"pc {pc} out of program bounds")
            insn = slots[pc]
            if insn is None:
                raise VmFault(f"jump into the middle of ld_imm64 at slot {pc}")
            executed += 1
            if executed > self.max_insns:
                raise VmFault("instruction budget exhausted (infinite loop?)")
            counters.instructions += 1
            counters.cycles += cost.base_cost(insn)

            cls = insn.opcode & 0x07
            if cls in (op.BPF_ALU64, op.BPF_ALU):
                self._alu(insn, regs, cls == op.BPF_ALU)
                pc += 1
            elif cls == op.BPF_LDX:
                addr = (regs[insn.src] + insn.off) & _U64
                size = insn.size_bytes
                counters.cycles += self.cache.access(addr, size)
                try:
                    regs[insn.dst] = self.memory.load(addr, size)
                except MemoryFault as exc:
                    raise VmFault(str(exc)) from None
                pc += 1
            elif cls in (op.BPF_ST, op.BPF_STX):
                pc = self._store(insn, regs, pc)
            elif cls == op.BPF_LD:
                if not insn.is_ld_imm64:
                    raise VmFault(f"unsupported LD mode {insn.opcode:#x}")
                regs[insn.dst] = insn.imm & _U64
                pc += 2
            elif cls in (op.BPF_JMP, op.BPF_JMP32):
                jop = insn.opcode & op.JMP_OP_MASK
                if jop == op.BPF_EXIT:
                    return regs[op.R0]
                if jop == op.BPF_CALL:
                    counters.helper_calls += 1
                    name = HELPER_NAMES.get(insn.imm, "")
                    counters.cycles += cost.HELPER_COST.get(
                        name, cost.DEFAULT_HELPER_COST
                    )
                    regs[op.R0] = self.helpers.call(insn.imm, regs[1:6])
                    pc += 1
                elif jop == op.BPF_JA:
                    counters.branches += 1
                    pc += 1 + insn.off
                else:
                    taken = self._condition(insn, regs, cls == op.BPF_JMP32)
                    counters.branches += 1
                    counters.cycles += self.branch.record(pc, taken)
                    pc += 1 + insn.off if taken else 1
            else:
                raise VmFault(f"unknown opcode {insn.opcode:#x}")

    # ------------------------------------------------------------------- ALU
    def _alu(self, insn: Instruction, regs: List[int], is32: bool) -> None:
        aop = insn.opcode & op.ALU_OP_MASK
        dst = insn.dst
        mask = _U32 if is32 else _U64
        bits = 32 if is32 else 64
        if insn.uses_imm:
            # immediates are sign-extended to the operation width
            operand = insn.imm & mask
        else:
            operand = regs[insn.src] & mask
        value = regs[dst] & mask

        if aop == op.BPF_MOV:
            result = operand
        elif aop == op.BPF_ADD:
            result = value + operand
        elif aop == op.BPF_SUB:
            result = value - operand
        elif aop == op.BPF_MUL:
            result = value * operand
        elif aop == op.BPF_DIV:
            result = value // operand if operand else 0
        elif aop == op.BPF_MOD:
            result = value % operand if operand else value
        elif aop == op.BPF_OR:
            result = value | operand
        elif aop == op.BPF_AND:
            result = value & operand
        elif aop == op.BPF_XOR:
            result = value ^ operand
        elif aop == op.BPF_LSH:
            result = value << (operand % bits)
        elif aop == op.BPF_RSH:
            result = (value & mask) >> (operand % bits)
        elif aop == op.BPF_ARSH:
            shift = operand % bits
            signed = value - (1 << bits) if value >> (bits - 1) else value
            result = signed >> shift
        elif aop == op.BPF_NEG:
            result = -value
        elif aop == op.BPF_END:
            result = self._bswap(value, insn)
        else:
            raise VmFault(f"unknown ALU op {aop:#x}")
        regs[dst] = result & mask  # ALU32 zero-extends into the 64-bit reg

    @staticmethod
    def _bswap(value: int, insn: Instruction) -> int:
        width = insn.imm
        data = (value & ((1 << width) - 1)).to_bytes(width // 8, "little")
        if (insn.opcode & op.SRC_MASK) == op.BPF_X:  # to big-endian
            return int.from_bytes(data, "big")
        return int.from_bytes(data, "little")

    # ----------------------------------------------------------------- stores
    def _store(self, insn: Instruction, regs: List[int], pc: int) -> int:
        addr = (regs[insn.dst] + insn.off) & _U64
        size = insn.size_bytes
        if insn.is_atomic:
            self.counters.atomics += 1
            self.counters.cycles += self.cache.access(addr, size)
            try:
                old = self.memory.load(addr, size)
            except MemoryFault as exc:
                raise VmFault(str(exc)) from None
            operand = regs[insn.src] & ((1 << (size * 8)) - 1)
            aop = insn.imm & ~op.BPF_FETCH
            if aop == op.BPF_ATOMIC_ADD:
                new = old + operand
            elif aop == op.BPF_ATOMIC_AND:
                new = old & operand
            elif aop == op.BPF_ATOMIC_OR:
                new = old | operand
            elif aop == op.BPF_ATOMIC_XOR:
                new = old ^ operand
            elif insn.imm == op.BPF_XCHG:
                new = operand
            else:
                raise VmFault(f"unsupported atomic {insn.imm:#x}")
            self.memory.store(addr, size, new)
            if insn.imm & op.BPF_FETCH:
                regs[insn.src] = old
            return pc + 1
        value = insn.imm if insn.is_store_imm else regs[insn.src]
        self.counters.cycles += self.cache.access(addr, size)
        try:
            self.memory.store(addr, size, value & _U64)
        except MemoryFault as exc:
            raise VmFault(str(exc)) from None
        return pc + 1

    # ------------------------------------------------------------ conditions
    @staticmethod
    def _condition(insn: Instruction, regs: List[int], is32: bool) -> bool:
        mask = _U32 if is32 else _U64
        bits = 32 if is32 else 64
        lhs = regs[insn.dst] & mask
        if insn.uses_imm:
            rhs = insn.imm & mask
        else:
            rhs = regs[insn.src] & mask

        def signed(x: int) -> int:
            return x - (1 << bits) if x >> (bits - 1) else x

        jop = insn.opcode & op.JMP_OP_MASK
        if jop == op.BPF_JEQ:
            return lhs == rhs
        if jop == op.BPF_JNE:
            return lhs != rhs
        if jop == op.BPF_JGT:
            return lhs > rhs
        if jop == op.BPF_JGE:
            return lhs >= rhs
        if jop == op.BPF_JLT:
            return lhs < rhs
        if jop == op.BPF_JLE:
            return lhs <= rhs
        if jop == op.BPF_JSET:
            return bool(lhs & rhs)
        if jop == op.BPF_JSGT:
            return signed(lhs) > signed(rhs)
        if jop == op.BPF_JSGE:
            return signed(lhs) >= signed(rhs)
        if jop == op.BPF_JSLT:
            return signed(lhs) < signed(rhs)
        if jop == op.BPF_JSLE:
            return signed(lhs) <= signed(rhs)
        raise VmFault(f"unknown jump op {jop:#x}")
