"""Runtime implementations of the eBPF helper functions.

Helpers receive the machine (for memory/maps/counters) and the five
argument registers; they return the new r0 value.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..isa.helpers import HELPER_IDS, HELPER_NAMES
from .maps import BpfMap
from .memory import MemoryFault

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Machine

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


class HelperError(Exception):
    """Raised when a helper is called with invalid state."""


class TaskContext:
    """The 'current task' a tracing program observes."""

    def __init__(self, pid: int = 1234, tgid: int = 1234, uid: int = 1000,
                 gid: int = 1000, comm: str = "postmark"):
        self.pid = pid
        self.tgid = tgid
        self.uid = uid
        self.gid = gid
        self.comm = comm


class HelperRuntime:
    """Dispatch table from helper id to implementation."""

    def __init__(self, machine: "Machine", seed: int = 0):
        self.machine = machine
        self.rng = random.Random(seed)
        self.printk_count = 0
        self.output_bytes = 0  # bytes pushed to user space (perf/ringbuf)
        self.redirects: List[int] = []  # ifindexes passed to redirect()
        self._table: Dict[int, Callable[[List[int]], int]] = {
            HELPER_IDS["map_lookup_elem"]: self._map_lookup_elem,
            HELPER_IDS["map_update_elem"]: self._map_update_elem,
            HELPER_IDS["map_delete_elem"]: self._map_delete_elem,
            HELPER_IDS["probe_read"]: self._probe_read,
            HELPER_IDS["probe_read_str"]: self._probe_read,
            HELPER_IDS["ktime_get_ns"]: self._ktime_get_ns,
            HELPER_IDS["ktime_get_boot_ns"]: self._ktime_get_ns,
            HELPER_IDS["trace_printk"]: self._trace_printk,
            HELPER_IDS["get_prandom_u32"]: self._get_prandom_u32,
            HELPER_IDS["get_smp_processor_id"]: self._get_smp_processor_id,
            HELPER_IDS["get_current_pid_tgid"]: self._get_current_pid_tgid,
            HELPER_IDS["get_current_uid_gid"]: self._get_current_uid_gid,
            HELPER_IDS["get_current_comm"]: self._get_current_comm,
            HELPER_IDS["redirect"]: self._redirect,
            HELPER_IDS["redirect_map"]: self._redirect,
            HELPER_IDS["perf_event_output"]: self._perf_event_output,
            HELPER_IDS["ringbuf_output"]: self._ringbuf_output,
            HELPER_IDS["csum_diff"]: self._csum_diff,
            HELPER_IDS["xdp_adjust_head"]: self._xdp_adjust_head,
            HELPER_IDS["fib_lookup"]: self._fib_lookup,
        }

    def call(self, helper_id: int, args: List[int]) -> int:
        impl = self._table.get(helper_id)
        if impl is None:
            name = HELPER_NAMES.get(helper_id, str(helper_id))
            raise HelperError(f"helper {name} not implemented")
        return impl(args) & _U64

    # --- maps ---------------------------------------------------------------
    def _resolve_map(self, handle: int) -> BpfMap:
        bpf_map = self.machine.maps_by_id.get(handle)
        if bpf_map is None:
            raise HelperError(f"bad map handle {handle:#x}")
        return bpf_map

    def _map_lookup_elem(self, args: List[int]) -> int:
        bpf_map = self._resolve_map(args[0])
        key = self.machine.memory.load_bytes(args[1], bpf_map.spec.key_size)
        self.machine.touch_memory(args[1], bpf_map.spec.key_size)
        return bpf_map.lookup(key)

    def _map_update_elem(self, args: List[int]) -> int:
        bpf_map = self._resolve_map(args[0])
        key = self.machine.memory.load_bytes(args[1], bpf_map.spec.key_size)
        value = self.machine.memory.load_bytes(args[2], bpf_map.spec.value_size)
        self.machine.touch_memory(args[1], bpf_map.spec.key_size)
        self.machine.touch_memory(args[2], bpf_map.spec.value_size)
        return bpf_map.update(key, value, args[3] & 0xFF)

    def _map_delete_elem(self, args: List[int]) -> int:
        bpf_map = self._resolve_map(args[0])
        key = self.machine.memory.load_bytes(args[1], bpf_map.spec.key_size)
        return bpf_map.delete(key)

    # --- probes / task state ----------------------------------------------
    def _probe_read(self, args: List[int]) -> int:
        dst, size, src = args[0], args[1], args[2]
        if size == 0:
            return 0
        try:
            data = self.machine.memory.load_bytes(src, size)
        except MemoryFault:
            return -14  # -EFAULT
        self.machine.memory.store_bytes(dst, data)
        self.machine.touch_memory(src, size)
        self.machine.touch_memory(dst, size)
        return 0

    def _ktime_get_ns(self, args: List[int]) -> int:
        # the simulated clock advances with executed cycles (~1 GHz core)
        return 1_000_000_000 + self.machine.counters.cycles

    def _get_prandom_u32(self, args: List[int]) -> int:
        return self.rng.getrandbits(32)

    def _get_smp_processor_id(self, args: List[int]) -> int:
        return 0

    def _get_current_pid_tgid(self, args: List[int]) -> int:
        task = self.machine.task
        return (task.tgid << 32) | task.pid

    def _get_current_uid_gid(self, args: List[int]) -> int:
        task = self.machine.task
        return (task.gid << 32) | task.uid

    def _get_current_comm(self, args: List[int]) -> int:
        buf, size = args[0], args[1]
        comm = self.machine.task.comm.encode()[: max(size - 1, 0)] + b"\x00"
        comm = comm.ljust(size, b"\x00")
        self.machine.memory.store_bytes(buf, comm[:size])
        return 0

    def _trace_printk(self, args: List[int]) -> int:
        self.printk_count += 1
        return 0

    # --- user-space output ----------------------------------------------------
    def _perf_event_output(self, args: List[int]) -> int:
        # (ctx, map, flags, data, size)
        size = args[4]
        self.output_bytes += size
        return 0

    def _ringbuf_output(self, args: List[int]) -> int:
        # (ringbuf, data, size, flags)
        size = args[2]
        self.output_bytes += size
        return 0

    # --- networking -----------------------------------------------------------
    def _redirect(self, args: List[int]) -> int:
        self.redirects.append(args[0] & _U32)
        return 4  # XDP_REDIRECT

    def _csum_diff(self, args: List[int]) -> int:
        from_ptr, from_size, to_ptr, to_size, seed = args[:5]
        csum = seed & _U32
        if from_size:
            data = self.machine.memory.load_bytes(from_ptr, from_size)
            self.machine.touch_memory(from_ptr, from_size)
            csum = (csum - sum(data)) & _U32
        if to_size:
            data = self.machine.memory.load_bytes(to_ptr, to_size)
            self.machine.touch_memory(to_ptr, to_size)
            csum = (csum + sum(data)) & _U32
        return csum

    def _xdp_adjust_head(self, args: List[int]) -> int:
        ctx_addr, delta = args[0], args[1]
        from .memory import PACKET_BASE

        delta_signed = delta - (1 << 64) if delta >> 63 else delta
        data = self.machine.memory.load(ctx_addr, 8)
        data_end = self.machine.memory.load(ctx_addr + 8, 8)
        new_data = data + delta_signed
        if new_data < PACKET_BASE or new_data >= data_end:
            return -22  # would leave the headroom/packet region
        self.machine.memory.store(ctx_addr, 8, new_data)
        return 0

    def _fib_lookup(self, args: List[int]) -> int:
        # (ctx, params, plen, flags): resolve from the params struct so
        # the result genuinely depends on the program-written inputs
        params = args[1]
        try:
            family = self.machine.memory.load(params + 0, 4)
            proto = self.machine.memory.load(params + 4, 4)
            saddr = self.machine.memory.load(params + 8, 4)
            daddr = self.machine.memory.load(params + 12, 4)
            ifindex = self.machine.memory.load(params + 16, 4)
        except MemoryFault:
            return -14
        if family != 0:  # only AF_INET is routable in the model
            return -22
        oif = 2 + ((daddr ^ saddr ^ proto ^ ifindex) % 3)
        try:
            self.machine.memory.store(params + 56, 4, oif)
        except MemoryFault:
            return -22
        return 0
