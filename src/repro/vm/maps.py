"""eBPF map implementations (array, hash, per-CPU array, LRU hash).

Lookups return guest *addresses* of value storage, exactly like the
kernel: programs then read/write the value bytes directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..isa import MapSpec
from .memory import Memory, MemoryFault, Region

BPF_ANY = 0
BPF_NOEXIST = 1
BPF_EXIST = 2


class MapError(Exception):
    """Raised on misuse of a map (bad key size, full map...)."""


class BpfMap:
    """Common behaviour: keys are raw bytes, values live in guest memory."""

    def __init__(self, spec: MapSpec, memory: Memory):
        self.spec = spec
        self.memory = memory

    def lookup(self, key: bytes) -> int:
        """Return the guest address of the value, or 0 if absent."""
        raise NotImplementedError

    def update(self, key: bytes, value: bytes, flags: int = BPF_ANY) -> int:
        """Insert/replace; returns 0 on success, negative errno style."""
        raise NotImplementedError

    def delete(self, key: bytes) -> int:
        raise NotImplementedError

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.spec.key_size:
            raise MapError(
                f"map {self.spec.name}: key size {len(key)} != "
                f"{self.spec.key_size}"
            )

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.spec.value_size:
            raise MapError(
                f"map {self.spec.name}: value size {len(value)} != "
                f"{self.spec.value_size}"
            )


class ArrayMap(BpfMap):
    """Fixed-size array indexed by a u32 key; storage is preallocated."""

    def __init__(self, spec: MapSpec, memory: Memory):
        super().__init__(spec, memory)
        if spec.key_size != 4:
            raise MapError("array maps require 4-byte keys")
        self.region = memory.add_dynamic(
            f"map:{spec.name}", spec.value_size * spec.max_entries
        )

    def _index(self, key: bytes) -> Optional[int]:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.spec.max_entries:
            return None
        return index

    def lookup(self, key: bytes) -> int:
        index = self._index(key)
        if index is None:
            return 0
        return self.region.base + index * self.spec.value_size

    def update(self, key: bytes, value: bytes, flags: int = BPF_ANY) -> int:
        self._check_value(value)
        index = self._index(key)
        if index is None:
            return -22  # -EINVAL
        if flags == BPF_NOEXIST:
            return -17  # -EEXIST: array entries always exist
        offset = index * self.spec.value_size
        self.region.data[offset : offset + len(value)] = value
        return 0

    def delete(self, key: bytes) -> int:
        return -22  # array entries cannot be deleted


class PerCpuArrayMap(ArrayMap):
    """Modelled as a single-CPU array (the simulator runs one core)."""


class HashMap(BpfMap):
    """Hash map with per-entry dynamically allocated value storage."""

    def __init__(self, spec: MapSpec, memory: Memory):
        super().__init__(spec, memory)
        self.entries: "OrderedDict[bytes, Region]" = OrderedDict()
        self._counter = 0

    def lookup(self, key: bytes) -> int:
        self._check_key(key)
        region = self.entries.get(key)
        return region.base if region is not None else 0

    def update(self, key: bytes, value: bytes, flags: int = BPF_ANY) -> int:
        self._check_key(key)
        self._check_value(value)
        existing = self.entries.get(key)
        if existing is not None:
            if flags == BPF_NOEXIST:
                return -17
            existing.data[:] = value
            return 0
        if flags == BPF_EXIST:
            return -2  # -ENOENT
        if len(self.entries) >= self.spec.max_entries:
            evicted = self._evict()
            if not evicted:
                return -7  # -E2BIG
        self._counter += 1
        region = self.memory.add_dynamic(
            f"map:{self.spec.name}:{self._counter}", self.spec.value_size
        )
        region.data[:] = value
        self.entries[key] = region
        return 0

    def delete(self, key: bytes) -> int:
        self._check_key(key)
        region = self.entries.pop(key, None)
        if region is None:
            return -2
        del self.memory.regions[region.name]
        return 0

    def _evict(self) -> bool:
        return False  # plain hash maps reject inserts when full


class LruHashMap(HashMap):
    """Hash map that evicts the least-recently-used entry when full."""

    def lookup(self, key: bytes) -> int:
        addr = super().lookup(key)
        if addr:
            self.entries.move_to_end(key)
        return addr

    def _evict(self) -> bool:
        if not self.entries:
            return False
        _, region = self.entries.popitem(last=False)
        del self.memory.regions[region.name]
        return True


_MAP_TYPES = {
    "array": ArrayMap,
    "percpu_array": PerCpuArrayMap,
    "hash": HashMap,
    "lru_hash": LruHashMap,
}


def create_map(spec: MapSpec, memory: Memory) -> BpfMap:
    """Instantiate the right map class for *spec*."""
    try:
        cls = _MAP_TYPES[spec.map_type]
    except KeyError:
        raise MapError(f"unknown map type {spec.map_type!r}") from None
    return cls(spec, memory)
