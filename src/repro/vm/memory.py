"""Flat memory model for the eBPF virtual machine.

Guest "addresses" are plain integers carved into disjoint windows, one
per region (stack, context, packet, map values...).  Accesses are
bounds-checked; a bad access raises :class:`MemoryFault` — the runtime
equivalent of what the static verifier is supposed to rule out.

Region lookup is O(1) in the common case: regions are indexed by the
``addr >> 28`` window they occupy (the bases are laid out on
``_WINDOW = 0x1000_0000`` boundaries), so :meth:`Memory.find` probes one
bucket instead of scanning every region.  The index is invalidated
whenever the region dict is mutated — including direct
``del memory.regions[name]`` — and rebuilt lazily on the next lookup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

_PACK = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}

STACK_BASE = 0x1000_0000
CTX_BASE = 0x2000_0000
PACKET_BASE = 0x3000_0000
MAP_BASE = 0x4000_0000
SCRATCH_BASE = 0x5000_0000

_WINDOW = 0x1000_0000
_WINDOW_SHIFT = 28


class MemoryFault(Exception):
    """Raised on out-of-bounds or unmapped guest memory access."""


@dataclass
class Region:
    name: str
    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class _RegionDict(dict):
    """Region table that invalidates the owner's window index on every
    mutation, so legacy callers mutating ``memory.regions`` directly
    stay correct."""

    def __init__(self, owner: "Memory") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._owner._invalidate()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._owner._invalidate()

    def pop(self, *args):
        value = super().pop(*args)
        self._owner._invalidate()
        return value

    def clear(self) -> None:
        super().clear()
        self._owner._invalidate()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._owner._invalidate()


class Memory:
    """A collection of disjoint regions addressed by integer pointers."""

    def __init__(self) -> None:
        self.regions: Dict[str, Region] = _RegionDict(self)
        self._next_dynamic = MAP_BASE
        self._buckets: Optional[Dict[int, List[Region]]] = None
        #: bumped on every region-table mutation; callers holding a
        #: resolved Region may reuse it while the version is unchanged
        #: and the address still falls inside the region's *live* bounds
        self.version = 0

    # ------------------------------------------------------------ index
    def _invalidate(self) -> None:
        """Drop the window index; it is rebuilt on the next lookup."""
        self._buckets = None
        self.version += 1

    def _rebuild(self) -> Dict[int, List[Region]]:
        """Index every region under each window it overlaps (a region
        that straddles a ``_WINDOW`` boundary appears in both)."""
        buckets: Dict[int, List[Region]] = {}
        for region in self.regions.values():
            first = region.base >> _WINDOW_SHIFT
            last = max(region.end - 1, region.base) >> _WINDOW_SHIFT
            for window in range(first, last + 1):
                buckets.setdefault(window, []).append(region)
        self._buckets = buckets
        return buckets

    # ---------------------------------------------------------- regions
    def add_region(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, bytearray(size))
        self.regions[name] = region
        return region

    def add_dynamic(self, name: str, size: int) -> Region:
        """Allocate a region at the next free dynamic address."""
        aligned = (size + 63) // 64 * 64 or 64
        region = self.add_region(name, self._next_dynamic, size)
        self._next_dynamic += aligned + 64  # red zone between allocations
        return region

    def find(self, addr: int, size: int) -> Region:
        buckets = self._buckets
        if buckets is None:
            buckets = self._rebuild()
        candidates = buckets.get(addr >> _WINDOW_SHIFT)
        if candidates is not None:
            for region in candidates:
                if region.base <= addr and addr + size <= region.base + len(
                        region.data):
                    return region
        raise MemoryFault(f"unmapped access: {size} bytes at {addr:#x}")

    def load(self, addr: int, size: int) -> int:
        region = self.find(addr, size)
        offset = addr - region.base
        return struct.unpack_from(_PACK[size], region.data, offset)[0]

    def store(self, addr: int, size: int, value: int) -> None:
        region = self.find(addr, size)
        offset = addr - region.base
        struct.pack_into(_PACK[size], region.data, offset, value & ((1 << (size * 8)) - 1))

    def load_bytes(self, addr: int, size: int) -> bytes:
        region = self.find(addr, size)
        offset = addr - region.base
        return bytes(region.data[offset : offset + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        region = self.find(addr, len(data))
        offset = addr - region.base
        region.data[offset : offset + len(data)] = data
