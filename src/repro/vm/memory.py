"""Flat memory model for the eBPF virtual machine.

Guest "addresses" are plain integers carved into disjoint windows, one
per region (stack, context, packet, map values...).  Accesses are
bounds-checked; a bad access raises :class:`MemoryFault` — the runtime
equivalent of what the static verifier is supposed to rule out.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

_PACK = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}

STACK_BASE = 0x1000_0000
CTX_BASE = 0x2000_0000
PACKET_BASE = 0x3000_0000
MAP_BASE = 0x4000_0000
SCRATCH_BASE = 0x5000_0000

_WINDOW = 0x1000_0000


class MemoryFault(Exception):
    """Raised on out-of-bounds or unmapped guest memory access."""


@dataclass
class Region:
    name: str
    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """A collection of disjoint regions addressed by integer pointers."""

    def __init__(self) -> None:
        self.regions: Dict[str, Region] = {}
        self._next_dynamic = MAP_BASE

    def add_region(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, bytearray(size))
        self.regions[name] = region
        return region

    def add_dynamic(self, name: str, size: int) -> Region:
        """Allocate a region at the next free dynamic address."""
        aligned = (size + 63) // 64 * 64 or 64
        region = self.add_region(name, self._next_dynamic, size)
        self._next_dynamic += aligned + 64  # red zone between allocations
        return region

    def find(self, addr: int, size: int) -> Region:
        for region in self.regions.values():
            if region.contains(addr, size):
                return region
        raise MemoryFault(f"unmapped access: {size} bytes at {addr:#x}")

    def load(self, addr: int, size: int) -> int:
        region = self.find(addr, size)
        offset = addr - region.base
        return struct.unpack_from(_PACK[size], region.data, offset)[0]

    def store(self, addr: int, size: int, value: int) -> None:
        region = self.find(addr, size)
        offset = addr - region.base
        struct.pack_into(_PACK[size], region.data, offset, value & ((1 << (size * 8)) - 1))

    def load_bytes(self, addr: int, size: int) -> bytes:
        region = self.find(addr, size)
        offset = addr - region.base
        return bytes(region.data[offset : offset + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        region = self.find(addr, len(data))
        offset = addr - region.base
        region.data[offset : offset + len(data)] = data
