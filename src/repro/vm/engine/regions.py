"""Backedge-aware region formation for the method JIT.

The superblock tier (:mod:`.superblock`) stops at straight-line runs:
every branch, loop backedge and helper call falls back to the per-slot
dispatch loop.  This module extends discovery over the *full* control
flow graph so the JIT (:mod:`.jit`) can emit one generated-Python
function per program, with conditionals as real ``if``/``else`` and
loops as real ``while`` statements.

Two pieces live here:

* :func:`build_cfg` partitions the expanded slot list into basic
  blocks (leaders are slot 0, every jump target and every post-jump
  slot) and resolves each terminator's successor labels.  Targets that
  can never be dispatched to a real instruction — out-of-bounds pcs,
  the one-past-the-end sentinel, and ld_imm64 second slots — stay as
  *fault labels*: the JIT raises the reference engine's exact
  :class:`~repro.vm.interpreter.VmFault` message at the branch site.

* :class:`Relooper` reconstructs structured control flow from the
  arbitrary CFG (the classic Emscripten relooper shapes).  Python has
  no ``goto``, so transfers are rendered through a label variable
  ``_L`` plus ``continue``/``break``:

  - **Simple** — a single entry that cannot be re-reached is emitted
    in line; its out-edges fall through to code emitted later at the
    same syntactic level.
  - **Loop** — if any pending entry can be re-reached, the entries
    become the continue-labels of a ``while True:`` frame.  Backedges
    render as ``_L = t; continue``; edges that leave the loop render
    as ``_L = t; break`` and a *cascade dispatch* after the loop
    routes multi-level transfers further out (Python's ``break`` only
    exits one loop).
  - **Multiple** — independent entries become a chain of
    ``if _L == e:`` arms (plain ``if``, not ``elif``: an arm may set
    ``_L`` to a later arm's label and fall through to its test).

  Reachability deliberately ignores edges into any enclosing frame's
  continue-labels — those edges are already rendered as ``continue``
  and no longer re-enter the sequence — which both guarantees progress
  (a loop body can always be structured) and handles irreducible
  graphs: a second entry into a loop simply becomes another
  continue-label dispatched at the loop head.

The relooper is codegen-agnostic: callers provide an emitter with
``block_lines`` / ``term_lines`` hooks and receive indented Python
source lines.  :mod:`.jit` is the only consumer today.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...isa import Instruction
from ...isa import opcodes as op


@dataclass
class Terminator:
    """How a basic block ends.

    ``kind`` is one of ``"cond"`` (conditional jump), ``"ja"``
    (unconditional jump), ``"exit"`` or ``"fall"`` (no jump — control
    continues at the next leader, which may be the out-of-bounds
    sentinel).  ``taken``/``fall`` are successor *labels*: slot indices
    that either name a real block or a fault label.
    """

    kind: str
    pc: int = -1
    insn: Optional[Instruction] = None
    taken: int = -1
    fall: int = -1


@dataclass
class CfgBlock:
    """One basic block over the expanded slot list."""

    label: int
    body: List[Tuple[int, Instruction]]  # (slot, insn), terminator excluded
    term: Terminator
    succs: Tuple[int, ...] = ()  # successor labels that are real blocks


class Cfg:
    """The control-flow graph of one program's expanded slots."""

    def __init__(self, slots: Sequence[Optional[Instruction]]):
        self.slots = slots
        self.n = len(slots)
        self.blocks: Dict[int, CfgBlock] = {}
        self._build()

    # ------------------------------------------------------------- structure
    def is_real(self, label: int) -> bool:
        """Does *label* name a dispatchable instruction slot?"""
        return 0 <= label < self.n and self.slots[label] is not None

    def fault_message(self, label: int) -> str:
        """The reference engine's fault for dispatching to *label*."""
        if 0 <= label < self.n and self.slots[label] is None:
            return f"jump into the middle of ld_imm64 at slot {label}"
        return f"pc {label} out of program bounds"

    def _build(self) -> None:
        slots, n = self.slots, self.n
        leaders: Set[int] = {0} if n else set()
        pc = 0
        while pc < n:
            insn = slots[pc]
            if insn is None:
                pc += 1
                continue
            cls = insn.opcode & op.CLASS_MASK
            if cls in (op.BPF_JMP, op.BPF_JMP32):
                jop = insn.opcode & op.JMP_OP_MASK
                if jop != op.BPF_CALL:  # calls fall through: not terminators
                    if jop not in (op.BPF_EXIT,):
                        target = pc + 1 + insn.off
                        if self.is_real(target):
                            leaders.add(target)
                    if pc + 1 < n:
                        leaders.add(pc + 1)
            pc += insn.slots
        for leader in sorted(leaders):
            if not self.is_real(leader):
                continue
            self.blocks[leader] = self._scan_block(leader, leaders)
        self._prune_unreachable()

    def _scan_block(self, start: int, leaders: Set[int]) -> CfgBlock:
        slots, n = self.slots, self.n
        body: List[Tuple[int, Instruction]] = []
        pc = start
        while True:
            if pc >= n:
                term = Terminator(kind="fall", pc=pc, fall=pc)
                break
            insn = slots[pc]
            if insn is None:  # can't happen: leaders are real slots and
                # ld_imm64 advances by 2, but keep the fault label exact
                term = Terminator(kind="fall", pc=pc, fall=pc)
                break
            if pc != start and pc in leaders:
                term = Terminator(kind="fall", pc=pc, fall=pc)
                break
            cls = insn.opcode & op.CLASS_MASK
            if cls in (op.BPF_JMP, op.BPF_JMP32):
                jop = insn.opcode & op.JMP_OP_MASK
                if jop == op.BPF_EXIT:
                    term = Terminator(kind="exit", pc=pc, insn=insn)
                    break
                if jop == op.BPF_JA:
                    term = Terminator(kind="ja", pc=pc, insn=insn,
                                      taken=pc + 1 + insn.off)
                    break
                if jop != op.BPF_CALL:
                    term = Terminator(kind="cond", pc=pc, insn=insn,
                                      taken=pc + 1 + insn.off, fall=pc + 1)
                    break
            body.append((pc, insn))
            pc += insn.slots
        succs = []
        if term.kind == "cond":
            for t in (term.fall, term.taken):
                if self.is_real(t) and t not in succs:
                    succs.append(t)
        elif term.kind == "ja":
            if self.is_real(term.taken):
                succs.append(term.taken)
        elif term.kind == "fall":
            if self.is_real(term.fall):
                succs.append(term.fall)
        return CfgBlock(label=start, body=body, term=term,
                        succs=tuple(succs))

    def _prune_unreachable(self) -> None:
        if not self.blocks:
            return
        seen: Set[int] = set()
        work = [0]
        while work:
            label = work.pop()
            if label in seen or label not in self.blocks:
                continue
            seen.add(label)
            work.extend(self.blocks[label].succs)
        self.blocks = {l: b for l, b in self.blocks.items() if l in seen}


def build_cfg(slots: Sequence[Optional[Instruction]]) -> Cfg:
    """Partition *slots* into basic blocks reachable from slot 0."""
    return Cfg(slots)


# ------------------------------------------------------------------ relooper
class StructureError(Exception):
    """The relooper could not structure this CFG (caller falls back)."""


@dataclass
class _Frame:
    """One ``while True:`` loop the emitter is currently inside."""

    entries: Set[int]  # continue-labels: transfer = _L = t; continue
    exits: List[int] = field(default_factory=list)  # break-cascade labels


class _Seq:
    """One driver invocation: an ordered worklist over an owned label
    set, emitted at a fixed frame depth."""

    def __init__(self, avail: Set[int], pending: Sequence[int],
                 depth: int) -> None:
        self.avail = avail
        self.pending: List[int] = []
        self.pending_set: Set[int] = set()
        self.depth = depth
        for label in pending:
            self.add_pending(label)

    def add_pending(self, label: int) -> None:
        if label in self.avail and label not in self.pending_set:
            self.pending.append(label)
            self.pending_set.add(label)


#: hard ceiling on emitted source lines before falling back (a pathologic
#: CFG could otherwise produce quadratic cascade code)
MAX_LINES = 200_000


class Relooper:
    """Emit structured Python source for a :class:`Cfg`.

    *emitter* provides the instruction semantics:

    - ``block_lines(block) -> List[str]`` — the block body, terminator
      excluded (unindented);
    - ``term_lines(block, render) -> List[str]`` — the terminator,
      where ``render(label) -> List[str]`` returns the transfer code
      for one successor label (fault raise, fall, continue or break);
    - ``fault_lines(msg) -> List[str]`` — raise the out-of-bounds /
      mid-ld_imm64 fault for a transfer to an unreal label.
    """

    def __init__(self, cfg: Cfg, emitter) -> None:
        self.cfg = cfg
        self.emitter = emitter
        self.frames: List[_Frame] = []
        self.seqs: List[_Seq] = []
        self.lines: List[str] = []

    # -------------------------------------------------------------- helpers
    def _succs(self, label: int) -> Tuple[int, ...]:
        return self.cfg.blocks[label].succs

    def _blocked(self) -> Set[int]:
        out: Set[int] = set()
        for frame in self.frames:
            out |= frame.entries
        return out

    def _reach(self, roots: Sequence[int], avail: Set[int]) -> Set[int]:
        """Labels in *avail* reachable from *roots* (roots included),
        never traversing an edge into an enclosing frame's entries."""
        blocked = self._blocked()
        seen: Set[int] = set()
        work = [r for r in roots if r in avail]
        while work:
            label = work.pop()
            if label in seen:
                continue
            seen.add(label)
            for nxt in self._succs(label):
                if nxt in avail and nxt not in blocked and nxt not in seen:
                    work.append(nxt)
        return seen

    # --------------------------------------------------------------- render
    def _render(self, target: int) -> List[str]:
        """Transfer code for a branch to *target* from the current
        emission point (innermost frame / sequence context)."""
        cfg = self.cfg
        if not cfg.is_real(target):
            return list(self.emitter.fault_lines(cfg.fault_message(target)))
        if target not in cfg.blocks:  # pragma: no cover - defensive
            raise StructureError(f"transfer to unscanned block {target}")
        if self.frames and target in self.frames[-1].entries:
            return [f"_L = {target}", "continue"]
        # which enclosing context owns the target?
        owner_depth: Optional[int] = None
        owner_seq: Optional[_Seq] = None
        for seq in reversed(self.seqs):
            if target in seq.avail:
                owner_depth = seq.depth
                owner_seq = seq
                break
        if owner_depth is None:
            for index in range(len(self.frames) - 1, -1, -1):
                if target in self.frames[index].entries:
                    # continuing frame *index* is legal at depth index+1
                    owner_depth = index + 1
                    break
        if owner_depth is None:  # pragma: no cover - defensive
            raise StructureError(f"unowned transfer target {target}")
        depth = len(self.frames)
        if depth > owner_depth:
            # leave one loop; the after-loop cascade re-dispatches the
            # remaining (depth - owner_depth - 1) levels outward
            self.frames[-1].exits.append(target)
            return [f"_L = {target}", "break"]
        if owner_seq is not None:
            owner_seq.add_pending(target)
            return [f"_L = {target}"]
        # owner is the innermost frame at exactly this depth; the early
        # frames[-1] check normally catches this
        return [f"_L = {target}", "continue"]  # pragma: no cover

    # ----------------------------------------------------------------- emit
    def emit(self, entry: int = 0) -> List[str]:
        """Structure the whole CFG; returns source lines (nested
        constructs carry their own indentation)."""
        if entry not in self.cfg.blocks:
            raise StructureError("empty program")
        self._emit_seq(set(self.cfg.blocks), [entry], 0)
        return self.lines

    def _line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)
        if len(self.lines) > MAX_LINES:
            raise StructureError("generated function too large")

    def _extend(self, indent: int, sub: List[str]) -> None:
        for text in sub:
            self._line(indent, text)

    def _emit_seq(self, avail: Set[int], entries: Sequence[int],
                  indent: int) -> None:
        """The shape driver: emit every label in *avail* reachable from
        the evolving pending worklist, at one syntactic level."""
        seq = _Seq(avail, entries, depth=len(self.frames))
        self.seqs.append(seq)
        try:
            while True:
                pending = [p for p in seq.pending if p in seq.avail]
                seq.pending = list(pending)
                seq.pending_set = set(pending)
                if not pending:
                    break
                blocked = self._blocked()
                reach = self._reach(pending, seq.avail)
                # an entry is *returnable* if some emitted-or-reachable
                # block branches back into it (edges into enclosing
                # frames' continue-labels render as `continue` and do
                # not re-enter this sequence)
                returnable = [
                    e for e in pending
                    if e not in blocked
                    and any(e in self._succs(u) for u in reach)
                ]
                if returnable:
                    self._emit_loop(seq, pending, indent)
                elif len(pending) == 1:
                    self._emit_simple(seq, pending[0], indent)
                else:
                    self._emit_multiple(seq, pending, indent)
        finally:
            self.seqs.pop()

    def _emit_simple(self, seq: _Seq, label: int, indent: int) -> None:
        block = self.cfg.blocks[label]
        seq.avail.discard(label)
        self._extend(indent, self.emitter.block_lines(block))
        self._extend(indent, self.emitter.term_lines(block, self._render))

    def _emit_loop(self, seq: _Seq, entries: List[int],
                   indent: int) -> None:
        entry_set = set(entries)
        outer_blocked = self._blocked()
        # the loop body owns every label that can flow back to an entry;
        # blocks that only flow *out* are emitted after the loop
        back: Set[int] = set(entry_set)
        changed = True
        while changed:
            changed = False
            for label in seq.avail:
                if label in back:
                    continue
                for nxt in self._succs(label):
                    if nxt in back and nxt not in outer_blocked:
                        back.add(label)
                        changed = True
                        break
        inner = back & seq.avail
        seq.avail -= inner
        frame = _Frame(entries=entry_set)
        self._line(indent, "while True:")
        self.frames.append(frame)
        try:
            self._emit_seq(inner, entries, indent + 1)
        finally:
            self.frames.pop()
        # cascade dispatch: re-route each break-target from out here.
        # A target owned by this very sequence needs no code (_L already
        # holds it and falls into the later guarded arms); targets bound
        # further out re-render as continue/break one level at a time.
        for target in sorted(set(frame.exits)):
            sub = self._render(target)
            if sub == [f"_L = {target}"]:
                continue
            self._line(indent, f"if _L == {target}:")
            self._extend(indent + 1, sub)

    def _emit_multiple(self, seq: _Seq, pending: List[int],
                       indent: int) -> None:
        # no entry is returnable here, so no entry is reachable from
        # another entry's reach-set: every entry gets an arm.  Labels
        # reachable from two or more entries are join points — they stay
        # available and are re-dispatched by a later driver round.
        reach_of: Dict[int, Set[int]] = {
            e: self._reach([e], seq.avail) for e in pending
        }
        for e in pending:
            group = {
                l for l in reach_of[e]
                if not any(l in reach_of[o] for o in pending if o != e)
            }
            seq.avail -= group
            self._line(indent, f"if _L == {e}:")
            self._emit_seq(group, [e], indent + 1)


def structure(cfg: Cfg, emitter, entry: int = 0) -> List[str]:
    """Convenience wrapper: structure *cfg* with *emitter*."""
    return Relooper(cfg, emitter).emit(entry)
