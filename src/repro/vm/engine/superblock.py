"""Basic-block superinstructions: straight-line runs compiled to one
generated-Python function.

A *superblock* is a maximal run of consecutive ALU / MOV / load / store
instructions (no jumps, calls, atomics or ``ld_imm64``).  The run is
translated — once, at decode time — into a single Python function via
``compile()``, so the dispatch loop pays one handler call for the whole
run instead of one per instruction, and the per-slot budget/counter
bookkeeping collapses into precomputed constants.

Bit-identical semantics are preserved by a two-phase layout:

* **phase 1 (validate)** computes every memory-op address — re-running
  only the *address slice* of the block's ALU on private locals — and
  resolves each address to its region with ``Memory.find``.  Phase 1
  performs **no side effects**: if any address is unmapped, the raised
  :class:`MemoryFault` leaves registers, memory, cache state and
  counters untouched, and the caller falls back to a per-instruction
  replay of the block so the fault surfaces at exactly the instruction,
  with exactly the counters and partial effects, the reference
  interpreter would produce.
* **phase 2 (commit)** executes the block for real, in program order:
  ALU on locals, each memory op charging ``cache.access`` against the
  pre-resolved region.  Nothing in phase 2 can fault.

A memory op whose base register depends on a load *inside* the block
("runtime-tainted" base) ends the block before it — its address cannot
be validated up front — and the offending instruction may start a new
block of its own, where every register is entry-computable again.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...isa import Instruction
from ...isa import opcodes as op
from .. import cost

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: minimum run length worth fusing (a 1-instruction "block" would just
#: add indirection over the plain pre-decoded handler)
MIN_BLOCK_LEN = 2

_PACKERS = {
    1: struct.Struct("<B"),
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}


def bswap_value(value: int, width: int, to_be: bool) -> int:
    """The reference interpreter's ``_bswap``, parameterised."""
    data = (value & ((1 << width) - 1)).to_bytes(width // 8, "little")
    return int.from_bytes(data, "big" if to_be else "little")


#: shared globals for every compiled superblock function
_SB_GLOBALS: Dict[str, object] = {"_bswap": bswap_value}
for _size, _st in _PACKERS.items():
    _SB_GLOBALS[f"_pk{_size}"] = _st.pack_into
    _SB_GLOBALS[f"_up{_size}"] = _st.unpack_from


@dataclass
class SuperBlock:
    """One fused straight-line run."""

    start: int  # slot index of the first instruction
    count: int  # logical instructions covered (all single-slot)
    base_cycles: int  # precomputed sum of per-instruction base costs
    next_pc: int  # fall-through slot after the run
    fn: Callable  # fn(regs, find, access, counters, memo) -> None
    source: str  # generated Python (kept for tests/debugging)
    n_memops: int  # memory operations in the run (= len(memo) at bind)


# ---------------------------------------------------------------- classify
def _is_alu(insn: Instruction) -> bool:
    return (insn.opcode & op.CLASS_MASK) in (op.BPF_ALU, op.BPF_ALU64)


def _is_load(insn: Instruction) -> bool:
    return (insn.opcode & op.CLASS_MASK) == op.BPF_LDX


def _is_store(insn: Instruction) -> bool:
    cls = insn.opcode & op.CLASS_MASK
    if cls == op.BPF_ST:
        return True
    return cls == op.BPF_STX and (insn.opcode & op.MODE_MASK) != op.BPF_ATOMIC


def _is_memop(insn: Instruction) -> bool:
    return _is_load(insn) or _is_store(insn)


def _is_ld64(insn: Instruction) -> bool:
    return (insn.opcode & op.CLASS_MASK) == op.BPF_LD and insn.is_ld_imm64


def _base_reg(insn: Instruction) -> int:
    return insn.src if _is_load(insn) else insn.dst


def _fusable(insn: Instruction, allow_ld64: bool = False) -> bool:
    """Can *insn* live inside a fused run at all?

    ``allow_ld64`` admits ``ld_imm64`` (a pure constant definition) —
    the method JIT uses this so a map-fd load no longer splits a run;
    superblock discovery keeps the historical exclusion (its dispatch
    loop counts slots, not instructions)."""
    if _is_alu(insn):
        aop = insn.opcode & op.ALU_OP_MASK
        if aop not in cost.ALU_COST:
            return False  # reference raises; keep it on the slow path
        if aop == op.BPF_END and insn.imm not in (16, 32, 64):
            return False
        return True
    if _is_memop(insn):
        return insn.size_bytes in _PACKERS
    if allow_ld64 and _is_ld64(insn):
        return True
    return False


def _alu_reads(insn: Instruction) -> Tuple[int, ...]:
    """Registers an ALU instruction reads (value semantics)."""
    aop = insn.opcode & op.ALU_OP_MASK
    if aop == op.BPF_MOV:
        return () if insn.uses_imm else (insn.src,)
    if aop in (op.BPF_NEG, op.BPF_END):
        return (insn.dst,)
    if insn.uses_imm:
        return (insn.dst,)
    return (insn.dst, insn.src)


# ---------------------------------------------------------------- discovery
def find_blocks(slots: Sequence[Optional[Instruction]],
                min_len: int = MIN_BLOCK_LEN) -> List[SuperBlock]:
    """Discover and compile every superblock of an expanded slot list."""
    blocks: List[SuperBlock] = []
    n = len(slots)
    i = 0
    while i < n:
        insn = slots[i]
        if insn is None:
            i += 1
            continue
        if not _fusable(insn):
            i += insn.slots
            continue
        start = i
        tainted = [False] * op.NUM_REGS
        members: List[Instruction] = []
        j = i
        while j < n:
            cand = slots[j]
            if cand is None or not _fusable(cand):
                break
            if _is_memop(cand) and tainted[_base_reg(cand)]:
                break  # base not entry-computable; cand may start a new block
            if _is_alu(cand):
                aop = cand.opcode & op.ALU_OP_MASK
                if aop == op.BPF_MOV:
                    tainted[cand.dst] = (not cand.uses_imm) and tainted[cand.src]
                elif not cand.uses_imm and aop not in (op.BPF_NEG, op.BPF_END):
                    tainted[cand.dst] = tainted[cand.dst] or tainted[cand.src]
            elif _is_load(cand):
                tainted[cand.dst] = True
            members.append(cand)
            j += 1
        if len(members) >= min_len:
            blocks.append(_compile_block(start, members))
            i = j
        else:
            i = start + 1
    return blocks


# ------------------------------------------------------------------ codegen
def _alu_source(insn: Instruction, name: Callable[[int], str]) -> List[str]:
    """Source statements replicating the reference ``_alu`` for *insn*,
    reading/writing the locals produced by *name*."""
    is32 = (insn.opcode & op.CLASS_MASK) == op.BPF_ALU
    aop = insn.opcode & op.ALU_OP_MASK
    mask = _U32 if is32 else _U64
    bits = 32 if is32 else 64
    wrap = 1 << bits
    d = name(insn.dst)
    value = f"({d} & {_U32:#x})" if is32 else d
    if insn.uses_imm:
        k: Optional[int] = insn.imm & mask
        operand = f"{k:#x}"
    else:
        k = None
        s = name(insn.src)
        operand = f"({s} & {_U32:#x})" if is32 else s

    if aop == op.BPF_MOV:
        return [f"{d} = {operand}"]
    if aop == op.BPF_ADD:
        return [f"{d} = ({value} + {operand}) & {mask:#x}"]
    if aop == op.BPF_SUB:
        return [f"{d} = ({value} - {operand}) & {mask:#x}"]
    if aop == op.BPF_MUL:
        return [f"{d} = ({value} * {operand}) & {mask:#x}"]
    if aop == op.BPF_OR:
        return [f"{d} = {value} | {operand}"]
    if aop == op.BPF_AND:
        return [f"{d} = {value} & {operand}"]
    if aop == op.BPF_XOR:
        return [f"{d} = {value} ^ {operand}"]
    if aop == op.BPF_DIV:
        if k is not None:
            return [f"{d} = {value} // {k:#x}" if k else f"{d} = 0"]
        return [f"_t = {operand}", f"{d} = {value} // _t if _t else 0"]
    if aop == op.BPF_MOD:
        if k is not None:
            return [f"{d} = {value} % {k:#x}" if k else f"{d} = {value}"]
        return [f"_t = {operand}", f"{d} = {value} % _t if _t else {value}"]
    if aop in (op.BPF_LSH, op.BPF_RSH, op.BPF_ARSH):
        if k is not None:
            shift = f"{k % bits}"
        else:
            shift = f"({operand} % {bits})"
        if aop == op.BPF_LSH:
            return [f"{d} = ({value} << {shift}) & {mask:#x}"]
        if aop == op.BPF_RSH:
            return [f"{d} = {value} >> {shift}"]
        return [
            f"_t = {value}",
            f"{d} = (((_t - {wrap:#x}) >> {shift}) & {mask:#x}) "
            f"if _t >> {bits - 1} else (_t >> {shift})",
        ]
    if aop == op.BPF_NEG:
        return [f"{d} = -{value} & {mask:#x}"]
    if aop == op.BPF_END:
        to_be = (insn.opcode & op.SRC_MASK) == op.BPF_X
        return [f"{d} = _bswap({value}, {insn.imm}, {to_be}) & {mask:#x}"]
    raise AssertionError(f"unfusable ALU op {aop:#x}")  # pragma: no cover


def _address_slice(members: Sequence[Instruction]
                   ) -> Tuple[List[bool], Set[int]]:
    """Backward slice of the ALU instructions feeding memory-op base
    registers; returns (per-instruction needed flags, entry registers)."""
    needed = [False] * len(members)
    want: Set[int] = set()
    for j in range(len(members) - 1, -1, -1):
        insn = members[j]
        if _is_alu(insn) and insn.dst in want:
            needed[j] = True
            want.discard(insn.dst)
            want.update(_alu_reads(insn))
        elif _is_ld64(insn) and insn.dst in want:
            needed[j] = True  # a pure constant definition, no reads
            want.discard(insn.dst)
        if _is_memop(insn):
            base = _base_reg(insn)
            if _is_load(insn) and insn.dst in want:
                raise AssertionError(
                    "load-tainted base leaked into a superblock")
            want.add(base)
    return needed, want


def _addr_expr(local: str, off: int) -> str:
    if off == 0:
        return local
    return f"({local} + {off}) & {_U64:#x}"


def run_sources(members: Sequence[Instruction], memo_base: int = 0
                ) -> Tuple[List[str], List[str], int]:
    """Generate the two-phase source for one fused run of *members*
    (every member :func:`_fusable`, ``allow_ld64`` included).

    Returns ``(phase1, commit, n_memops)``:

    * *phase1* — the side-effect-free validation lines: entry-register
      snapshots, the address slice re-run on ``_p`` locals, and one
      region resolution per memory op.  The only thing phase 1 can
      raise is :class:`~repro.vm.memory.MemoryFault` from ``find``.
    * *commit* — the committed execution in program order on ``_r``
      locals, charging ``cache.access`` per memory op, ending with the
      register writeback.  Nothing in it can fault.

    Memo slots are numbered from *memo_base* so a whole-program caller
    (the JIT) can lay every run's sites out in one flat memo list; the
    superblock binder passes 0 and a per-block memo.  Expected locals:
    ``regs, find, access, counters, memo``.
    """
    needed, p_entry = _address_slice(members)
    p_name = lambda r: f"_p{r}"
    r_name = lambda r: f"_r{r}"

    phase1: List[str] = []
    for r in sorted(p_entry):
        phase1.append(f"_p{r} = regs[{r}]")
    memop_index: Dict[int, int] = {}
    mem_count = 0
    for j, insn in enumerate(members):
        if needed[j]:
            if _is_ld64(insn):
                phase1.append(f"_p{insn.dst} = {insn.imm & _U64:#x}")
            else:
                phase1.extend(_alu_source(insn, p_name))
        if _is_memop(insn):
            memop_index[j] = memo_base + mem_count
            size = insn.size_bytes
            m = memo_base + mem_count
            phase1.append(
                f"_a{m} = {_addr_expr(p_name(_base_reg(insn)), insn.off)}"
            )
            # per-site region memo: each memop site almost always hits
            # the same region every execution, so re-validate the cached
            # region against its live bounds and only fall back to
            # find() on first use or after the region changes (the
            # binder clears ``memo`` whenever memory.version moves)
            phase1.append(f"_g{m} = memo[{m}]")
            phase1.append(
                f"if _g{m} is None or _g{m}.base > _a{m} "
                f"or _a{m} + {size} > _g{m}.base + len(_g{m}.data):"
            )
            phase1.append(f"    _g{m} = find(_a{m}, {size})")
            phase1.append(f"    memo[{m}] = _g{m}")
            mem_count += 1

    # ---- phase 2: committed execution in program order
    defined: Set[int] = set()
    r_entry: Set[int] = set()
    phase2: List[str] = []
    for j, insn in enumerate(members):
        if _is_alu(insn):
            for r in _alu_reads(insn):
                if r not in defined:
                    r_entry.add(r)
            phase2.extend(_alu_source(insn, r_name))
            defined.add(insn.dst)
        elif _is_ld64(insn):
            phase2.append(f"_r{insn.dst} = {insn.imm & _U64:#x}")
            defined.add(insn.dst)
        elif _is_load(insn):
            m = memop_index[j]
            size = insn.size_bytes
            phase2.append(f"counters.cycles += access(_a{m}, {size})")
            phase2.append(
                f"_r{insn.dst} = _up{size}(_g{m}.data, _a{m} - _g{m}.base)[0]"
            )
            defined.add(insn.dst)
        else:  # store
            m = memop_index[j]
            size = insn.size_bytes
            szmask = (1 << (size * 8)) - 1
            if (insn.opcode & op.CLASS_MASK) == op.BPF_ST:
                value = f"{insn.imm & _U64 & szmask:#x}"
            else:
                if insn.src not in defined:
                    r_entry.add(insn.src)
                value = f"_r{insn.src} & {szmask:#x}"
            phase2.append(f"counters.cycles += access(_a{m}, {size})")
            phase2.append(
                f"_pk{size}(_g{m}.data, _a{m} - _g{m}.base, {value})"
            )
    commit: List[str] = []
    for r in sorted(r_entry):
        commit.append(f"_r{r} = regs[{r}]")
    commit.extend(phase2)
    for r in sorted(defined):
        commit.append(f"regs[{r}] = _r{r}")
    return phase1, commit, mem_count


def _compile_block(start: int, members: List[Instruction]) -> SuperBlock:
    phase1, commit, mem_count = run_sources(members)
    body = phase1 + commit
    if not body:  # pragma: no cover - blocks always have members
        body = ["pass"]
    source = ("def _superblock(regs, find, access, counters, memo):\n"
              + "\n".join("    " + line for line in body))
    namespace = dict(_SB_GLOBALS)
    exec(compile(source, f"<superblock@{start}>", "exec"), namespace)
    base_cycles = sum(cost.base_cost(insn) for insn in members)
    return SuperBlock(
        start=start,
        count=len(members),
        base_cycles=base_cycles,
        next_pc=start + len(members),
        fn=namespace["_superblock"],
        source=source,
        n_memops=mem_count,
    )
