"""Whole-program method JIT: one generated-Python function per program.

Selected with ``Machine(program, engine="jit")``.  Where the fast
engine (:mod:`.decode`) still pays a dispatch-loop iteration per
branch, helper call and superblock, this tier compiles the *entire*
program through :mod:`.regions`: conditionals become real
``if``/``else``, loops become ``while`` statements with the
instruction-budget check hoisted to run entries, helper calls and map
operations are inlined as direct calls into the machine's bound
runtime objects, and counter/cost accounting is batched per fused run.

On top of the structured control flow, three whole-function
optimizations give the tier its speed:

* **Register localization** — guest registers live in Python locals
  (``_v0`` .. ``_v10``) for the entire function; the ``regs`` list is
  read once in the prologue and written back only at exit and bail
  points, so straight-line code is pure ``LOAD_FAST`` traffic.
* **Accounting batching** — the instruction budget, cycle count and
  branch tally accumulate in locals (``_bud``, ``_cyc``, ``_br``); the
  instruction count is not tracked separately at all — instructions
  executed equal budget consumed, so each flush charges the distance
  from a budget watermark (``_lbud``).  Accumulators are *flushed* to
  the machine's real counters exactly at the points where they become
  observable: any fault raise,
  any helper call that can fault or read the clock, atomics, exit, and
  deoptimization.  Between those points the counters object is never
  touched.
* **Cache-model inlining** — the single-line hot path of
  :meth:`repro.hw.cache.CacheModel.access` is emitted inline at every
  fused-run memory operation (geometry read from the bound model, so
  non-default caches stay exact); line-straddling accesses fall back
  to the model call.

Bit-identity with the reference interpreter is preserved the same way
the superblock tier preserves it — validate-then-commit plus
*deoptimization*:

* **Fused runs** (maximal straight-line stretches of ALU / memop /
  ``ld_imm64``) follow the superblock tier's two-phase discipline with
  a JIT-native twist: stack-rooted memops (base r10, which the JIT
  proves the program never writes) have whole-execution-constant
  addresses, so their bounds validation collapses to the memo lookup.
  Phase 1 resolves every memory address side-effect-free; if a region
  faults — the packet shrank, a map value moved, any guard the
  entry-state validation expresses fails — the function *bails*:
  it raises the internal ``_Bail`` signal with **nothing executed**,
  the epilogue writes registers, budget and counters back, and the
  caller resumes the fast engine's certified dispatch loop at that
  exact slot, reproducing the reference fault or continuing
  bit-identically.  A run whose remaining budget can't cover it bails
  the same way, so budget exhaustion lands on the exact reference
  slot even mid-region.
* **Guard-specialized helper calls**: a map helper whose fd argument
  is proven by a dominating same-block ``ld_imm64 r1 = map_fd N`` is
  inlined as a direct ``BpfMap`` method call behind the runtime guard
  ``_v1 == N``; guard failure bails to the dispatch loop *before* any
  accounting.  Clock/task/random helpers inline without guards;
  everything else calls ``HelperRuntime.call`` exactly like the fast
  engine's handler.
* Every deopt cause increments a per-machine bail counter
  (``budget`` / ``memory`` / ``guard`` / ``other``), surfaced through
  ``Machine.stats``.

Compiled code objects are cached content-keyed **exactly like
decodes**: a process-wide LRU on :func:`repro.cache.keys
.key_for_bytecode` with :class:`.decode.DecodeCacheStats`-style
hit/miss counters (:func:`jit_cache_stats`).  Programs the structurer
or CPython cannot handle (pathological nesting beyond the static
block limit, oversized functions) fall back to the fast engine in
full, recorded in the cache entry's ``fallback_reason``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...cache.keys import key_for_bytecode
from ...isa import BpfProgram, Instruction
from ...isa import opcodes as op
from ...isa.helpers import BPF_PSEUDO_MAP_FD, HELPER_IDS, HELPER_NAMES
from ...hw.branch import BranchPredictor
from .. import cost
from ..interpreter import VmFault
from ..memory import MemoryFault
from .decode import (
    _BUDGET_MSG,
    DecodedProgram,
    DecodeCacheStats,
    FastExecution,
    _Exit,
    check_budget_fault,
    decode_program,
)
from .regions import Cfg, CfgBlock, Relooper, StructureError, build_cfg
from .superblock import (
    _SB_GLOBALS,
    _addr_expr,
    _alu_reads,
    _alu_source,
    _base_reg,
    _fusable,
    _is_alu,
    _is_ld64,
    _is_load,
    _is_memop,
)

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: programs larger than this skip JIT compilation outright
JIT_MAX_SLOTS = 8192

#: bail-cause indices in the per-machine bail counter list
BAIL_BUDGET = 0
BAIL_MEMORY = 1
BAIL_GUARD = 2
BAIL_OTHER = 3
BAIL_CAUSES = ("budget", "memory", "guard", "other")

#: re-raise compile errors instead of falling back (tests flip this so
#: codegen bugs surface instead of silently degrading to "fast")
STRICT = False

_MAP_HELPERS = {
    HELPER_IDS["map_lookup_elem"]: "lookup",
    HELPER_IDS["map_update_elem"]: "update",
    HELPER_IDS["map_delete_elem"]: "delete",
}


class _Bail(Exception):
    """Internal deopt signal: unwind to the function epilogue, which
    flushes accumulated state and returns the bail pc to the caller."""

    def __init__(self, pc: int) -> None:
        self.pc = pc


def _indent(lines: Sequence[str]) -> List[str]:
    return ["    " + line for line in lines]


def _writes_reg(insn: Instruction, reg: int) -> bool:
    """Can *insn* modify register *reg*?  Used to prove r10 constant
    for the whole execution (eBPF never writes the frame pointer, but
    the VM itself does not forbid it, so the JIT checks)."""
    cls = insn.opcode & op.CLASS_MASK
    if cls in (op.BPF_ALU, op.BPF_ALU64, op.BPF_LDX):
        return insn.dst == reg
    if cls == op.BPF_LD:
        return insn.dst == reg
    if cls in (op.BPF_JMP, op.BPF_JMP32):
        if (insn.opcode & op.JMP_OP_MASK) == op.BPF_CALL:
            return reg == op.R0  # helpers write r0 only in this VM
        return False
    if insn.is_atomic:
        return bool(insn.imm & op.BPF_FETCH) and insn.src == reg
    return False


# ------------------------------------------------------------------ emitter
class _Emitter:
    """Instruction-semantics half of the JIT: turns CFG blocks into
    source lines for the relooper, replicating the fast engine's
    handler order of events exactly (which is itself certified against
    the reference interpreter)."""

    def __init__(self, cfg: Cfg, program: BpfProgram) -> None:
        self.cfg = cfg
        self.map_specs = [spec for spec in program.maps.values()]
        self.memo_count = 0
        self.map_fds: Dict[int, str] = {}  # fd -> binder-local name
        self.guarded_sites = 0
        self.inline_helpers = 0
        self.r10_const = not any(
            _writes_reg(insn, op.R10) for insn in program.insns)

    # ------------------------------------------------------------- plumbing
    def _flush(self) -> List[str]:
        """Make the machine's counters and cache/branch statistics
        exact: accumulated counts become observable past this point.
        Instructions executed equal the budget consumed, so the
        instruction count is the distance from the last-flush budget
        watermark ``_lbud`` — no per-instruction counter needed."""
        return [
            "counters.instructions += _lbud - _bud",
            "_lbud = _bud",
            "counters.cycles += _cyc + _hl * _mru",
            "_cyc = 0",
            "_ref += _mru",
            "_mru = 0",
            "counters.branches += _br",
            "_br = 0",
            "_cs.references += _ref",
            "_ref = 0",
            "_cs.misses += _mis",
            "_mis = 0",
            "_bs.branches += _bb",
            "_bb = 0",
        ]

    def fault_lines(self, msg: str) -> List[str]:
        return self._flush() + [f"raise VmFault({msg!r})"]

    def _acct(self) -> List[str]:
        """Budget + instruction count for one non-fused instruction,
        replicating every single-instruction binder's prologue (the
        budget fault flushes first so counters are exact at the
        reference's exhaustion slot)."""
        return [
            "_bud -= 1",
            "if _bud < 0:",
            "    _bud += 1",  # the faulting instruction is not counted
        ] + _indent(self._flush()) + [
            "    raise VmFault(_BUDGET_MSG)",
        ]

    def _acct_real(self) -> List[str]:
        """Accounting against the real counters, for segments that were
        just flushed (helper calls, atomics) and may fault mid-way.
        The watermark follows the budget so the instruction is not
        double-counted by the next flush."""
        return [
            "_bud -= 1",
            "if _bud < 0:",
            "    raise VmFault(_BUDGET_MSG)",
            "counters.instructions += 1",
            "_lbud = _bud",
        ]

    def _vercheck(self) -> List[str]:
        """Invalidate every region memo when the region table moved —
        the whole-program analogue of the per-binder version stamp."""
        return [
            "if ver[0] != memory.version:",
            "    ver[0] = memory.version",
            "    memo[:] = _empty",
        ]

    def _model_lines(self) -> List[str]:
        """The cache model's full single-line path (expects ``_ln``),
        inlined — see :meth:`CacheModel.access`: same order of events,
        geometry from the bound model's attributes."""
        return [
            "_pln = _ln",
            "_ref += 1",
            "_e = _sets[_ln % _ns]",
            "_tg = _ln // _ns",
            "if _e and _e[-1] == _tg:",
            "    _cyc += _hl",
            "elif _tg in _e:",
            "    _e.remove(_tg)",
            "    _e.append(_tg)",
            "    _cyc += _hl",
            "else:",
            "    _mis += 1",
            "    _e.append(_tg)",
            "    _cyc += _hl + _mp",
            "    if len(_e) > _wy:",
            "        _e.pop(0)",
        ]

    def _access_lines(self, addr: str, size: int) -> List[str]:
        """Inline cache charge for a dynamic-address access.

        ``_pln`` chains consecutive accesses: the model is
        deterministic, so an access to the line the *previous* modelled
        access touched is a guaranteed MRU hit — two adds, no set
        traffic.  Every non-inlined cache path (``access()`` fallbacks,
        helper-call touches, atomics) resets ``_pln``, so the shortcut
        only fires when the MRU property is actually known.  Straddling
        accesses take the model call."""
        single = [
            f"_ln = {addr} // _lb",
            "if _ln == _pln:",
            "    _mru += 1",
            "else:",
        ] + _indent(self._model_lines())
        if size == 1:
            return single
        return [
            f"if {addr} // _lb != ({addr} + {size - 1}) // _lb:",
            f"    _cyc += access({addr}, {size})",
            "    _pln = -1",
            "else:",
        ] + _indent(single)

    def _stack_access_lines(self, m: int, off: int, size: int) -> List[str]:
        """Inline cache charge for a stack-rooted site whose line number
        was precomputed into the memo tuple (``-1`` marks a straddling
        address, which takes the model call)."""
        mru = [
            f"if _ln{m} == _pln:",
            "    _mru += 1",
            "else:",
            f"    _ln = _ln{m}",
        ] + _indent(self._model_lines())
        if size == 1:
            return mru
        addr = f"_v10 + {off}" if off else "_v10"
        return [
            f"if _ln{m} < 0:",
            f"    _cyc += access({addr}, {size})",
            "    _pln = -1",
            f"elif _ln{m} == _pln:",
            "    _mru += 1",
            "else:",
            f"    _ln = _ln{m}",
        ] + _indent(self._model_lines())

    # --------------------------------------------------------------- blocks
    def block_lines(self, block: CfgBlock) -> List[str]:
        fd_at = self._map_fd_at(block.body)
        lines: List[str] = []
        for kind, payload in self._segments(block.body):
            if kind == "run":
                lines.extend(self._run(payload))
            elif kind == "call":
                pc, insn = payload
                lines.extend(self._call(pc, insn, fd_at.get(pc)))
            elif kind == "atomic":
                lines.extend(self._atomic(*payload))
            elif kind == "bad_ld":
                pc, insn = payload
                lines.extend(self._acct())
                lines.extend(self.fault_lines(
                    f"unsupported LD mode {insn.opcode:#x}"))
            else:  # "deopt": anything the JIT does not speak natively
                pc, _ = payload
                lines.append(f"bail[{BAIL_OTHER}] += 1")
                lines.append(f"raise _Bail({pc})")
        return lines

    def _segments(self, body: List[Tuple[int, Instruction]]):
        """Split a block body into fused runs and standalone singles,
        using superblock discovery's taint rule (a memop whose base was
        defined by an in-run load starts a fresh run instead)."""
        segments: List[Tuple[str, object]] = []
        run: List[Tuple[int, Instruction]] = []
        tainted = [False] * op.NUM_REGS

        def flush() -> None:
            nonlocal run, tainted
            if run:
                segments.append(("run", run))
            run = []
            tainted = [False] * op.NUM_REGS

        for pc, insn in body:
            if _fusable(insn, allow_ld64=True):
                if _is_memop(insn) and tainted[_base_reg(insn)]:
                    flush()
                if _is_alu(insn):
                    aop = insn.opcode & op.ALU_OP_MASK
                    if aop == op.BPF_MOV:
                        tainted[insn.dst] = ((not insn.uses_imm)
                                             and tainted[insn.src])
                    elif (not insn.uses_imm
                          and aop not in (op.BPF_NEG, op.BPF_END)):
                        tainted[insn.dst] = (tainted[insn.dst]
                                             or tainted[insn.src])
                elif _is_load(insn):
                    tainted[insn.dst] = True
                elif _is_ld64(insn):
                    tainted[insn.dst] = False
                run.append((pc, insn))
                continue
            flush()
            cls = insn.opcode & op.CLASS_MASK
            if cls in (op.BPF_JMP, op.BPF_JMP32) and \
                    (insn.opcode & op.JMP_OP_MASK) == op.BPF_CALL:
                segments.append(("call", (pc, insn)))
            elif insn.is_atomic:
                segments.append(("atomic", (pc, insn)))
            elif cls == op.BPF_LD and not insn.is_ld_imm64:
                segments.append(("bad_ld", (pc, insn)))
            else:
                segments.append(("deopt", (pc, insn)))
        flush()
        return segments

    # ----------------------------------------------------------- fused runs
    def _run(self, members: List[Tuple[int, Instruction]]) -> List[str]:
        """Validate-then-commit code for one fused run, directly on the
        whole-function register locals.

        Phase 1 (side-effect-free) resolves every memory address:
        *stack-rooted* sites — base r10 when the program provably never
        writes r10 — have the same address on every execution, so once
        ``find`` validated one at the current memory version the memo
        entry alone proves it in bounds (the run-entry version check
        clears the memo when the region table moves); dynamic sites
        re-run the address slice of the run's ALU on ``_p`` snapshots
        and re-validate the memoized region's bounds like the
        superblock tier does.  Any :class:`MemoryFault` bails with
        nothing executed.

        The commit then executes in program order *in place* on the
        ``_v`` locals — phase 1 never mutates them, so this is exactly
        reference execution — with the cache model inlined and all
        accounting accumulated."""
        start = members[0][0]
        insns = [insn for _, insn in members]
        k = len(insns)
        base = sum(cost.base_cost(insn) for insn in insns)
        v_name = lambda r: f"_v{r}"
        p_name = lambda r: f"_p{r}"

        stack_site = {
            j: self.r10_const and _base_reg(insn) == op.R10
            for j, insn in enumerate(insns) if _is_memop(insn)
        }
        # backward address slice feeding the dynamic sites only
        needed = [False] * k
        want: set = set()
        for j in range(k - 1, -1, -1):
            insn = insns[j]
            if _is_alu(insn) and insn.dst in want:
                needed[j] = True
                want.discard(insn.dst)
                want.update(_alu_reads(insn))
            elif _is_ld64(insn) and insn.dst in want:
                needed[j] = True
                want.discard(insn.dst)
            if _is_memop(insn) and not stack_site[j]:
                want.add(_base_reg(insn))

        phase1 = [f"_p{r} = _v{r}" for r in sorted(want)]
        memop_index: Dict[int, int] = {}
        n_mem = 0
        stack_canon: Dict[Tuple[int, int], int] = {}
        stack_order: List[Tuple[int, int, int]] = []  # (site, off, size)
        for j, insn in enumerate(insns):
            if not _is_memop(insn):
                continue
            size = insn.size_bytes
            if stack_site[j]:
                # repeated accesses to one stack slot share a site
                key = (insn.off, size)
                m = stack_canon.get(key)
                if m is None:
                    m = self.memo_count + n_mem
                    n_mem += 1
                    stack_canon[key] = m
                    stack_order.append((m, insn.off, size))
            else:
                m = self.memo_count + n_mem
                n_mem += 1
            memop_index[j] = m

        # Stack-rooted sites have the same address on every execution,
        # so the whole run shares ONE memo entry: a flat tuple of every
        # site's fully resolved (region, byte offset, cache line)
        # triple, with a -1 line marking a straddle.  Steady state is a
        # single subscript, one None test and one bulk unpack for the
        # entire run.  Stack addresses sit far above 2**15, so the i16
        # offset can never wrap: no mask needed.
        if stack_order:
            slot = stack_order[0][0]
            names = ", ".join(f"_g{m}, _o{m}, _ln{m}"
                              for m, _, _ in stack_order)
            phase1.append(f"_t = memo[{slot}]")
            phase1.append("if _t is None:")
            for m, off, size in stack_order:
                addr = f"_v10 + {off}" if off else "_v10"
                phase1.append(f"    _a = {addr}")
                phase1.append(f"    _g{m} = find(_a, {size})")
                phase1.append(f"    _o{m} = _a - _g{m}.base")
                phase1.append(f"    _ln{m} = _a // _lb")
                if size > 1:
                    phase1.append(
                        f"    if _ln{m} != (_a + {size - 1}) // _lb:")
                    phase1.append(f"        _ln{m} = -1")
            phase1.append(f"    memo[{slot}] = ({names})")
            phase1.append("else:")
            phase1.append(f"    ({names}) = _t")

        for j, insn in enumerate(insns):
            if needed[j]:
                if _is_ld64(insn):
                    phase1.append(f"_p{insn.dst} = {insn.imm & _U64:#x}")
                else:
                    phase1.extend(_alu_source(insn, p_name))
            if not _is_memop(insn) or stack_site[j]:
                continue
            m = memop_index[j]
            size = insn.size_bytes
            # dynamic site: the memo holds (region, lowest valid
            # address, highest valid address) so re-validation is
            # two compares against precomputed bounds
            phase1.append(
                f"_a{m} = "
                f"{_addr_expr(p_name(_base_reg(insn)), insn.off)}")
            phase1.append(f"_t = memo[{m}]")
            phase1.append(f"if _t is None or _a{m} < _t[1] "
                          f"or _a{m} > _t[2]:")
            phase1.append(f"    _g = find(_a{m}, {size})")
            phase1.append(f"    _t = (_g, _g.base, "
                          f"_g.base + len(_g.data) - {size})")
            phase1.append(f"    memo[{m}] = _t")
            phase1.append(f"_g{m} = _t[0]")
            phase1.append(f"_b{m} = _t[1]")
        self.memo_count += n_mem

        commit: List[str] = []
        for j, insn in enumerate(insns):
            if _is_alu(insn):
                commit.extend(_alu_source(insn, v_name))
            elif _is_ld64(insn):
                commit.append(f"_v{insn.dst} = {insn.imm & _U64:#x}")
            elif _is_load(insn):
                m = memop_index[j]
                size = insn.size_bytes
                if stack_site[j]:
                    commit.extend(
                        self._stack_access_lines(m, insn.off, size))
                    offset = f"_o{m}"
                else:
                    commit.extend(self._access_lines(f"_a{m}", size))
                    offset = f"_a{m} - _b{m}"
                if size == 1:  # bytearray indexing beats a struct call
                    commit.append(f"_v{insn.dst} = _g{m}.data[{offset}]")
                else:
                    commit.append(f"_v{insn.dst} = "
                                  f"_up{size}(_g{m}.data, {offset})[0]")
            else:  # store
                m = memop_index[j]
                size = insn.size_bytes
                szmask = (1 << (size * 8)) - 1
                if (insn.opcode & op.CLASS_MASK) == op.BPF_ST:
                    value = f"{insn.imm & _U64 & szmask:#x}"
                else:
                    value = f"_v{insn.src} & {szmask:#x}"
                if stack_site[j]:
                    commit.extend(
                        self._stack_access_lines(m, insn.off, size))
                    offset = f"_o{m}"
                else:
                    commit.extend(self._access_lines(f"_a{m}", size))
                    offset = f"_a{m} - _b{m}"
                if size == 1:
                    commit.append(f"_g{m}.data[{offset}] = {value}")
                else:
                    commit.append(
                        f"_pk{size}(_g{m}.data, {offset}, {value})")

        lines = [
            f"if _bud < {k}:",
            f"    bail[{BAIL_BUDGET}] += 1",
            f"    raise _Bail({start})",
        ]
        if n_mem:
            lines.extend(self._vercheck())
            lines.append("try:")
            lines.extend(_indent(phase1))
            lines.append("except MemoryFault:")
            lines.append(f"    bail[{BAIL_MEMORY}] += 1")
            lines.append(f"    raise _Bail({start})")
        else:
            lines.extend(phase1)
        lines.extend(commit)
        lines.append(f"_bud -= {k}")
        if base:
            lines.append(f"_cyc += {base}")
        return lines

    # --------------------------------------------------------- helper calls
    def _map_fd_at(self, body: List[Tuple[int, Instruction]]
                   ) -> Dict[int, Optional[int]]:
        """For each call site in *body*, the map fd proven to be in r1:
        the most recent same-block ``ld_imm64 r1 = map_fd N`` with no
        intervening redefinition of r1 (helpers preserve r1-r5 in this
        VM, so calls do not clobber it)."""
        fd: Optional[int] = None
        out: Dict[int, Optional[int]] = {}
        for pc, insn in body:
            cls = insn.opcode & op.CLASS_MASK
            if cls in (op.BPF_JMP, op.BPF_JMP32) and \
                    (insn.opcode & op.JMP_OP_MASK) == op.BPF_CALL:
                out[pc] = fd
                continue
            if _is_ld64(insn):
                if insn.dst == op.R1:
                    fd = insn.imm if insn.src == BPF_PSEUDO_MAP_FD else None
            elif _is_alu(insn):
                if insn.dst == op.R1:
                    fd = None
            elif _is_load(insn):
                if insn.dst == op.R1:
                    fd = None
            elif insn.is_atomic:
                if (insn.imm & op.BPF_FETCH) and insn.src == op.R1:
                    fd = None
        return out

    def _bind_map(self, fd: int) -> str:
        name = self.map_fds.get(fd)
        if name is None:
            name = f"_map{fd}"
            self.map_fds[fd] = name
        return name

    def _call(self, pc: int, insn: Instruction,
              fd: Optional[int]) -> List[str]:
        helper_id = insn.imm
        name = HELPER_NAMES.get(helper_id, "")
        charge = cost.JUMP_COST + cost.HELPER_COST.get(
            name, cost.DEFAULT_HELPER_COST)
        method = _MAP_HELPERS.get(helper_id)
        if (method is not None and fd is not None
                and 1 <= fd <= len(self.map_specs)):
            # map-fd guard specialization: the fd is a proven constant,
            # so bind the BpfMap once and guard-check at run time.  The
            # guard bails *before* any accounting — the fast engine
            # re-executes the call from scratch, bit-identically.  The
            # loads can fault, so counters run flushed-and-real here.
            spec = self.map_specs[fd - 1]
            var = self._bind_map(fd)
            ks, vs = spec.key_size, spec.value_size
            self.guarded_sites += 1
            lines = [
                f"if _v1 != {fd}:",
                f"    bail[{BAIL_GUARD}] += 1",
                f"    raise _Bail({pc})",
            ] + self._flush() + self._acct_real() + [
                "counters.helper_calls += 1",
                f"counters.cycles += {charge}",
            ]
            if method == "lookup":
                lines += [
                    f"_k = load_bytes(_v2, {ks})",
                    f"counters.cycles += access(_v2, {ks})",
                    "_pln = -1",
                    f"_v0 = {var}.lookup(_k) & {_U64:#x}",
                ]
            elif method == "update":
                lines += [
                    f"_k = load_bytes(_v2, {ks})",
                    f"_val = load_bytes(_v3, {vs})",
                    f"counters.cycles += access(_v2, {ks})",
                    f"counters.cycles += access(_v3, {vs})",
                    "_pln = -1",
                    f"_v0 = {var}.update(_k, _val, _v4 & 0xff)"
                    f" & {_U64:#x}",
                ]
            else:  # delete: key load only, no cache traffic (reference)
                lines += [
                    f"_k = load_bytes(_v2, {ks})",
                    f"_v0 = {var}.delete(_k) & {_U64:#x}",
                ]
            return lines
        tail = self._inline_helper(helper_id)
        if tail is not None:
            # stateless helpers cannot fault: stay on the accumulators
            self.inline_helpers += 1
            return self._acct() + [
                "counters.helper_calls += 1",
                f"_cyc += {charge}",
            ] + tail
        # generic helper dispatch: may fault or read the clock, so the
        # counters must be exact going in
        return self._flush() + self._acct_real() + [
            "counters.helper_calls += 1",
            f"counters.cycles += {charge}",
            "_pln = -1",
            f"_v0 = call({helper_id}, [_v1, _v2, _v3, _v4, _v5])",
        ]

    def _inline_helper(self, helper_id: int) -> Optional[List[str]]:
        """Direct inline bodies for the trivial stateless helpers (the
        bound objects — task, rng, counters — are the live ones, so
        mutation flows through exactly as via HelperRuntime).  The
        simulated clock reads the real cycle counter plus the local
        accumulator, so batching is invisible to it."""
        if helper_id in (HELPER_IDS["ktime_get_ns"],
                         HELPER_IDS["ktime_get_boot_ns"]):
            return ["_v0 = (1000000000 + counters.cycles + _cyc"
                    f" + _hl * _mru) & {_U64:#x}"]
        if helper_id == HELPER_IDS["get_prandom_u32"]:
            return ["_v0 = getrandbits(32)"]
        if helper_id == HELPER_IDS["get_smp_processor_id"]:
            return ["_v0 = 0"]
        if helper_id == HELPER_IDS["get_current_pid_tgid"]:
            return [f"_v0 = ((task.tgid << 32) | task.pid) & {_U64:#x}"]
        if helper_id == HELPER_IDS["get_current_uid_gid"]:
            return [f"_v0 = ((task.gid << 32) | task.uid) & {_U64:#x}"]
        if helper_id == HELPER_IDS["trace_printk"]:
            return ["helpers.printk_count += 1", "_v0 = 0"]
        return None

    # -------------------------------------------------------------- atomics
    def _atomic(self, pc: int, insn: Instruction) -> List[str]:
        size = insn.size_bytes
        szmask = (1 << (size * 8)) - 1
        m = self.memo_count
        self.memo_count += 1
        lines = self._flush() + self._acct_real() + [
            f"counters.cycles += {cost.ATOMIC_BASE_COST}",
            "counters.atomics += 1",
            f"_a = (_v{insn.dst} + {insn.off}) & {_U64:#x}",
            f"counters.cycles += access(_a, {size})",
            "_pln = -1",
        ] + self._vercheck() + [
            f"_g = memo[{m}]",
            f"if _g is None or _g.base > _a "
            f"or _a + {size} > _g.base + len(_g.data):",
            "    try:",
            f"        _g = find(_a, {size})",
            "    except MemoryFault as exc:",
            "        raise VmFault(str(exc)) from None",
            f"    memo[{m}] = _g",
            "_o = _a - _g.base",
            f"_old = _up{size}(_g.data, _o)[0]",
        ]
        aop = insn.imm & ~op.BPF_FETCH
        operand = f"(_v{insn.src} & {szmask:#x})"
        if aop == op.BPF_ATOMIC_ADD:
            new = f"(_old + {operand})"
        elif aop == op.BPF_ATOMIC_AND:
            new = f"(_old & {operand})"
        elif aop == op.BPF_ATOMIC_OR:
            new = f"(_old | {operand})"
        elif aop == op.BPF_ATOMIC_XOR:
            new = f"(_old ^ {operand})"
        elif insn.imm == op.BPF_XCHG:
            new = operand
        else:  # unsupported (e.g. CMPXCHG): reference faults after load
            lines.append(f"raise VmFault('unsupported atomic "
                         f"{insn.imm:#x}')")
            return lines
        lines.append(f"_pk{size}(_g.data, _o, {new} & {szmask:#x})")
        if insn.imm & op.BPF_FETCH:
            lines.append(f"_v{insn.src} = _old")
        return lines

    # ---------------------------------------------------------- terminators
    def _writeback(self) -> List[str]:
        return [f"regs[{r}] = _v{r}" for r in range(op.NUM_REGS)]

    def term_lines(self, block: CfgBlock,
                   render: Callable[[int], List[str]]) -> List[str]:
        term = block.term
        if term.kind == "fall":
            return render(term.fall)
        if term.kind == "exit":
            return self._acct() + [
                f"_cyc += {cost.base_cost(term.insn)}",
                "counters.instructions += _lbud - _bud",
                "counters.cycles += _cyc + _hl * _mru",
                "counters.branches += _br",
                "_cs.references += _ref + _mru",
                "_cs.misses += _mis",
                "_bs.branches += _bb",
            ] + self._writeback() + ["return -1"]
        if term.kind == "ja":
            return self._acct() + [
                f"_cyc += {cost.JUMP_COST}",
                "_br += 1",
            ] + render(term.taken)
        # conditional
        pre, expr = self._cond(term.insn)
        if expr is None:  # unknown jump op: keep it on the slow path
            return [f"bail[{BAIL_OTHER}] += 1", f"raise _Bail({term.pc})"]
        fall = render(term.fall)
        taken = render(term.taken)
        lines = self._acct() + [f"_cyc += {cost.JUMP_COST}"]
        lines += pre
        lines += [
            f"_t = {expr}",
            "_br += 1",
        ]
        # a plain (non-profiling) predictor is inlined: the 2-bit
        # saturating-counter update is a handful of local/dict ops,
        # replicating BranchPredictor.record's order of events exactly;
        # subclasses (e.g. the PGO profiler) keep the bound-method call
        lines += [
            "if _plainbp:",
            f"    _sl = {term.pc} % _tbsz",
            "    _c = _bc.get(_sl, 1)",
            "    _bb += 1",
            "    if (_c >= 2) != _t:",
            "        _bs.mispredictions += 1",
            "        _cyc += _mpen",
            "    if _t:",
            "        _bc[_sl] = _c + 1 if _c < 3 else 3",
            "    else:",
            "        _bc[_sl] = _c - 1 if _c > 0 else 0",
            "else:",
            f"    _cyc += record({term.pc}, _t)",
            "if _t:",
        ]
        lines += _indent(taken)
        lines.append("else:")
        lines += _indent(fall)
        return lines

    def _cond(self, insn: Instruction
              ) -> Tuple[List[str], Optional[str]]:
        """(prelude, bool expression) for a conditional jump, exploiting
        the engine invariant that registers always hold 0 <= v < 2**64
        (so 64-bit unsigned compares need no masking)."""
        is32 = (insn.opcode & op.CLASS_MASK) == op.BPF_JMP32
        mask = _U32 if is32 else _U64
        bits = 32 if is32 else 64
        sign = 1 << (bits - 1)
        wrap = 1 << bits
        d, s = insn.dst, insn.src
        jop = insn.opcode & op.JMP_OP_MASK
        unsigned = {op.BPF_JEQ: "==", op.BPF_JNE: "!=", op.BPF_JGT: ">",
                    op.BPF_JGE: ">=", op.BPF_JLT: "<", op.BPF_JLE: "<="}
        lhs = f"(_v{d} & {_U32:#x})" if is32 else f"_v{d}"
        if insn.uses_imm:
            rhs = f"{insn.imm & mask:#x}"
        else:
            rhs = f"(_v{s} & {_U32:#x})" if is32 else f"_v{s}"
        if jop in unsigned:
            return [], f"{lhs} {unsigned[jop]} {rhs}"
        if jop == op.BPF_JSET:
            return [], f"({lhs} & {rhs}) != 0"
        signed_ops = {op.BPF_JSGT: ">", op.BPF_JSGE: ">=",
                      op.BPF_JSLT: "<", op.BPF_JSLE: "<="}
        if jop in signed_ops:
            pre = [
                f"_x = {lhs}",
                f"if _x >= {sign:#x}:",
                f"    _x -= {wrap:#x}",
            ]
            if insn.uses_imm:
                k = insn.imm & mask
                rhs_expr = str(k - wrap if k & sign else k)
            else:
                pre += [
                    f"_y = {rhs}",
                    f"if _y >= {sign:#x}:",
                    f"    _y -= {wrap:#x}",
                ]
                rhs_expr = "_y"
            return pre, f"_x {signed_ops[jop]} {rhs_expr}"
        return [], None  # unknown jump op


# ------------------------------------------------------------------ compile
@dataclass
class JitProgram:
    """Machine-independent JIT compilation of one program: the decode it
    shares with the fast engine plus the compiled binder factory (or a
    fallback marker)."""

    decoded: DecodedProgram
    factory: Optional[Callable]
    source: str
    n_memops: int
    n_blocks: int
    guarded_sites: int
    inline_helpers: int
    fallback_reason: str
    key: str

    @property
    def compiled(self) -> bool:
        return self.factory is not None


def _binder_source(body: List[str], emitter: _Emitter) -> str:
    lines = [
        "def _jit_binder(machine, budget, memo, ver, bail):",
        "    counters = machine.counters",
        "    memory = machine.memory",
        "    find = memory.find",
        "    _cache = machine.cache",
        "    access = _cache.access",
        "    _lb = _cache.line_bytes",
        "    _ns = _cache.num_sets",
        "    _hl = _cache.hit_latency",
        "    _mp = _cache.miss_penalty",
        "    _wy = _cache.ways",
        "    _branch = machine.branch",
        "    record = _branch.record",
        "    _plainbp = type(_branch) is BranchPredictor",
        "    _tbsz = _branch.table_size",
        "    _mpen = _branch.mispredict_penalty",
        "    helpers = machine.helpers",
        "    call = helpers.call",
        "    task = machine.task",
        "    getrandbits = helpers.rng.getrandbits",
        "    load_bytes = memory.load_bytes",
        f"    _empty = [None] * {emitter.memo_count}",
    ]
    for fd in sorted(emitter.map_fds):
        lines.append(f"    {emitter.map_fds[fd]} = machine.maps_by_id[{fd}]")
    lines.append("    def run(regs):")
    # re-read the stats/sets objects per run: CacheModel.reset()
    # replaces both, and the inline fast path must see the live ones
    prologue = [
        "_cs = _cache.stats",
        "_sets = _cache.sets",
        "_bs = _branch.stats",
        "_bc = _branch.counters",
        "_bud = budget[0]",
        "_lbud = _bud",
        "_cyc = 0",
        "_bb = 0",
        "_br = 0",
        "_ref = 0",
        "_mru = 0",
        "_mis = 0",
        "_pln = -1",
        "_L = 0",
    ] + [f"_v{r} = regs[{r}]" for r in range(op.NUM_REGS)]
    lines.extend("        " + line for line in prologue)
    lines.append("        try:")
    lines.extend("            " + line for line in body)
    lines.append("            raise AssertionError('jit fell off the "
                 "structured region')  # pragma: no cover")
    lines.append("        except _Bail as _b:")
    epilogue = [
        "counters.instructions += _lbud - _bud",
        "counters.cycles += _cyc + _hl * _mru",
        "counters.branches += _br",
        "_cs.references += _ref + _mru",
        "_cs.misses += _mis",
        "_bs.branches += _bb",
        "budget[0] = _bud",
    ] + [f"regs[{r}] = _v{r}" for r in range(op.NUM_REGS)] + [
        "return _b.pc",
    ]
    lines.extend("            " + line for line in epilogue)
    lines.append("    return run")
    return "\n".join(lines)


def _expand_slots(program: BpfProgram) -> List[Optional[Instruction]]:
    slots: List[Optional[Instruction]] = []
    for insn in program.insns:
        slots.append(insn)
        if insn.slots == 2:
            slots.append(None)
    return slots


def _compile_jit(program: BpfProgram, decoded: DecodedProgram,
                 key: str) -> JitProgram:
    def fallback(reason: str) -> JitProgram:
        return JitProgram(decoded=decoded, factory=None, source="",
                          n_memops=0, n_blocks=0, guarded_sites=0,
                          inline_helpers=0, fallback_reason=reason, key=key)

    slots = _expand_slots(program)
    if len(slots) > JIT_MAX_SLOTS:
        return fallback(f"program too large ({len(slots)} slots)")
    try:
        cfg = build_cfg(slots)
        emitter = _Emitter(cfg, program)
        body = Relooper(cfg, emitter).emit(0)
        source = _binder_source(body, emitter)
        namespace = dict(_SB_GLOBALS)
        namespace["VmFault"] = VmFault
        namespace["MemoryFault"] = MemoryFault
        namespace["_BUDGET_MSG"] = _BUDGET_MSG
        namespace["_Bail"] = _Bail
        namespace["BranchPredictor"] = BranchPredictor
        exec(compile(source, f"<jit:{key[:12]}>", "exec"), namespace)
        factory = namespace["_jit_binder"]
    except StructureError as exc:
        return fallback(f"structure: {exc}")
    except (SyntaxError, RecursionError) as exc:
        # e.g. "too many statically nested blocks" / indentation limits
        return fallback(f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # pragma: no cover - codegen bug safety net
        if STRICT:
            raise
        return fallback(f"{type(exc).__name__}: {exc}")
    return JitProgram(decoded=decoded, factory=factory, source=source,
                      n_memops=emitter.memo_count, n_blocks=len(cfg.blocks),
                      guarded_sites=emitter.guarded_sites,
                      inline_helpers=emitter.inline_helpers,
                      fallback_reason="", key=key)


# -------------------------------------------------------------------- cache
JIT_CACHE_CAPACITY = 256

_jit_cache: "OrderedDict[str, JitProgram]" = OrderedDict()
_jit_stats = DecodeCacheStats()


def jit_cache_stats() -> DecodeCacheStats:
    """A snapshot of the process-wide JIT code-object cache statistics."""
    return DecodeCacheStats(_jit_stats.hits, _jit_stats.misses)


def jit_cache_size() -> int:
    return len(_jit_cache)


def clear_jit_cache() -> None:
    _jit_cache.clear()
    _jit_stats.hits = 0
    _jit_stats.misses = 0


def compile_jit_program(program: BpfProgram) -> JitProgram:
    """Compile *program* (or fetch the shared compilation for its
    content key — the same key the decode cache uses)."""
    key = key_for_bytecode(program)
    cached = _jit_cache.get(key)
    if cached is not None:
        _jit_stats.hits += 1
        _jit_cache.move_to_end(key)
        return cached
    _jit_stats.misses += 1
    compiled = _compile_jit(program, decode_program(program), key)
    _jit_cache[key] = compiled
    while len(_jit_cache) > JIT_CACHE_CAPACITY:
        _jit_cache.popitem(last=False)
    return compiled


# ---------------------------------------------------------------- execution
class JitExecution:
    """A :class:`JitProgram` bound to one Machine's models.

    Owns a :class:`FastExecution` over the same decode: the two share
    one budget cell, so a bail mid-program resumes the dispatch loop
    with exactly the remaining budget, and a program that never JITted
    (fallback) runs entirely on the fast engine.
    """

    __slots__ = ("jit", "fast", "fn", "bail", "deopt_runs",
                 "_budget", "_max_insns", "_counters")

    def __init__(self, jit: JitProgram, machine) -> None:
        self.jit = jit
        self.fast = FastExecution(jit.decoded, machine)
        self._budget = self.fast._budget
        self._max_insns = machine.max_insns
        self._counters = machine.counters
        self.bail = [0, 0, 0, 0]
        self.deopt_runs = 0
        if jit.factory is not None:
            memo: List[Optional[object]] = [None] * jit.n_memops
            ver = [-1]
            self.fn = jit.factory(machine, self._budget, memo, ver,
                                  self.bail)
        else:
            self.fn = None

    def execute(self, regs: List[int]) -> int:
        fn = self.fn
        if fn is None:
            return self.fast.execute(regs)
        budget = self._budget
        budget[0] = self._max_insns
        counted = self._counters.instructions
        try:
            pc = fn(regs)
            if pc < 0:
                return regs[op.R0]
            # deoptimize: resume the certified dispatch loop at the
            # bail slot with the shared budget cell
            self.deopt_runs += 1
            handlers = self.fast.handlers
            try:
                while True:
                    pc = handlers[pc](regs)
            except _Exit:
                return regs[op.R0]
        except VmFault as exc:
            check_budget_fault(exc, self._counters.instructions - counted,
                               self._max_insns)
            raise

    @property
    def stats(self) -> dict:
        return {
            "compiled": self.jit.compiled,
            "fallback_reason": self.jit.fallback_reason,
            "blocks": self.jit.n_blocks,
            "memo_sites": self.jit.n_memops,
            "guarded_sites": self.jit.guarded_sites,
            "inline_helpers": self.jit.inline_helpers,
            "deopt_runs": self.deopt_runs,
            "bails": dict(zip(BAIL_CAUSES, self.bail)),
        }


def bind_jit(machine) -> JitExecution:
    """Compile (or reuse the cached compilation of) ``machine.program``
    and bind it to the machine's counters, cache, predictor, memory,
    maps and helper runtime."""
    return JitExecution(compile_jit_program(machine.program), machine)
