"""Pre-decoded fast-dispatch execution engine.

The reference interpreter re-classifies every instruction on every
visit: mask the opcode, walk an if/elif ladder, look up the cost table,
re-resolve the operand kind.  This module does all of that **once per
program**: each slot is decoded into a specialized handler closure
``h(regs) -> next_pc`` with its base cycle cost, operand kind
(immediate vs. register), width mask, resolved jump targets, and helper
cost baked in as captured constants.  The dispatch loop is then just::

    while True:
        pc = handlers[pc](regs)

Decoding is split into two phases so the expensive part is shared:

* :func:`decode_program` produces a machine-independent
  :class:`DecodedProgram` — binder factories plus compiled superblocks —
  cached in a small LRU keyed by :func:`repro.cache.key_for_bytecode`
  (the program's content identity, so every Machine over the same
  bytecode shares one decode);
* :func:`bind_machine` binds those factories to a concrete
  :class:`~repro.vm.interpreter.Machine` (its counters, cache model,
  branch predictor, memory and helper runtime), which is cheap.

Semantics are bit-identical to the reference engine by construction:
every handler replicates the reference code path's exact operation
order, fault messages, and counter updates (see tests/test_engine.py
and the fuzz engine-vs-engine axis).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ...cache.keys import key_for_bytecode
from ...isa import BpfProgram, Instruction
from ...isa import opcodes as op
from ...isa.helpers import HELPER_NAMES
from .. import cost
from ..interpreter import VmFault
from ..memory import MemoryFault
from .superblock import SuperBlock, _alu_source, bswap_value, find_blocks

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

_BUDGET_MSG = "instruction budget exhausted (infinite loop?)"

_PACKERS = {
    1: struct.Struct("<B"),
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}

#: a binder takes (machine, budget_cell) and returns a bound handler
Binder = Callable[[object, List[int]], Callable[[List[int]], int]]


class _Exit(Exception):
    """Internal control-flow signal: the program executed BPF_EXIT."""


# ----------------------------------------------------------------- targets
def _target(t: int, n: int) -> Tuple[Optional[int], Optional[str]]:
    """Resolve a jump target at decode time.

    ``t == n`` (one past the end) is a *valid* handler index — the
    sentinel slot raises the same out-of-bounds fault the reference
    engine produces, and only if control actually falls there.
    Anything outside ``[0, n]`` can never be dispatched, so the fault
    is raised by the jump handler itself (after branch bookkeeping,
    matching the reference order of events).
    """
    if 0 <= t <= n:
        return t, None
    return None, f"pc {t} out of program bounds"


# ------------------------------------------------------------ fault binders
def _raise_binder(msg: str) -> Binder:
    """Slot that faults on dispatch without counting anything — used for
    the one-past-the-end sentinel and ld_imm64 second slots, where the
    reference engine faults before touching budget or counters."""

    def binder(machine, budget):
        def h(regs):
            raise VmFault(msg)

        return h

    return binder


def _alu_keyerror_binder(aop: int) -> Binder:
    """Reference behavior for an ALU opcode missing from the cost table:
    ``cost.base_cost`` raises ``KeyError`` *after* the instruction was
    counted.  Unreachable from the assembler; replicated for fidelity."""

    def binder(machine, budget):
        cnt = machine.counters

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            raise KeyError(aop)

        return h

    return binder


# -------------------------------------------------------------- ALU binders
def _alu_binder(insn: Instruction, nxt: int) -> Binder:
    aop = insn.opcode & op.ALU_OP_MASK
    if aop not in cost.ALU_COST:
        return _alu_keyerror_binder(aop)
    c = cost.ALU_COST[aop]
    stmts = _alu_source(insn, lambda r: f"regs[{r}]")
    body = "\n".join("        " + s for s in stmts)
    source = (
        "def _binder(machine, budget):\n"
        "    cnt = machine.counters\n"
        "    def h(regs):\n"
        "        budget[0] -= 1\n"
        "        if budget[0] < 0:\n"
        "            raise VmFault(_BUDGET_MSG)\n"
        "        cnt.instructions += 1\n"
        f"        cnt.cycles += {c}\n"
        f"{body}\n"
        f"        return {nxt}\n"
        "    return h\n"
    )
    namespace = {
        "VmFault": VmFault,
        "_BUDGET_MSG": _BUDGET_MSG,
        "_bswap": bswap_value,
    }
    exec(compile(source, f"<alu@{nxt - 1}>", "exec"), namespace)
    return namespace["_binder"]


# ----------------------------------------------------------- memory binders
def _ldx_binder(insn: Instruction, nxt: int) -> Binder:
    size = insn.size_bytes
    unpack = _PACKERS[size].unpack_from
    dst, src, off = insn.dst, insn.src, insn.off

    def binder(machine, budget):
        cnt = machine.counters
        access = machine.cache.access
        memory = machine.memory
        find = memory.find
        # (region, memory.version) memo: regions are disjoint, so if the
        # cached region still contains the address at the same version it
        # is exactly what find() would return.  Bounds are re-checked
        # against the live len() so in-place resizes stay correct.
        memo = [None, -1]

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1  # base cost of a load is 0
            addr = (regs[src] + off) & _U64
            cnt.cycles += access(addr, size)
            region = memo[0]
            if (region is None or memo[1] != memory.version
                    or addr < region.base
                    or addr + size > region.base + len(region.data)):
                try:
                    region = find(addr, size)
                except MemoryFault as exc:
                    raise VmFault(str(exc)) from None
                memo[0] = region
                memo[1] = memory.version
            regs[dst] = unpack(region.data, addr - region.base)[0]
            return nxt

        return h

    return binder


def _store_binder(insn: Instruction, nxt: int) -> Binder:
    size = insn.size_bytes
    pack = _PACKERS[size].pack_into
    szmask = (1 << (size * 8)) - 1
    dst, off = insn.dst, insn.off
    imm_value = (insn.imm & _U64) & szmask if insn.is_store_imm else None
    src = insn.src

    def binder(machine, budget):
        cnt = machine.counters
        access = machine.cache.access
        memory = machine.memory
        find = memory.find
        memo = [None, -1]  # see _ldx_binder

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += cost.STORE_BASE_COST
            addr = (regs[dst] + off) & _U64
            cnt.cycles += access(addr, size)
            region = memo[0]
            if (region is None or memo[1] != memory.version
                    or addr < region.base
                    or addr + size > region.base + len(region.data)):
                try:
                    region = find(addr, size)
                except MemoryFault as exc:
                    raise VmFault(str(exc)) from None
                memo[0] = region
                memo[1] = memory.version
            value = imm_value if imm_value is not None else regs[src] & szmask
            pack(region.data, addr - region.base, value)
            return nxt

        return h

    return binder


def _atomic_binder(insn: Instruction, nxt: int) -> Binder:
    size = insn.size_bytes
    st = _PACKERS[size]
    unpack, pack = st.unpack_from, st.pack_into
    szmask = (1 << (size * 8)) - 1
    dst, src, off, imm = insn.dst, insn.src, insn.off, insn.imm
    aop = imm & ~op.BPF_FETCH
    if aop == op.BPF_ATOMIC_ADD:
        op_fn = lambda old, operand: old + operand
    elif aop == op.BPF_ATOMIC_AND:
        op_fn = lambda old, operand: old & operand
    elif aop == op.BPF_ATOMIC_OR:
        op_fn = lambda old, operand: old | operand
    elif aop == op.BPF_ATOMIC_XOR:
        op_fn = lambda old, operand: old ^ operand
    elif imm == op.BPF_XCHG:
        op_fn = lambda old, operand: operand
    else:
        op_fn = None  # unsupported (e.g. CMPXCHG): fault after the load
    fetch = bool(imm & op.BPF_FETCH)

    def binder(machine, budget):
        cnt = machine.counters
        access = machine.cache.access
        memory = machine.memory
        find = memory.find
        memo = [None, -1]  # see _ldx_binder

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += cost.ATOMIC_BASE_COST
            cnt.atomics += 1
            addr = (regs[dst] + off) & _U64
            cnt.cycles += access(addr, size)
            region = memo[0]
            if (region is None or memo[1] != memory.version
                    or addr < region.base
                    or addr + size > region.base + len(region.data)):
                try:
                    region = find(addr, size)
                except MemoryFault as exc:
                    raise VmFault(str(exc)) from None
                memo[0] = region
                memo[1] = memory.version
            offset = addr - region.base
            old = unpack(region.data, offset)[0]
            if op_fn is None:
                raise VmFault(f"unsupported atomic {imm:#x}")
            operand = regs[src] & szmask
            pack(region.data, offset, op_fn(old, operand) & szmask)
            if fetch:
                regs[src] = old
            return nxt

        return h

    return binder


def _ld_imm64_binder(insn: Instruction, nxt: int) -> Binder:
    dst = insn.dst
    value = insn.imm & _U64

    def binder(machine, budget):
        cnt = machine.counters

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += cost.LD_IMM64_COST
            regs[dst] = value
            return nxt

        return h

    return binder


def _bad_ld_binder(insn: Instruction) -> Binder:
    """Non-imm64 BPF_LD modes (ABS/IND): counted, zero base cost, then
    the reference's 'unsupported LD mode' fault."""
    msg = f"unsupported LD mode {insn.opcode:#x}"

    def binder(machine, budget):
        cnt = machine.counters

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            raise VmFault(msg)

        return h

    return binder


# ------------------------------------------------------------- jump binders
def _make_condition(insn: Instruction, is32: bool):
    """A decode-time-specialized predicate regs -> bool, replicating the
    reference ``_condition`` (including the unknown-op fault)."""
    mask = _U32 if is32 else _U64
    bits = 32 if is32 else 64
    sign = 1 << (bits - 1)
    wrap = 1 << bits
    dst, src = insn.dst, insn.src
    jop = insn.opcode & op.JMP_OP_MASK
    uses_imm = insn.uses_imm
    k = insn.imm & mask if uses_imm else None

    if jop in (op.BPF_JEQ, op.BPF_JNE, op.BPF_JGT, op.BPF_JGE,
               op.BPF_JLT, op.BPF_JLE, op.BPF_JSET):
        import operator as _operator

        cmp = {
            op.BPF_JEQ: _operator.eq,
            op.BPF_JNE: _operator.ne,
            op.BPF_JGT: _operator.gt,
            op.BPF_JGE: _operator.ge,
            op.BPF_JLT: _operator.lt,
            op.BPF_JLE: _operator.le,
            op.BPF_JSET: lambda a, b: bool(a & b),
        }[jop]
        if uses_imm:
            def cond(regs, cmp=cmp, k=k):
                return cmp(regs[dst] & mask, k)
        else:
            def cond(regs, cmp=cmp):
                return cmp(regs[dst] & mask, regs[src] & mask)
        return cond

    if jop in (op.BPF_JSGT, op.BPF_JSGE, op.BPF_JSLT, op.BPF_JSLE):
        import operator as _operator

        cmp = {
            op.BPF_JSGT: _operator.gt,
            op.BPF_JSGE: _operator.ge,
            op.BPF_JSLT: _operator.lt,
            op.BPF_JSLE: _operator.le,
        }[jop]
        if uses_imm:
            ks = k - wrap if k & sign else k

            def cond(regs, cmp=cmp, ks=ks):
                lhs = regs[dst] & mask
                if lhs & sign:
                    lhs -= wrap
                return cmp(lhs, ks)
        else:
            def cond(regs, cmp=cmp):
                lhs = regs[dst] & mask
                if lhs & sign:
                    lhs -= wrap
                rhs = regs[src] & mask
                if rhs & sign:
                    rhs -= wrap
                return cmp(lhs, rhs)
        return cond

    msg = f"unknown jump op {jop:#x}"

    def cond(regs):
        raise VmFault(msg)

    return cond


def _ja_binder(insn: Instruction, pc: int, n: int) -> Binder:
    tv, tmsg = _target(pc + 1 + insn.off, n)

    def binder(machine, budget):
        cnt = machine.counters

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += cost.JUMP_COST
            cnt.branches += 1
            if tv is None:
                raise VmFault(tmsg)
            return tv

        return h

    return binder


def _jmp_binder(insn: Instruction, pc: int, n: int, is32: bool) -> Binder:
    cond = _make_condition(insn, is32)
    tv, tmsg = _target(pc + 1 + insn.off, n)
    fall = pc + 1  # always <= n, so always a dispatchable handler index

    def binder(machine, budget):
        cnt = machine.counters
        record = machine.branch.record

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += cost.JUMP_COST
            taken = cond(regs)
            cnt.branches += 1
            cnt.cycles += record(pc, taken)
            if taken:
                if tv is None:
                    raise VmFault(tmsg)
                return tv
            return fall

        return h

    return binder


def _call_binder(insn: Instruction, nxt: int) -> Binder:
    helper_id = insn.imm
    name = HELPER_NAMES.get(helper_id, "")
    charge = cost.JUMP_COST + cost.HELPER_COST.get(name, cost.DEFAULT_HELPER_COST)

    def binder(machine, budget):
        cnt = machine.counters
        call = machine.helpers.call

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.helper_calls += 1
            cnt.cycles += charge
            regs[op.R0] = call(helper_id, regs[1:6])
            return nxt

        return h

    return binder


def _exit_binder(insn: Instruction) -> Binder:
    c = cost.base_cost(insn)  # EXIT_COST for JMP, JUMP_COST for JMP32

    def binder(machine, budget):
        cnt = machine.counters

        def h(regs):
            budget[0] -= 1
            if budget[0] < 0:
                raise VmFault(_BUDGET_MSG)
            cnt.instructions += 1
            cnt.cycles += c
            raise _Exit

        return h

    return binder


# ------------------------------------------------------------------ decode
@dataclass
class DecodedProgram:
    """Machine-independent decode of one program: per-slot binder
    factories (index ``n`` is the out-of-bounds sentinel) plus compiled
    superblocks."""

    binders: List[Binder]
    blocks: List[SuperBlock]
    n_slots: int
    key: str


def _decode_slots(slots: Sequence[Optional[Instruction]]) -> List[Binder]:
    n = len(slots)
    binders: List[Binder] = [None] * (n + 1)  # type: ignore[list-item]
    pc = 0
    while pc < n:
        insn = slots[pc]
        if insn is None:  # second slot of ld_imm64
            binders[pc] = _raise_binder(
                f"jump into the middle of ld_imm64 at slot {pc}"
            )
            pc += 1
            continue
        nxt = pc + insn.slots
        step = 1  # visit the ld_imm64 second slot so it gets its binder
        cls = insn.opcode & op.CLASS_MASK
        if cls in (op.BPF_ALU64, op.BPF_ALU):
            binders[pc] = _alu_binder(insn, nxt)
        elif cls == op.BPF_LDX:
            binders[pc] = _ldx_binder(insn, nxt)
        elif cls in (op.BPF_ST, op.BPF_STX):
            if insn.is_atomic:
                binders[pc] = _atomic_binder(insn, nxt)
            else:
                binders[pc] = _store_binder(insn, nxt)
        elif cls == op.BPF_LD:
            if insn.is_ld_imm64:
                binders[pc] = _ld_imm64_binder(insn, nxt)
            else:
                binders[pc] = _bad_ld_binder(insn)
        else:  # BPF_JMP / BPF_JMP32
            jop = insn.opcode & op.JMP_OP_MASK
            if jop == op.BPF_EXIT:
                binders[pc] = _exit_binder(insn)
            elif jop == op.BPF_CALL:
                binders[pc] = _call_binder(insn, nxt)
            elif jop == op.BPF_JA:
                binders[pc] = _ja_binder(insn, pc, n)
            else:
                binders[pc] = _jmp_binder(insn, pc, n, cls == op.BPF_JMP32)
        pc += step
    binders[n] = _raise_binder(f"pc {n} out of program bounds")
    return binders


# ------------------------------------------------------------ decode cache
@dataclass
class DecodeCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


DECODE_CACHE_CAPACITY = 256

_decode_cache: "OrderedDict[str, DecodedProgram]" = OrderedDict()
_decode_stats = DecodeCacheStats()


def decode_cache_stats() -> DecodeCacheStats:
    """A snapshot of the process-wide decode cache statistics."""
    return DecodeCacheStats(_decode_stats.hits, _decode_stats.misses)


def clear_decode_cache() -> None:
    _decode_cache.clear()
    _decode_stats.hits = 0
    _decode_stats.misses = 0


def decode_program(program: BpfProgram) -> DecodedProgram:
    """Decode *program* (or fetch the shared decode for its content key)."""
    key = key_for_bytecode(program)
    cached = _decode_cache.get(key)
    if cached is not None:
        _decode_stats.hits += 1
        _decode_cache.move_to_end(key)
        return cached
    _decode_stats.misses += 1
    slots: List[Optional[Instruction]] = []
    for insn in program.insns:
        slots.append(insn)
        if insn.slots == 2:
            slots.append(None)
    decoded = DecodedProgram(
        binders=_decode_slots(slots),
        blocks=find_blocks(slots),
        n_slots=len(slots),
        key=key,
    )
    _decode_cache[key] = decoded
    while len(_decode_cache) > DECODE_CACHE_CAPACITY:
        _decode_cache.popitem(last=False)
    return decoded


# -------------------------------------------------------------------- bind
def _bind_block(block: SuperBlock, machine, budget, singles):
    fn = block.fn
    k = block.count
    base_sum = block.base_cycles
    nxt = block.next_pc
    start = block.start
    cnt = machine.counters
    memory = machine.memory
    find = memory.find
    access = machine.cache.access
    # per-memop-site region memo consumed by the generated code (see
    # superblock._compile_block); cleared whenever the region table
    # changes so a stale Region can never satisfy the inline check
    n_memops = block.n_memops
    memo = [None] * n_memops
    empty = [None] * n_memops
    ver = [-1]

    def h(regs):
        if budget[0] < k:
            # not enough budget for the whole run: replay per-instruction
            # so the fault lands on the exact slot the reference faults at
            pc = start
            for _ in range(k):
                pc = singles[pc](regs)
            return pc
        version = memory.version
        if version != ver[0]:
            ver[0] = version
            memo[:] = empty
        try:
            fn(regs, find, access, cnt, memo)
        except MemoryFault:
            # phase 1 is side-effect free, so nothing happened yet; the
            # per-instruction replay performs the prefix for real and
            # raises the reference VmFault at the faulting instruction
            pc = start
            for _ in range(k):
                pc = singles[pc](regs)
            return pc
        budget[0] -= k
        cnt.instructions += k
        cnt.cycles += base_sum
        return nxt

    return h


def check_budget_fault(exc: VmFault, executed: int, max_insns: int) -> None:
    """Runtime guard against batched-accounting drift: a budget-exhaustion
    fault is only correct if exactly ``max_insns`` instructions were
    counted when it fired — the reference interpreter counts one at a
    time, so any batching scheme that loses or double-counts would land
    the fault on the wrong slot with a different counter total."""
    if str(exc) == _BUDGET_MSG and executed != max_insns:
        raise AssertionError(
            f"budget accounting drift: counted {executed} instructions "
            f"at exhaustion, expected {max_insns}") from exc


class FastExecution:
    """A :class:`DecodedProgram` bound to one Machine's models."""

    __slots__ = ("decoded", "handlers", "singles", "_budget", "_max_insns",
                 "_counters")

    def __init__(self, decoded: DecodedProgram, machine) -> None:
        budget = [0]
        singles = [binder(machine, budget) for binder in decoded.binders]
        handlers = list(singles)
        for block in decoded.blocks:
            handlers[block.start] = _bind_block(block, machine, budget, singles)
        self.decoded = decoded
        self.handlers = handlers
        self.singles = singles
        self._budget = budget
        self._max_insns = machine.max_insns
        self._counters = machine.counters

    def execute(self, regs: List[int]) -> int:
        budget = self._budget
        budget[0] = self._max_insns
        handlers = self.handlers
        counted = self._counters.instructions
        pc = 0
        try:
            while True:
                pc = handlers[pc](regs)
        except _Exit:
            return regs[op.R0]
        except VmFault as exc:
            check_budget_fault(exc, self._counters.instructions - counted,
                               self._max_insns)
            raise


def bind_machine(machine) -> FastExecution:
    """Decode (or reuse the cached decode of) ``machine.program`` and
    bind it to the machine's counters, cache, predictor and memory."""
    return FastExecution(decode_program(machine.program), machine)
