"""repro.vm.engine — accelerated execution engines for the VM.

Two tiers above the reference interpreter, both bit-identical to it —
same return values, counters, fault messages, and memory/map effects:

* ``Machine(program, engine="fast")`` — the program is decoded once
  into a flat array of specialized handler closures (cached
  process-wide by bytecode content key), straight-line runs are fused
  into compiled superinstructions, and the dispatch loop becomes
  ``pc = handlers[pc](regs)``.
* ``Machine(program, engine="jit")`` — the whole program is compiled
  through :mod:`.regions` into one generated-Python function (loops
  become ``while``, conditionals become ``if``/``else``, helpers and
  map ops inline behind guards), deoptimizing onto the fast engine's
  dispatch loop when a guard fails.  Code objects are cached
  content-keyed exactly like decodes.
"""

from .decode import (
    DECODE_CACHE_CAPACITY,
    DecodedProgram,
    DecodeCacheStats,
    FastExecution,
    bind_machine,
    check_budget_fault,
    clear_decode_cache,
    decode_cache_stats,
    decode_program,
)
from .jit import (
    JIT_CACHE_CAPACITY,
    JitExecution,
    JitProgram,
    bind_jit,
    clear_jit_cache,
    compile_jit_program,
    jit_cache_stats,
)
from .regions import Cfg, CfgBlock, Relooper, StructureError, build_cfg
from .superblock import MIN_BLOCK_LEN, SuperBlock, find_blocks

__all__ = [
    "DECODE_CACHE_CAPACITY",
    "JIT_CACHE_CAPACITY",
    "Cfg",
    "CfgBlock",
    "DecodedProgram",
    "DecodeCacheStats",
    "FastExecution",
    "JitExecution",
    "JitProgram",
    "MIN_BLOCK_LEN",
    "Relooper",
    "StructureError",
    "SuperBlock",
    "bind_jit",
    "bind_machine",
    "build_cfg",
    "check_budget_fault",
    "clear_decode_cache",
    "clear_jit_cache",
    "compile_jit_program",
    "decode_cache_stats",
    "decode_program",
    "find_blocks",
    "jit_cache_stats",
]
