"""repro.vm.engine — pre-decoded fast-dispatch execution engine.

Selected with ``Machine(program, engine="fast")``.  The program is
decoded once into a flat array of specialized handler closures (cached
process-wide by bytecode content key), straight-line runs are fused
into compiled superinstructions, and the dispatch loop becomes
``pc = handlers[pc](regs)``.  Results are bit-identical to the
reference interpreter — same return values, counters, fault messages,
and memory/map effects.
"""

from .decode import (
    DECODE_CACHE_CAPACITY,
    DecodedProgram,
    DecodeCacheStats,
    FastExecution,
    bind_machine,
    clear_decode_cache,
    decode_cache_stats,
    decode_program,
)
from .superblock import MIN_BLOCK_LEN, SuperBlock, find_blocks

__all__ = [
    "DECODE_CACHE_CAPACITY",
    "DecodedProgram",
    "DecodeCacheStats",
    "FastExecution",
    "MIN_BLOCK_LEN",
    "SuperBlock",
    "bind_machine",
    "clear_decode_cache",
    "decode_cache_stats",
    "decode_program",
    "find_blocks",
]
