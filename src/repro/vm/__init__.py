"""eBPF virtual machine: interpreter, maps, helpers, cost model."""

from .cost import ALU_COST, DEFAULT_HELPER_COST, HELPER_COST, base_cost
from .helpers import HelperError, HelperRuntime, TaskContext
from .interpreter import ENGINES, Machine, RunResult, VmFault
from .maps import (
    ArrayMap,
    BPF_ANY,
    BPF_EXIST,
    BPF_NOEXIST,
    BpfMap,
    HashMap,
    LruHashMap,
    MapError,
    PerCpuArrayMap,
    create_map,
)
from .memory import (
    CTX_BASE,
    MAP_BASE,
    Memory,
    MemoryFault,
    PACKET_BASE,
    Region,
    STACK_BASE,
)

__all__ = [
    "ALU_COST",
    "DEFAULT_HELPER_COST",
    "HELPER_COST",
    "base_cost",
    "HelperError",
    "HelperRuntime",
    "TaskContext",
    "ENGINES",
    "Machine",
    "RunResult",
    "VmFault",
    "ArrayMap",
    "BPF_ANY",
    "BPF_EXIST",
    "BPF_NOEXIST",
    "BpfMap",
    "HashMap",
    "LruHashMap",
    "MapError",
    "PerCpuArrayMap",
    "create_map",
    "CTX_BASE",
    "MAP_BASE",
    "Memory",
    "MemoryFault",
    "PACKET_BASE",
    "Region",
    "STACK_BASE",
]
