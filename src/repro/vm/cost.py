"""Per-instruction cycle cost model (Agner-Fog-flavoured latencies).

Memory latencies come from the cache model at run time; the numbers
here are the core pipeline costs.  The table encodes the facts Merlin's
strength-reduction arguments rely on: a 32-bit ``mov`` is cheaper than a
``shl``/``shr`` pair, a 64-bit immediate load costs an extra slot fetch,
and locked atomics on modern cores are only slightly slower than the
plain read-modify-write sequence they replace.
"""

from __future__ import annotations

from ..isa import Instruction
from ..isa import opcodes as op

ALU_COST = {
    op.BPF_ADD: 1,
    op.BPF_SUB: 1,
    op.BPF_MUL: 3,
    op.BPF_DIV: 20,
    op.BPF_MOD: 22,
    op.BPF_OR: 1,
    op.BPF_AND: 1,
    op.BPF_LSH: 1,
    op.BPF_RSH: 1,
    op.BPF_ARSH: 1,
    op.BPF_NEG: 1,
    op.BPF_XOR: 1,
    op.BPF_MOV: 1,
    op.BPF_END: 2,
}

#: extra cost of the second fetch slot of ld_imm64
LD_IMM64_COST = 2
STORE_BASE_COST = 1
#: modern cores execute uncontended locked RMW close to the plain
#: load/op/store sequence it replaces (paper §4.1, citing [23, 27, 29]);
#: the fused form still wins by making one cache access instead of two
ATOMIC_BASE_COST = 6
JUMP_COST = 1
EXIT_COST = 1

#: helper call base costs (cycles), excluding memory they touch
HELPER_COST = {
    "map_lookup_elem": 25,
    "map_update_elem": 45,
    "map_delete_elem": 40,
    "probe_read": 30,
    "probe_read_str": 40,
    "ktime_get_ns": 15,
    "ktime_get_boot_ns": 15,
    "trace_printk": 200,
    "get_prandom_u32": 10,
    "get_smp_processor_id": 5,
    "get_current_pid_tgid": 12,
    "get_current_uid_gid": 12,
    "get_current_comm": 30,
    "redirect": 60,
    "redirect_map": 45,
    "perf_event_output": 350,
    "ringbuf_output": 180,
    "ringbuf_reserve": 60,
    "ringbuf_submit": 60,
    "csum_diff": 35,
    "xdp_adjust_head": 20,
    "fib_lookup": 120,
}
DEFAULT_HELPER_COST = 30


def base_cost(insn: Instruction) -> int:
    """Pipeline cost of *insn*, excluding cache and branch effects."""
    if insn.is_ld_imm64:
        return LD_IMM64_COST
    if insn.is_alu:
        return ALU_COST[insn.alu_op]
    if insn.is_atomic:
        return ATOMIC_BASE_COST
    if insn.is_load:
        return 0  # latency comes from the cache model
    if insn.is_store:
        return STORE_BASE_COST
    if insn.is_exit:
        return EXIT_COST
    if insn.is_jump:
        return JUMP_COST
    return 1
