"""Test-based program equivalence oracle for the K2 baseline.

K2 proper uses first-order-logic equivalence checking; our baseline
follows its fast path — run both programs over a battery of random
inputs and compare all observable outputs (return value, map contents,
bytes pushed to user space).  Candidates that survive testing still
must pass the kernel verifier before being accepted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa import BpfProgram, ProgramType
from ..vm import HelperError, Machine, MapError, MemoryFault, VmFault

#: any runtime misbehaviour disqualifies a candidate
_CANDIDATE_FAULTS = (VmFault, MemoryFault, HelperError, MapError)


@dataclass
class TestCase:
    ctx: bytes
    packet: Optional[bytes]


def generate_tests(program: BpfProgram, count: int = 8,
                   seed: int = 7) -> List[TestCase]:
    """Inputs for the oracle: half realistic traffic (so protocol paths
    and map-hit paths are exercised), half adversarial random bytes."""
    from ..workloads.packets import TrafficGenerator

    from ..workloads.packets import FlowProfile

    rng = random.Random(seed)
    # two flow mixes: plain IPv4 and a vlan/icmp-heavy one, so rare
    # protocol paths are represented in the battery
    generators = [
        TrafficGenerator(seed=seed),
        TrafficGenerator(FlowProfile(vlan_fraction=0.5, tcp_fraction=0.3,
                                     udp_fraction=0.3,
                                     dst_port_choices=(53, 443, 53, 123)),
                         seed=seed + 1),
    ]
    tests: List[TestCase] = []
    for i in range(count):
        if program.prog_type == ProgramType.XDP:
            if i % 4 == 3:
                length = rng.choice([14, 34, 60, 128, 256, 1500])
                packet = bytes(rng.randrange(256) for _ in range(length))
            else:
                generator = generators[i % 2]
                packet = generator.packet(rng.choice([60, 64, 128, 512, 1500]))
                if i % 4 == 2:
                    # adversarial mutation: flip bytes in a valid frame so
                    # header-field edge cases are represented
                    mutable = bytearray(packet)
                    for _ in range(3):
                        mutable[rng.randrange(len(mutable))] = rng.randrange(256)
                    packet = bytes(mutable)
            tests.append(TestCase(ctx=b"", packet=packet))
        else:
            ctx = bytes(rng.randrange(256) for _ in range(program.ctx_size))
            tests.append(TestCase(ctx=ctx, packet=None))
    return tests


def observable_state(machine: Machine) -> Tuple:
    """Everything a candidate must reproduce to be 'equal': map
    contents, bytes pushed to user space, and the (possibly rewritten)
    packet."""
    maps_state = []
    for name in sorted(machine.maps):
        bpf_map = machine.maps[name]
        if hasattr(bpf_map, "region"):
            maps_state.append((name, bytes(bpf_map.region.data)))
        else:
            entries = tuple(
                (key, bytes(region.data))
                for key, region in sorted(bpf_map.entries.items())
            )
            maps_state.append((name, entries))
    packet_region = machine.memory.regions.get("packet")
    packet = bytes(packet_region.data) if packet_region is not None else b""
    return (
        tuple(maps_state),
        machine.helpers.output_bytes,
        packet,
        tuple(machine.helpers.redirects),
    )


def equivalent(original: BpfProgram, candidate: BpfProgram,
               tests: List[TestCase], max_insns: int = 200_000,
               seed: int = 7) -> bool:
    """True when the two programs agree on every test input.

    Maps are pre-seeded with workload-realistic entries so code behind
    map-hit branches is exercised (an empty-map oracle would happily
    approve deleting it)."""
    from ..workloads.packets import TrafficGenerator
    from ..workloads.seeding import seed_maps

    generator = TrafficGenerator(seed=seed)
    for index, test in enumerate(tests):
        # vary map population across tests (full / partial / empty) so
        # both hit and miss paths are observed
        coverage = (1.0, 0.6, 0.0)[index % 3]
        try:
            m_orig = Machine(original, max_insns=max_insns)
            m_cand = Machine(candidate, max_insns=max_insns)
            if coverage:
                seed_maps(m_orig, generator, coverage=coverage,
                          seed=seed + index)
                seed_maps(m_cand, generator, coverage=coverage,
                          seed=seed + index)
            r_orig = m_orig.run(ctx=test.ctx, packet=test.packet)
            r_cand = m_cand.run(ctx=test.ctx, packet=test.packet)
        except _CANDIDATE_FAULTS:
            return False
        if r_orig.return_value != r_cand.return_value:
            return False
        if observable_state(m_orig) != observable_state(m_cand):
            return False
    return True
