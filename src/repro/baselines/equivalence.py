"""Test-based program equivalence oracle for the K2 baseline.

K2 proper uses first-order-logic equivalence checking; our baseline
follows its fast path — run both programs over a battery of random
inputs and compare all observable outputs (return value, map contents,
bytes pushed to user space).  Candidates that survive testing still
must pass the kernel verifier before being accepted.

The machinery lives in :mod:`repro.fuzz.oracle`, shared with the
differential fuzzer; this module keeps the names K2 has always imported
(``TestCase``, ``generate_tests``, ``observable_state``,
``equivalent``) with identical behaviour.
"""

from __future__ import annotations

from ..fuzz.oracle import (
    RUNTIME_FAULTS as _CANDIDATE_FAULTS,
    TestCase,
    equivalent,
    generate_tests,
    observable_state,
)

__all__ = [
    "_CANDIDATE_FAULTS",
    "TestCase",
    "equivalent",
    "generate_tests",
    "observable_state",
]
