"""Shared stochastic-search machinery for bytecode rewriting.

This module holds the proposal moves, pair-collapse matchers, cost
model and annealing schedule that :mod:`repro.baselines.k2` built for
the K2 baseline, factored out so other search clients — notably the
superoptimizer tier (:mod:`repro.core.superopt`) — can drive the same
engine without inheriting K2's program-level harness.

The extraction is bit-identical on purpose: every function preserves
the exact RNG call sequence of the original ``K2Optimizer`` methods,
and ``test_k2.py`` pins the search outcome for fixed seeds to keep it
that way.  The pure matchers (``collapse_store_imm`` and friends)
consume no randomness at all, so they are safe to reuse from fully
deterministic enumeration too.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.bytecode_passes.symbolic import SymbolicProgram
from ..isa import BpfProgram, Instruction
from ..isa import instruction as ins
from ..isa import opcodes as op
from ..isa.helpers import HELPER_NAMES
from ..vm import cost as vmcost


# ------------------------------------------------------------------ matchers
def collapse_store_imm(first: Instruction,
                       second: Instruction) -> Optional[Instruction]:
    """``mov rX, imm ; *(rB+off) = rX``  ->  one ``store_imm``.

    Returns the replacement store (the mov is dropped by the caller),
    or None when the pair does not match.
    """
    if (
        first.is_alu64
        and first.alu_op == op.BPF_MOV
        and first.uses_imm
        and second.insn_class == op.BPF_STX
        and not second.is_atomic
        and second.src == first.dst
        and -(1 << 31) <= first.imm < (1 << 31)
    ):
        return ins.store_imm(second.size_bytes, second.dst, second.off,
                             first.imm)
    return None


def collapse_shift_pair(first: Instruction,
                        second: Instruction) -> Optional[Instruction]:
    """``shl r, 32 ; shr r, 32``  ->  ``mov32 r, r`` (zero-extension).

    Returns the replacement mov32 (the shr is dropped by the caller),
    or None when the pair does not match.
    """
    if (
        first.is_alu64
        and first.alu_op == op.BPF_LSH
        and first.uses_imm and first.imm == 32
        and second.is_alu64
        and second.alu_op == op.BPF_RSH
        and second.uses_imm and second.imm == 32
        and second.dst == first.dst
    ):
        return ins.mov32_reg(first.dst, first.dst)
    return None


def match_load_merge(a: Instruction, b: Instruction, c: Instruction,
                     d: Instruction) -> Optional[Instruction]:
    """``load lo ; load hi ; shl hi, 8*size ; or lo, hi``  ->  one wide
    load.  Returns the merged load (b/c/d are dropped by the caller) or
    None.  Deadness of the helper register is NOT checked here — the
    caller's oracle or prover owns that."""
    if not (a.is_load and b.is_load and a.size_bytes == b.size_bytes
            and a.size_bytes < 8 and a.src == b.src
            and b.off == a.off + a.size_bytes):
        return None
    size = a.size_bytes
    if not (
        c.is_alu64 and c.alu_op == op.BPF_LSH and c.uses_imm
        and c.imm == 8 * size and c.dst == b.dst
        and d.is_alu64 and d.alu_op == op.BPF_OR
        and not d.uses_imm and d.dst == a.dst and d.src == b.dst
    ):
        return None
    return ins.load(size * 2, a.dst, a.src, a.off)


# ----------------------------------------------------------------- proposals
def deletable(insn: Instruction) -> bool:
    return not (insn.is_jump or insn.is_exit or insn.is_call)


def delete_random(sym: SymbolicProgram, live: List[int],
                  rng: random.Random) -> None:
    candidates = [i for i in live if deletable(sym.insns[i].insn)]
    if not candidates:
        raise ValueError("nothing deletable")
    sym.delete(rng.choice(candidates))


def simplify_pair(sym: SymbolicProgram, live: List[int],
                  rng: random.Random) -> None:
    """Collapse a mov+store or shl/shr pair at a random location —
    the 'library' moves K2's synthesis can discover."""
    start = rng.randrange(len(live) - 1)
    for i in range(start, len(live) - 1):
        first = sym.insns[live[i]].insn
        second = sym.insns[live[i + 1]].insn
        merged = collapse_store_imm(first, second)
        if merged is not None:
            sym.delete(live[i])
            sym.replace(live[i + 1], merged)
            return
        merged = collapse_shift_pair(first, second)
        if merged is not None:
            sym.replace(live[i], merged)
            sym.delete(live[i + 1])
            return
    raise ValueError("no pair found")


def merge_loads(sym: SymbolicProgram, live: List[int],
                rng: random.Random) -> None:
    """Propose merging a byte-assembly window into one wide load —
    the kind of rewrite K2's synthesis discovers.  Correctness is
    left to the equivalence oracle (the dead helper register must
    really be dead for the candidate to survive testing)."""
    start = rng.randrange(max(len(live) - 3, 1))
    for i in range(start, len(live) - 3):
        merged = match_load_merge(sym.insns[live[i]].insn,
                                  sym.insns[live[i + 1]].insn,
                                  sym.insns[live[i + 2]].insn,
                                  sym.insns[live[i + 3]].insn)
        if merged is None:
            continue
        sym.replace(live[i], merged)
        sym.delete(live[i + 1])
        sym.delete(live[i + 2])
        sym.delete(live[i + 3])
        return
    raise ValueError("no mergeable load window")


def tweak_operand(sym: SymbolicProgram, live: List[int],
                  rng: random.Random) -> None:
    index = rng.choice(live)
    insn = sym.insns[index].insn
    if insn.is_alu and insn.uses_imm:
        delta = rng.choice([-1, 1])
        sym.replace(index, insn.with_(imm=insn.imm + delta),
                    sym.insns[index].target)
    elif insn.is_alu and not insn.uses_imm:
        sym.replace(index, insn.with_(src=rng.randrange(10)),
                    sym.insns[index].target)
    else:
        raise ValueError("cannot tweak")


def swap_adjacent(sym: SymbolicProgram, live: List[int],
                  rng: random.Random) -> None:
    i = rng.randrange(len(live) - 1)
    a, b = sym.insns[live[i]], sym.insns[live[i + 1]]
    if a.insn.is_jump or b.insn.is_jump or a.insn.is_exit or b.insn.is_exit:
        raise ValueError("cannot swap control flow")
    sym.insns[live[i]], sym.insns[live[i + 1]] = b, a


def mutate_program(program: BpfProgram,
                   rng: random.Random) -> Optional[BpfProgram]:
    """One proposal step: pick a move by the K2 mixture weights and
    apply it, or None when the program is too small / the move fails.

    The dispatch thresholds and per-move RNG consumption are pinned by
    the K2 regression tests — do not reorder."""
    sym = SymbolicProgram.from_program(program)
    live = sym.live_indices()
    if len(live) <= 2:
        return None
    choice = rng.random()
    try:
        if choice < 0.35:
            delete_random(sym, live, rng)
        elif choice < 0.55:
            simplify_pair(sym, live, rng)
        elif choice < 0.80:
            merge_loads(sym, live, rng)
        elif choice < 0.92:
            tweak_operand(sym, live, rng)
        else:
            swap_adjacent(sym, live, rng)
        return program.copy(insns=sym.to_insns())
    except Exception:
        return None


# ---------------------------------------------------------------- cost model
def program_cost(program: BpfProgram, ni_weight: float = 1.0,
                 perf_weight: float = 0.02) -> float:
    """K2's search objective: instruction count mixed with an estimated
    latency from the VM cost model."""
    perf = sum(
        vmcost.base_cost(insn)
        + (4 if insn.is_memory else 0)
        + (vmcost.HELPER_COST.get(
            HELPER_NAMES.get(insn.imm, ""), vmcost.DEFAULT_HELPER_COST)
           if insn.is_call else 0)
        for insn in program.insns
    )
    return ni_weight * program.ni + perf_weight * perf


def iteration_budget(iterations: int, ni: int,
                     size_rolloff: float = 60.0) -> int:
    """Effective proposals shrink as programs grow (see K2Config)."""
    effective = iterations * size_rolloff / (size_rolloff + ni)
    return max(150, int(effective))


def anneal_temperature(initial: float, step: int, budget: int) -> float:
    """K2's linear cooling schedule with a 0.05 floor."""
    return initial * (1.0 - step / max(budget, 1)) + 0.05
