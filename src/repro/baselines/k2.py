"""K2 baseline: stochastic search for smaller/faster eBPF programs.

Models the system of Xu et al. (SIGCOMM'21): propose random program
rewrites, test-check equivalence, verify safety, and accept/reject with
a Metropolis criterion over a cost that mixes instruction count and
estimated latency.  The baseline reproduces K2's published limitations
(paper Table 2):

* XDP programs only;
* a limited helper model (candidates using unmodelled helpers are
  rejected outright);
* practical only below ~2000 instructions — the iteration budget needed
  for convergence grows so steeply with program size that the search is
  cut off early on large inputs, which is why K2 underperforms Merlin
  on xdp-balancer while matching or beating it on small programs.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.bytecode_passes.symbolic import SymbolicProgram
from ..isa import BpfProgram, Instruction, ProgramType
from ..isa import instruction as ins
from ..isa import opcodes as op
from ..isa.helpers import HELPER_NAMES
from ..verifier import DEFAULT_KERNEL, KernelConfig, verify
from ..vm import cost as vmcost
from .equivalence import TestCase, equivalent, generate_tests

#: helpers K2's formalization covers (everything else is unsupported)
K2_SUPPORTED_HELPERS = {
    "map_lookup_elem",
    "map_update_elem",
    "map_delete_elem",
    "redirect",
    "redirect_map",
    "csum_diff",
    "xdp_adjust_head",
    "fib_lookup",
    "ktime_get_ns",
    "get_prandom_u32",
    "get_smp_processor_id",
}

#: beyond this size K2's search cannot converge "in reasonable time"
K2_PRACTICAL_SIZE = 2000


@dataclass
class K2Config:
    iterations: int = 4000
    seed: int = 11
    initial_temperature: float = 4.0
    ni_weight: float = 1.0
    perf_weight: float = 0.02
    num_tests: int = 16
    kernel: KernelConfig = DEFAULT_KERNEL
    #: the search budget decays with program size: convergence needs
    #: exponentially more proposals but wall-clock budgets are fixed,
    #: so K2 explores large programs thinly (paper: xdp-balancer took
    #: two days and still lost to Merlin)
    size_rolloff: float = 60.0


@dataclass
class K2Result:
    program: BpfProgram
    supported: bool
    reason: str = ""
    ni_before: int = 0
    ni_after: int = 0
    iterations: int = 0
    accepted: int = 0
    seconds: float = 0.0

    @property
    def ni_reduction(self) -> float:
        if not self.ni_before:
            return 0.0
        return 1.0 - self.ni_after / self.ni_before


class K2Optimizer:
    """Simulated-annealing search over bytecode rewrites."""

    def __init__(self, config: Optional[K2Config] = None):
        self.config = config if config is not None else K2Config()

    # ---------------------------------------------------------------- gate
    def check_supported(self, program: BpfProgram) -> Tuple[bool, str]:
        if program.prog_type != ProgramType.XDP:
            return False, f"K2 only supports XDP programs, not {program.prog_type.value}"
        for insn in program.insns:
            if insn.is_call:
                name = HELPER_NAMES.get(insn.imm, f"helper#{insn.imm}")
                if name not in K2_SUPPORTED_HELPERS:
                    return False, f"helper {name} is not formalized by K2"
        return True, ""

    # ---------------------------------------------------------------- search
    def optimize(self, program: BpfProgram) -> K2Result:
        start = time.perf_counter()
        supported, reason = self.check_supported(program)
        result = K2Result(program=program, supported=supported, reason=reason,
                          ni_before=program.ni, ni_after=program.ni)
        if not supported:
            return result

        rng = random.Random(self.config.seed)
        tests = generate_tests(program, self.config.num_tests,
                               seed=self.config.seed)
        budget = self._iteration_budget(program.ni)

        best = program
        best_cost = self._cost(program)
        current = program
        current_cost = best_cost
        accepted = 0
        for step in range(budget):
            temperature = self.config.initial_temperature * (
                1.0 - step / max(budget, 1)
            ) + 0.05
            candidate = self._mutate(current, rng)
            if candidate is None:
                continue
            if not self._safe_and_equivalent(program, candidate, tests):
                continue
            cost = self._cost(candidate)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = candidate, cost
                accepted += 1
                if cost < best_cost:
                    best, best_cost = candidate, cost
        result.program = best
        result.ni_after = best.ni
        result.iterations = budget
        result.accepted = accepted
        result.seconds = time.perf_counter() - start
        return result

    def _iteration_budget(self, ni: int) -> int:
        """Effective proposals shrink as programs grow (see K2Config)."""
        rolloff = self.config.size_rolloff
        effective = self.config.iterations * rolloff / (rolloff + ni)
        return max(150, int(effective))

    # ---------------------------------------------------------------- cost
    def _cost(self, program: BpfProgram) -> float:
        perf = sum(
            vmcost.base_cost(insn)
            + (4 if insn.is_memory else 0)
            + (vmcost.HELPER_COST.get(
                HELPER_NAMES.get(insn.imm, ""), vmcost.DEFAULT_HELPER_COST)
               if insn.is_call else 0)
            for insn in program.insns
        )
        return self.config.ni_weight * program.ni + self.config.perf_weight * perf

    # ------------------------------------------------------------- proposals
    def _mutate(self, program: BpfProgram,
                rng: random.Random) -> Optional[BpfProgram]:
        sym = SymbolicProgram.from_program(program)
        live = sym.live_indices()
        if len(live) <= 2:
            return None
        choice = rng.random()
        try:
            if choice < 0.35:
                self._delete_random(sym, live, rng)
            elif choice < 0.55:
                self._simplify_pair(sym, live, rng)
            elif choice < 0.80:
                self._merge_loads(sym, live, rng)
            elif choice < 0.92:
                self._tweak_operand(sym, live, rng)
            else:
                self._swap_adjacent(sym, live, rng)
            return program.copy(insns=sym.to_insns())
        except Exception:
            return None

    @staticmethod
    def _deletable(insn: Instruction) -> bool:
        return not (insn.is_jump or insn.is_exit or insn.is_call)

    def _delete_random(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        candidates = [i for i in live if self._deletable(sym.insns[i].insn)]
        if not candidates:
            raise ValueError("nothing deletable")
        sym.delete(rng.choice(candidates))

    def _simplify_pair(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        """Collapse a mov+store or shl/shr pair at a random location —
        the 'library' moves K2's synthesis can discover."""
        start = rng.randrange(len(live) - 1)
        for i in range(start, len(live) - 1):
            first = sym.insns[live[i]].insn
            second = sym.insns[live[i + 1]].insn
            # mov rX, imm; store rB+off, rX  ->  store_imm
            if (
                first.is_alu64
                and first.alu_op == op.BPF_MOV
                and first.uses_imm
                and second.insn_class == op.BPF_STX
                and not second.is_atomic
                and second.src == first.dst
                and -(1 << 31) <= first.imm < (1 << 31)
            ):
                sym.delete(live[i])
                sym.replace(
                    live[i + 1],
                    ins.store_imm(second.size_bytes, second.dst, second.off,
                                  first.imm),
                )
                return
            # shl 32; shr 32 -> mov32
            if (
                first.is_alu64
                and first.alu_op == op.BPF_LSH
                and first.uses_imm and first.imm == 32
                and second.is_alu64
                and second.alu_op == op.BPF_RSH
                and second.uses_imm and second.imm == 32
                and second.dst == first.dst
            ):
                sym.replace(live[i], ins.mov32_reg(first.dst, first.dst))
                sym.delete(live[i + 1])
                return
        raise ValueError("no pair found")

    def _merge_loads(self, sym: SymbolicProgram, live: List[int],
                     rng: random.Random) -> None:
        """Propose merging a byte-assembly window into one wide load —
        the kind of rewrite K2's synthesis discovers.  Correctness is
        left to the equivalence oracle (the dead helper register must
        really be dead for the candidate to survive testing)."""
        start = rng.randrange(max(len(live) - 3, 1))
        for i in range(start, len(live) - 3):
            a = sym.insns[live[i]].insn
            b = sym.insns[live[i + 1]].insn
            c = sym.insns[live[i + 2]].insn
            d = sym.insns[live[i + 3]].insn
            if not (a.is_load and b.is_load and a.size_bytes == b.size_bytes
                    and a.size_bytes < 8 and a.src == b.src
                    and b.off == a.off + a.size_bytes):
                continue
            size = a.size_bytes
            # shl high, 8*size ; or low, high
            if not (
                c.is_alu64 and c.alu_op == op.BPF_LSH and c.uses_imm
                and c.imm == 8 * size and c.dst == b.dst
                and d.is_alu64 and d.alu_op == op.BPF_OR
                and not d.uses_imm and d.dst == a.dst and d.src == b.dst
            ):
                continue
            sym.replace(live[i], ins.load(size * 2, a.dst, a.src, a.off))
            sym.delete(live[i + 1])
            sym.delete(live[i + 2])
            sym.delete(live[i + 3])
            return
        raise ValueError("no mergeable load window")

    def _tweak_operand(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        index = rng.choice(live)
        insn = sym.insns[index].insn
        if insn.is_alu and insn.uses_imm:
            delta = rng.choice([-1, 1])
            sym.replace(index, insn.with_(imm=insn.imm + delta),
                        sym.insns[index].target)
        elif insn.is_alu and not insn.uses_imm:
            sym.replace(index, insn.with_(src=rng.randrange(10)),
                        sym.insns[index].target)
        else:
            raise ValueError("cannot tweak")

    def _swap_adjacent(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        i = rng.randrange(len(live) - 1)
        a, b = sym.insns[live[i]], sym.insns[live[i + 1]]
        if a.insn.is_jump or b.insn.is_jump or a.insn.is_exit or b.insn.is_exit:
            raise ValueError("cannot swap control flow")
        sym.insns[live[i]], sym.insns[live[i + 1]] = b, a

    # ---------------------------------------------------------------- safety
    def _safe_and_equivalent(self, original: BpfProgram,
                             candidate: BpfProgram,
                             tests: List[TestCase]) -> bool:
        # the oracle must seed maps with the SAME flow population the
        # test packets are drawn from, or every lookup misses and the
        # whole hit path looks like dead code
        if not equivalent(original, candidate, tests, seed=self.config.seed):
            return False
        return verify(candidate, self.config.kernel).ok


def k2_optimize(program: BpfProgram,
                config: Optional[K2Config] = None) -> K2Result:
    """Convenience wrapper around :class:`K2Optimizer`."""
    return K2Optimizer(config).optimize(program)
