"""K2 baseline: stochastic search for smaller/faster eBPF programs.

Models the system of Xu et al. (SIGCOMM'21): propose random program
rewrites, test-check equivalence, verify safety, and accept/reject with
a Metropolis criterion over a cost that mixes instruction count and
estimated latency.  The baseline reproduces K2's published limitations
(paper Table 2):

* XDP programs only;
* a limited helper model (candidates using unmodelled helpers are
  rejected outright);
* practical only below ~2000 instructions — the iteration budget needed
  for convergence grows so steeply with program size that the search is
  cut off early on large inputs, which is why K2 underperforms Merlin
  on xdp-balancer while matching or beating it on small programs.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.bytecode_passes.symbolic import SymbolicProgram
from ..isa import BpfProgram, Instruction, ProgramType
from ..isa.helpers import HELPER_NAMES
from ..verifier import DEFAULT_KERNEL, KernelConfig, verify
from . import search
from .equivalence import TestCase, equivalent, generate_tests

#: helpers K2's formalization covers (everything else is unsupported)
K2_SUPPORTED_HELPERS = {
    "map_lookup_elem",
    "map_update_elem",
    "map_delete_elem",
    "redirect",
    "redirect_map",
    "csum_diff",
    "xdp_adjust_head",
    "fib_lookup",
    "ktime_get_ns",
    "get_prandom_u32",
    "get_smp_processor_id",
}

#: beyond this size K2's search cannot converge "in reasonable time"
K2_PRACTICAL_SIZE = 2000


@dataclass
class K2Config:
    iterations: int = 4000
    seed: int = 11
    initial_temperature: float = 4.0
    ni_weight: float = 1.0
    perf_weight: float = 0.02
    num_tests: int = 16
    kernel: KernelConfig = DEFAULT_KERNEL
    #: the search budget decays with program size: convergence needs
    #: exponentially more proposals but wall-clock budgets are fixed,
    #: so K2 explores large programs thinly (paper: xdp-balancer took
    #: two days and still lost to Merlin)
    size_rolloff: float = 60.0


@dataclass
class K2Result:
    program: BpfProgram
    supported: bool
    reason: str = ""
    ni_before: int = 0
    ni_after: int = 0
    iterations: int = 0
    accepted: int = 0
    seconds: float = 0.0

    @property
    def ni_reduction(self) -> float:
        if not self.ni_before:
            return 0.0
        return 1.0 - self.ni_after / self.ni_before


class K2Optimizer:
    """Simulated-annealing search over bytecode rewrites."""

    def __init__(self, config: Optional[K2Config] = None):
        self.config = config if config is not None else K2Config()

    # ---------------------------------------------------------------- gate
    def check_supported(self, program: BpfProgram) -> Tuple[bool, str]:
        if program.prog_type != ProgramType.XDP:
            return False, f"K2 only supports XDP programs, not {program.prog_type.value}"
        for insn in program.insns:
            if insn.is_call:
                name = HELPER_NAMES.get(insn.imm, f"helper#{insn.imm}")
                if name not in K2_SUPPORTED_HELPERS:
                    return False, f"helper {name} is not formalized by K2"
        return True, ""

    # ---------------------------------------------------------------- search
    def optimize(self, program: BpfProgram) -> K2Result:
        start = time.perf_counter()
        supported, reason = self.check_supported(program)
        result = K2Result(program=program, supported=supported, reason=reason,
                          ni_before=program.ni, ni_after=program.ni)
        if not supported:
            return result

        rng = random.Random(self.config.seed)
        tests = generate_tests(program, self.config.num_tests,
                               seed=self.config.seed)
        budget = self._iteration_budget(program.ni)

        best = program
        best_cost = self._cost(program)
        current = program
        current_cost = best_cost
        accepted = 0
        for step in range(budget):
            temperature = search.anneal_temperature(
                self.config.initial_temperature, step, budget)
            candidate = self._mutate(current, rng)
            if candidate is None:
                continue
            if not self._safe_and_equivalent(program, candidate, tests):
                continue
            cost = self._cost(candidate)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = candidate, cost
                accepted += 1
                if cost < best_cost:
                    best, best_cost = candidate, cost
        result.program = best
        result.ni_after = best.ni
        result.iterations = budget
        result.accepted = accepted
        result.seconds = time.perf_counter() - start
        return result

    def _iteration_budget(self, ni: int) -> int:
        """Effective proposals shrink as programs grow (see K2Config)."""
        return search.iteration_budget(self.config.iterations, ni,
                                       self.config.size_rolloff)

    # ---------------------------------------------------------------- cost
    def _cost(self, program: BpfProgram) -> float:
        return search.program_cost(program, self.config.ni_weight,
                                   self.config.perf_weight)

    # ------------------------------------------------------------- proposals
    # The move implementations live in repro.baselines.search so the
    # superoptimizer tier can reuse them; these wrappers keep the K2
    # API (and its pinned RNG behaviour) stable.
    def _mutate(self, program: BpfProgram,
                rng: random.Random) -> Optional[BpfProgram]:
        return search.mutate_program(program, rng)

    @staticmethod
    def _deletable(insn: Instruction) -> bool:
        return search.deletable(insn)

    def _delete_random(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        search.delete_random(sym, live, rng)

    def _simplify_pair(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        search.simplify_pair(sym, live, rng)

    def _merge_loads(self, sym: SymbolicProgram, live: List[int],
                     rng: random.Random) -> None:
        search.merge_loads(sym, live, rng)

    def _tweak_operand(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        search.tweak_operand(sym, live, rng)

    def _swap_adjacent(self, sym: SymbolicProgram, live: List[int],
                       rng: random.Random) -> None:
        search.swap_adjacent(sym, live, rng)

    # ---------------------------------------------------------------- safety
    def _safe_and_equivalent(self, original: BpfProgram,
                             candidate: BpfProgram,
                             tests: List[TestCase]) -> bool:
        # the oracle must seed maps with the SAME flow population the
        # test packets are drawn from, or every lookup misses and the
        # whole hit path looks like dead code
        if not equivalent(original, candidate, tests, seed=self.config.seed):
            return False
        return verify(candidate, self.config.kernel).ok


def k2_optimize(program: BpfProgram,
                config: Optional[K2Config] = None) -> K2Result:
    """Convenience wrapper around :class:`K2Optimizer`."""
    return K2Optimizer(config).optimize(program)
