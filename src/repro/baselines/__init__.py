"""Baselines Merlin is evaluated against (K2)."""

from .equivalence import TestCase, equivalent, generate_tests, observable_state
from .search import (
    anneal_temperature,
    collapse_shift_pair,
    collapse_store_imm,
    iteration_budget,
    match_load_merge,
    mutate_program,
    program_cost,
)
from .k2 import (
    K2Config,
    K2Optimizer,
    K2Result,
    K2_PRACTICAL_SIZE,
    K2_SUPPORTED_HELPERS,
    k2_optimize,
)

__all__ = [
    "TestCase",
    "equivalent",
    "generate_tests",
    "observable_state",
    "K2Config",
    "K2Optimizer",
    "K2Result",
    "K2_PRACTICAL_SIZE",
    "K2_SUPPORTED_HELPERS",
    "k2_optimize",
    "anneal_temperature",
    "collapse_shift_pair",
    "collapse_store_imm",
    "iteration_budget",
    "match_load_merge",
    "mutate_program",
    "program_cost",
]
