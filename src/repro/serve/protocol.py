"""The ``repro serve`` wire protocol: JSON lines over a local socket.

One request per line, one response per line, UTF-8 JSON.  Every
request carries a client-chosen ``id`` that is echoed verbatim in the
response, so clients may pipeline arbitrarily deep; the daemon
guarantees responses on a connection come back in request-arrival
order.

Requests::

    {"id": 1, "op": "compile", "source": "...", "entry": "f",
     "prog_type": "xdp", "mcpu": "v2", "ctx_size": 64}
    {"id": 2, "op": "validate", "source": "..."}   # compile + certify
    {"id": 6, "op": "compile", "source": "...",
     "pgo": {"tests": 8, "seed": 7}}               # profile-guided layout
    {"id": 7, "op": "compile", "source": "...",
     "superopt": {"window": 4, "iterations": 32}}  # superoptimizer tier
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "ping"}
    {"id": 5, "op": "shutdown"}

Responses::

    {"id": 1, "ok": true, "result": {"name": ..., "ni_original": ...,
     "ni_optimized": ..., "ni_reduction": ..., "cached": ...,
     "mcpu": ..., "compile_ms": ..., "wait_ms": ...}}
    {"id": 1, "ok": false,
     "error": {"code": "compile-error", "message": "..."}}

Error codes (``ERROR_CODES``) are part of the protocol contract and
covered by tests: ``bad-json`` (unparseable line; ``id`` is null),
``bad-request`` (missing/ill-typed fields), ``unknown-op``,
``oversized`` (source beyond :data:`MAX_SOURCE_BYTES`),
``compile-error`` (the toolchain rejected the program),
``shutting-down`` (daemon draining, request not admitted),
``shard-lost`` (a fleet router's shard daemon died with this request
in flight — retry-safe by construction, nothing was committed), and
``internal``.

Protocol v2 adds two optional request fields the fleet tier consumes:
``tenant`` (a client-chosen stream label; the admission queue gives
every backlogged tenant a weighted fair share of each batch window)
and ``priority`` (0..9, default 0; higher classes drain first and a
high-priority arrival preempts the admission window's linger timer).
Both are ignored by the cache key — identical programs share one
entry no matter who asks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from ..core.pipeline import ALL_OPTIMIZERS
from ..isa import ProgramType
from ..verifier import KERNELS

#: longest accepted request line (framing limit; connection-fatal)
MAX_LINE_BYTES = 4 * 1024 * 1024
#: largest accepted ``source`` payload (per-request ``oversized`` error)
MAX_SOURCE_BYTES = 1024 * 1024
#: protocol revision, reported by ``ping`` and ``stats``
PROTOCOL_VERSION = 2
#: longest accepted ``tenant`` label
MAX_TENANT_CHARS = 128
#: highest accepted ``priority``
MAX_PRIORITY = 9

OPS = ("compile", "validate", "stats", "ping", "shutdown")

ERROR_CODES = ("bad-json", "bad-request", "unknown-op", "oversized",
               "compile-error", "shutting-down", "shard-lost",
               "internal")

_PROG_TYPES = {t.value for t in ProgramType}


class ProtocolError(Exception):
    """A request the daemon rejects before compilation."""

    def __init__(self, code: str, message: str,
                 request_id: Any = None):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """A validated request (compile/validate carry a program)."""

    id: Any
    op: str
    name: str = "anon"
    source: str = ""
    entry: str = ""
    prog_type: ProgramType = ProgramType.XDP
    mcpu: str = "v2"
    ctx_size: int = 64
    kernel: str = "6.5"
    passes: Optional[frozenset] = None
    validate: Union[bool, str] = False
    asm: bool = False
    #: profile-guided layout spec (repro.core.bytecode_passes.layout
    #: .PgoSpec), or None; frozen, so the request stays hashable
    pgo: Optional[Any] = None
    #: superoptimizer spec (repro.core.superopt.SuperoptSpec), or None;
    #: frozen, so the request stays hashable
    superopt: Optional[Any] = None
    #: fairness stream label (fleet tier); "" groups with the default
    tenant: str = ""
    #: admission priority 0..9; >= the daemon's ``preempt_priority``
    #: also cuts the batch linger timer short
    priority: int = 0

    @property
    def config_key(self) -> tuple:
        """Admission-batching group: jobs in one ``compile_many`` call
        share a pipeline configuration."""
        passes = tuple(sorted(self.passes)) if self.passes is not None \
            else None
        return (self.kernel, passes, self.validate)


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON plus the newline terminator."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: Union[bytes, str]) -> dict:
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-json", f"not utf-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"unparseable line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-json",
                            f"expected a JSON object, got {type(obj).__name__}")
    return obj


def _field(obj: dict, request_id: Any, key: str, kind, default):
    value = obj.get(key, default)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise ProtocolError(
            "bad-request", f"field {key!r} must be {kind.__name__}",
            request_id)
    return value


def parse_request(line: Union[bytes, str]) -> Request:
    """Validate one request line into a :class:`Request`.

    Raises :class:`ProtocolError` with the precise error code; the
    offending request's ``id`` is preserved whenever the line parsed
    far enough to have one.
    """
    obj = decode(line)
    request_id = obj.get("id")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing field 'op'", request_id)
    if op not in OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r} (choose from {', '.join(OPS)})",
            request_id)
    if op in ("stats", "ping", "shutdown"):
        return Request(id=request_id, op=op)

    source = obj.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("bad-request",
                            "compile requests need a non-empty 'source'",
                            request_id)
    if len(source.encode("utf-8", "surrogatepass")) > MAX_SOURCE_BYTES:
        raise ProtocolError(
            "oversized",
            f"source exceeds {MAX_SOURCE_BYTES} bytes", request_id)

    name = _field(obj, request_id, "name", str, "anon")
    entry = _field(obj, request_id, "entry", str, "")
    mcpu = _field(obj, request_id, "mcpu", str, "v2")
    if mcpu not in ("v2", "v3"):
        raise ProtocolError("bad-request", "mcpu must be 'v2' or 'v3'",
                            request_id)
    prog_type = _field(obj, request_id, "prog_type", str, "xdp")
    if prog_type not in _PROG_TYPES:
        raise ProtocolError(
            "bad-request",
            f"prog_type must be one of {sorted(_PROG_TYPES)}", request_id)
    ctx_size = _field(obj, request_id, "ctx_size", int, 64)
    if not 0 <= ctx_size <= 1 << 16:
        raise ProtocolError("bad-request", "ctx_size out of range",
                            request_id)
    kernel = _field(obj, request_id, "kernel", str, "6.5")
    if kernel not in KERNELS:
        raise ProtocolError(
            "bad-request", f"kernel must be one of {sorted(KERNELS)}",
            request_id)
    passes = obj.get("passes")
    if passes is not None:
        if (not isinstance(passes, list)
                or not all(isinstance(p, str) for p in passes)):
            raise ProtocolError("bad-request",
                                "passes must be a list of pass names",
                                request_id)
        unknown = set(passes) - ALL_OPTIMIZERS
        if unknown:
            raise ProtocolError(
                "bad-request", f"unknown passes: {sorted(unknown)}",
                request_id)
        passes = frozenset(passes)
    validate = obj.get("validate", op == "validate" and "report")
    if validate not in (False, True, "report"):
        raise ProtocolError("bad-request",
                            "validate must be true, false or 'report'",
                            request_id)
    if op == "validate" and validate is False:
        validate = "report"
    asm = obj.get("asm", False)
    if not isinstance(asm, bool):
        raise ProtocolError("bad-request", "asm must be a boolean",
                            request_id)
    pgo = _parse_pgo(obj.get("pgo", False), request_id)
    superopt = _parse_superopt(obj.get("superopt", False), request_id)
    tenant = _field(obj, request_id, "tenant", str, "")
    if len(tenant) > MAX_TENANT_CHARS:
        raise ProtocolError(
            "bad-request",
            f"tenant exceeds {MAX_TENANT_CHARS} characters", request_id)
    priority = _field(obj, request_id, "priority", int, 0)
    if not 0 <= priority <= MAX_PRIORITY:
        raise ProtocolError(
            "bad-request", f"priority must be 0..{MAX_PRIORITY}",
            request_id)
    return Request(id=request_id, op=op, name=name, source=source,
                   entry=entry, prog_type=ProgramType(prog_type),
                   mcpu=mcpu, ctx_size=ctx_size, kernel=kernel,
                   passes=passes, validate=validate, asm=asm, pgo=pgo,
                   superopt=superopt, tenant=tenant, priority=priority)


def _parse_pgo(value: Any, request_id: Any):
    """``pgo``: ``false``/absent -> off, ``true`` -> default spec, or an
    object selecting the training-battery parameters."""
    if value is False:
        return None
    from ..core.bytecode_passes.layout import PgoSpec

    if value is True:
        return PgoSpec()
    if not isinstance(value, dict):
        raise ProtocolError("bad-request",
                            "pgo must be a boolean or an object",
                            request_id)
    unknown = set(value) - {"tests", "runs", "seed", "max_insns"}
    if unknown:
        raise ProtocolError("bad-request",
                            f"unknown pgo fields: {sorted(unknown)}",
                            request_id)
    for key, val in value.items():
        if not isinstance(val, int) or isinstance(val, bool) or val < 0:
            raise ProtocolError(
                "bad-request",
                f"pgo field {key!r} must be a non-negative integer",
                request_id)
    return PgoSpec.from_dict(value)


def _parse_superopt(value: Any, request_id: Any):
    """``superopt``: ``false``/absent -> off, ``true`` -> default spec,
    or an object selecting the window/search parameters."""
    if value is False:
        return None
    from ..core.superopt import SuperoptSpec

    if value is True:
        return SuperoptSpec()
    if not isinstance(value, dict):
        raise ProtocolError("bad-request",
                            "superopt must be a boolean or an object",
                            request_id)
    unknown = set(value) - {"window", "iterations", "seed"}
    if unknown:
        raise ProtocolError("bad-request",
                            f"unknown superopt fields: {sorted(unknown)}",
                            request_id)
    for key, val in value.items():
        if not isinstance(val, int) or isinstance(val, bool) or val < 0:
            raise ProtocolError(
                "bad-request",
                f"superopt field {key!r} must be a non-negative integer",
                request_id)
    return SuperoptSpec.from_dict(value)


def ok_response(request_id: Any, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def error_from(exc: ProtocolError) -> dict:
    return error_response(exc.request_id, exc.code, exc.message)
