"""Priority + weighted-fair admission queueing for the serve daemon.

The single-daemon tier (PR 5) admitted requests through a plain FIFO
``asyncio.Queue``; under Zipf-skewed multi-tenant load that lets one
chatty tenant monopolize every admission window while a light tenant's
single request waits behind hundreds of queued repeats.  The fleet
tier replaces the FIFO with :class:`FairAdmissionQueue`:

* **Strict priority classes.**  Higher ``priority`` drains first; the
  daemon additionally uses a high-priority arrival to preempt the
  admission window's linger timer (see ``ServeConfig.preempt_priority``).
* **Weighted round-robin across tenants** inside each class: the
  tenant at the head of the ring is served up to ``weight(tenant)``
  consecutive requests, then the ring rotates.  A tenant with a
  backlog therefore gets at most ``weight / sum(weights of backlogged
  tenants)`` of the admission slots per round — and every backlogged
  tenant is served at least once per round, so nobody starves no
  matter how skewed the arrival mix is.

The queue is single-event-loop only (like everything else in the
daemon) and mirrors the small slice of the ``asyncio.Queue`` surface
the batcher uses: ``put_nowait`` / ``get`` / ``get_nowait`` /
``qsize`` / ``empty``, raising ``asyncio.QueueFull`` on overflow so
the daemon's backpressure path is unchanged.  Control items (the stop
sentinel) bypass fairness through :meth:`put_control`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: priorities are small ints; the protocol clamps to this range
MIN_PRIORITY = 0
MAX_PRIORITY = 9

_MISSING = object()


class _PriorityClass:
    """One priority level: per-tenant FIFOs served weighted-RR."""

    __slots__ = ("queues", "ring", "turn")

    def __init__(self):
        self.queues: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self.ring: Deque[str] = deque()   # tenants with a backlog
        self.turn = 0                     # services left for ring head

    def push(self, tenant: str, item: Any) -> None:
        queue = self.queues.get(tenant)
        if queue is None:
            queue = self.queues[tenant] = deque()
        if not queue:
            self.ring.append(tenant)
        queue.append(item)

    def pop(self, weight_of) -> Any:
        tenant = self.ring[0]
        if self.turn <= 0:
            self.turn = max(1, weight_of(tenant))
        queue = self.queues[tenant]
        item = queue.popleft()
        self.turn -= 1
        if not queue:
            del self.queues[tenant]
            self.ring.popleft()
            self.turn = 0
        elif self.turn <= 0:
            self.ring.rotate(-1)  # head's turn is over: to the back
        return item

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues.values())

    @property
    def empty(self) -> bool:
        return not self.ring


class FairAdmissionQueue:
    """See the module docstring.  Items are opaque to the queue; the
    caller supplies ``(priority, tenant)`` at ``put`` time."""

    def __init__(self, maxsize: int = 0,
                 weights: Optional[Dict[str, int]] = None,
                 default_weight: int = 1):
        if default_weight < 1:
            raise ValueError("default_weight must be >= 1")
        self.maxsize = maxsize
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._classes: Dict[int, _PriorityClass] = {}
        self._order: List[int] = []       # priorities, descending
        self._control: Deque[Any] = deque()
        self._size = 0
        self._waiters: Deque["asyncio.Future"] = deque()

    # ------------------------------------------------------------- puts
    def put_nowait(self, item: Any, priority: int = 0,
                   tenant: str = "") -> None:
        if self.maxsize and self._size >= self.maxsize:
            raise asyncio.QueueFull
        cls = self._classes.get(priority)
        if cls is None:
            cls = self._classes[priority] = _PriorityClass()
            self._order = sorted(self._classes, reverse=True)
        cls.push(tenant, item)
        self._size += 1
        self._wake_next()

    def put_control(self, item: Any) -> None:
        """Enqueue a control sentinel (served before any request, never
        counted against ``maxsize``)."""
        self._control.append(item)
        self._wake_next()

    # ------------------------------------------------------------- gets
    def _pop(self) -> Any:
        if self._control:
            return self._control.popleft()
        for priority in self._order:
            cls = self._classes[priority]
            if not cls.empty:
                self._size -= 1
                return cls.pop(self.weight_of)
        return _MISSING

    def get_nowait(self) -> Any:
        item = self._pop()
        if item is _MISSING:
            raise asyncio.QueueEmpty
        return item

    async def get(self) -> Any:
        while True:
            item = self._pop()
            if item is not _MISSING:
                return item
            future = asyncio.get_running_loop().create_future()
            self._waiters.append(future)
            try:
                await future
            except asyncio.CancelledError:
                if future.done() and not future.cancelled():
                    # we consumed a wakeup but will not take the item:
                    # pass the baton or the item strands in the queue
                    self._wake_next()
                else:
                    try:
                        self._waiters.remove(future)
                    except ValueError:
                        pass
                raise

    def _wake_next(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(True)
                return

    # ------------------------------------------------------ introspection
    def weight_of(self, tenant: str) -> int:
        return self._weights.get(tenant, self.default_weight)

    def qsize(self) -> int:
        return self._size + len(self._control)

    def empty(self) -> bool:
        return self.qsize() == 0

    def backlog(self) -> Dict[int, Dict[str, int]]:
        """Queued requests by priority and tenant (for ``stats``)."""
        out: Dict[int, Dict[str, int]] = {}
        for priority in self._order:
            cls = self._classes[priority]
            if cls.empty:
                continue
            out[priority] = {tenant: len(queue)
                             for tenant, queue in cls.queues.items()}
        return out
