"""Service-side metrics: latency percentiles, throughput, counters.

Everything here is mutated only from the daemon's event-loop thread
and snapshotted into plain dicts for the ``stats`` endpoint, so no
locking is needed.  The latency reservoir keeps the most recent
*window* observations — a production-scale daemon must report p99
without unbounded memory growth, which the soak test checks via RSS.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class LatencyReservoir:
    """Sliding window of request latencies (seconds in, ms out)."""

    def __init__(self, window: int = 4096):
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._values.append(seconds)
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def snapshot(self) -> Dict[str, float]:
        values = sorted(self._values)
        ms = 1000.0
        return {
            "count": self.count,
            "window": len(values),
            "p50_ms": round(percentile(values, 50) * ms, 3),
            "p90_ms": round(percentile(values, 90) * ms, 3),
            "p99_ms": round(percentile(values, 99) * ms, 3),
            "p999_ms": round(percentile(values, 99.9) * ms, 3),
            "max_ms": round(self.max_seconds * ms, 3),
            "mean_ms": round(self.total_seconds / self.count * ms, 3)
            if self.count else 0.0,
        }


@dataclass
class ServiceStats:
    """Counters the daemon accumulates and serves via ``stats``."""

    started_at: float = field(default_factory=time.monotonic)
    requests_received: int = 0
    responses_sent: int = 0
    compiles_completed: int = 0
    fast_path_hits: int = 0    # answered via the source->key memo
    compile_errors: int = 0
    protocol_errors: int = 0
    rejected: int = 0          # not admitted (daemon draining)
    disconnects: int = 0       # client vanished before its response
    connections_opened: int = 0
    connections_closed: int = 0
    batches_dispatched: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    preempted_batches: int = 0  # linger cut short by a priority arrival
    peak_queue_depth: int = 0   # high-water mark of the admission queue
    busy_seconds: float = 0.0  # wall time spent inside compile_many
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    queue_latency: LatencyReservoir = field(
        default_factory=lambda: LatencyReservoir(window=4096))
    #: completed compiles per tenant (bounded: overflow folds into
    #: ``__other__`` so a tenant-per-request abuser can't grow us)
    tenant_served: Dict[str, int] = field(default_factory=dict)
    #: completed compiles per priority class
    priority_served: Dict[int, int] = field(default_factory=dict)

    TENANT_CARDINALITY_LIMIT = 512

    def observe_batch(self, size: int, wall_seconds: float) -> None:
        self.batches_dispatched += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)
        self.busy_seconds += wall_seconds

    def observe_served(self, tenant: str, priority: int) -> None:
        key = tenant or "__default__"
        if key not in self.tenant_served and \
                len(self.tenant_served) >= self.TENANT_CARDINALITY_LIMIT:
            key = "__other__"
        self.tenant_served[key] = self.tenant_served.get(key, 0) + 1
        self.priority_served[priority] = \
            self.priority_served.get(priority, 0) + 1

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def snapshot(self, queue_depth: int = 0,
                 cache_stats: Optional[dict] = None,
                 config: Optional[dict] = None) -> dict:
        uptime = max(self.uptime_seconds, 1e-9)
        mean_batch = (self.batched_requests / self.batches_dispatched
                      if self.batches_dispatched else 0.0)
        out = {
            "uptime_seconds": round(uptime, 3),
            "requests": {
                "received": self.requests_received,
                "responded": self.responses_sent,
                "compiles": self.compiles_completed,
                "fast_path_hits": self.fast_path_hits,
                "compile_errors": self.compile_errors,
                "protocol_errors": self.protocol_errors,
                "rejected": self.rejected,
                "disconnects": self.disconnects,
            },
            "connections": {
                "opened": self.connections_opened,
                "closed": self.connections_closed,
            },
            "queue": {"depth": queue_depth,
                      "peak_depth": self.peak_queue_depth},
            "batches": {
                "dispatched": self.batches_dispatched,
                "requests": self.batched_requests,
                "max_size": self.max_batch_size,
                "mean_size": round(mean_batch, 2),
                "preempted": self.preempted_batches,
            },
            "fairness": {
                "tenants_seen": len(self.tenant_served),
                "served_by_tenant": dict(sorted(
                    self.tenant_served.items(),
                    key=lambda kv: -kv[1])[:32]),
                "served_by_priority": {
                    str(k): v
                    for k, v in sorted(self.priority_served.items())},
            },
            "throughput": {
                "programs_per_second": round(
                    self.compiles_completed / uptime, 3),
                "busy_programs_per_second": round(
                    self.compiles_completed / self.busy_seconds, 3)
                if self.busy_seconds else 0.0,
                "busy_seconds": round(self.busy_seconds, 3),
            },
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_latency.snapshot(),
        }
        if cache_stats is not None:
            out["cache"] = cache_stats
        if config is not None:
            out["config"] = config
        return out
