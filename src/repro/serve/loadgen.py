"""Load generator: synthetic tenant traffic for the serve daemon.

Request streams are synthesized from the fuzz generators
(:mod:`repro.fuzz.generator`): a pool of *unique* programs is drawn at
a fixed seed, then each request picks a pool entry under a
Zipf-skewed distribution — a few programs are requested over and over
(the hot tenants every fleet has) while the tail stays cold.  That
skew is what makes the shared warm cache matter: the hot head should
hit on every repeat, so a healthy daemon shows a cache hit-rate near
``1 - unique/requests`` on a long run.

Fault injection (:class:`FaultPlan`) mixes protocol abuse into the
stream — malformed JSON lines, oversized programs, unknown ops, and
abrupt client disconnects mid-stream — so graceful-degradation paths
are exercised under load, not just in unit tests.

Everything is deterministic under a fixed seed: the pool, the Zipf
assignment, and every fault decision derive from per-client
``random.Random`` instances.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fuzz.generator import SourceGenerator
from . import protocol
from .client import Address, ServeClient


@dataclass(frozen=True)
class PoolProgram:
    """One unique program in the traffic pool."""

    name: str
    source: str
    entry: str
    ctx_size: int = 64
    prog_type: str = "tracepoint"
    mcpu: str = "v2"

    def payload(self, validate=False, tenant: str = "",
                priority: int = 0) -> dict:
        out = {"op": "compile", "name": self.name, "source": self.source,
               "entry": self.entry, "prog_type": self.prog_type,
               "mcpu": self.mcpu, "ctx_size": self.ctx_size}
        if validate:
            out["validate"] = validate
        if tenant:
            out["tenant"] = tenant
        if priority:
            out["priority"] = priority
        return out


@dataclass(frozen=True)
class FaultPlan:
    """Per-request fault probabilities (independent draws)."""

    malformed: float = 0.0    # send a line that is not JSON
    oversized: float = 0.0    # send a source beyond MAX_SOURCE_BYTES
    unknown_op: float = 0.0   # send a valid line with a bogus op
    disconnect: float = 0.0   # hang up mid-stream, then reconnect

    @property
    def any(self) -> bool:
        return any((self.malformed, self.oversized, self.unknown_op,
                    self.disconnect))


@dataclass
class ClientResult:
    """One worker's tally."""

    sent: int = 0
    received: int = 0
    ok: int = 0
    cached: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)
    disconnects: int = 0
    latencies: List[float] = field(default_factory=list)
    #: successful compiles per tenant label (fairness accounting)
    tenant_ok: Dict[str, int] = field(default_factory=dict)
    #: requests sent per tenant label (the offered load)
    tenant_sent: Dict[str, int] = field(default_factory=dict)
    failure: Optional[str] = None

    def count_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def count_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def count_tenant(self, tenant: str) -> None:
        if tenant:
            self.tenant_ok[tenant] = self.tenant_ok.get(tenant, 0) + 1

    def count_tenant_sent(self, tenant: str) -> None:
        if tenant:
            self.tenant_sent[tenant] = \
                self.tenant_sent.get(tenant, 0) + 1


@dataclass
class LoadResult:
    """The merged outcome of one load run."""

    clients: List[ClientResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def sent(self) -> int:
        return sum(c.sent for c in self.clients)

    @property
    def received(self) -> int:
        return sum(c.received for c in self.clients)

    @property
    def ok(self) -> int:
        return sum(c.ok for c in self.clients)

    @property
    def cached(self) -> int:
        return sum(c.cached for c in self.clients)

    @property
    def dropped(self) -> int:
        """Requests that were fully sent and awaited but never got a
        response (must be zero for a healthy daemon)."""
        return self.sent - self.received

    @property
    def errors(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for code, n in c.errors.items():
                merged[code] = merged.get(code, 0) + n
        return merged

    @property
    def faults(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for kind, n in c.faults.items():
                merged[kind] = merged.get(kind, 0) + n
        return merged

    @property
    def latencies(self) -> List[float]:
        out: List[float] = []
        for c in self.clients:
            out.extend(c.latencies)
        return out

    @property
    def failures(self) -> List[str]:
        return [c.failure for c in self.clients if c.failure]

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.received / self.wall_seconds

    @property
    def tenant_goodput(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for tenant, n in c.tenant_ok.items():
                merged[tenant] = merged.get(tenant, 0) + n
        return merged

    @property
    def tenant_offered(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for tenant, n in c.tenant_sent.items():
                merged[tenant] = merged.get(tenant, 0) + n
        return merged

    def goodput_spread(self) -> float:
        """max/min of per-tenant *completion ratio* (goodput divided
        by offered load) — the fairness headline.  Offered arrival
        mixes are Zipf-skewed by design, so raw goodput counts differ
        wildly; what fairness guarantees is that every tenant's
        admitted share completes, i.e. this ratio spread stays ~1.0.
        Returns 0.0 when fewer than two tenants were offered load."""
        goodput = self.tenant_goodput
        ratios = [goodput.get(tenant, 0) / offered
                  for tenant, offered in self.tenant_offered.items()
                  if offered > 0]
        if len(ratios) < 2 or min(ratios) == 0:
            return 0.0
        return max(ratios) / min(ratios)

    def to_dict(self) -> dict:
        from .metrics import percentile

        lat = sorted(self.latencies)
        return {
            "sent": self.sent,
            "received": self.received,
            "ok": self.ok,
            "cached": self.cached,
            "dropped": self.dropped,
            "errors": self.errors,
            "faults": self.faults,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_second": round(self.requests_per_second, 2),
            "latency_ms": {
                "p50": round(percentile(lat, 50) * 1000, 3),
                "p90": round(percentile(lat, 90) * 1000, 3),
                "p99": round(percentile(lat, 99) * 1000, 3),
                "p999": round(percentile(lat, 99.9) * 1000, 3),
            },
            "tenants": {
                "count": len(self.tenant_goodput),
                "goodput": dict(sorted(self.tenant_goodput.items(),
                                       key=lambda kv: -kv[1])[:32]),
                "goodput_spread": round(self.goodput_spread(), 3),
            },
        }


# ---------------------------------------------------------------- pool
def build_pool(unique: int, seed: int = 0,
               prefilter: Optional[str] = "frontend",
               ctx_size: int = 64) -> List[PoolProgram]:
    """Draw *unique* distinct mini-C programs from the fuzz source
    generator.

    ``prefilter="frontend"`` keeps only programs the frontend parses
    (cheap); ``prefilter="full"`` keeps only programs the whole
    pipeline compiles (slower, used by the benchmark harness so every
    request is expected to succeed); ``prefilter=None`` keeps
    everything — the daemon's compile-error path then sees traffic too.
    """
    pool: List[PoolProgram] = []
    attempt = 0
    while len(pool) < unique and attempt < unique * 40:
        gen_seed = seed * 1_000_003 + attempt
        attempt += 1
        case = SourceGenerator(gen_seed).generate()
        candidate = PoolProgram(
            name=f"tenant_{len(pool)}", source=case.text, entry=case.name,
            ctx_size=max(case.ctx_size, ctx_size))
        if prefilter is not None:
            try:
                from ..frontend import compile_source

                module = compile_source(case.text, candidate.name)
                if prefilter == "full":
                    from ..core.pipeline import MerlinPipeline

                    MerlinPipeline().compile(
                        module.get(case.name), module,
                        ctx_size=candidate.ctx_size)
            except Exception:
                continue
        pool.append(candidate)
    if len(pool) < unique:
        raise RuntimeError(
            f"could only generate {len(pool)}/{unique} pool programs")
    return pool


def zipf_weights(n: int, s: float = 1.1) -> List[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def zipf_stream(rng: random.Random, n_items: int, count: int,
                s: float = 1.1) -> List[int]:
    """*count* Zipf-skewed pool indices (rank 0 is the hottest)."""
    weights = zipf_weights(n_items, s)
    return rng.choices(range(n_items), weights=weights, k=count)


# --------------------------------------------------------------- worker
_MALFORMED_LINES = (
    b"this is not json\n",
    b"{\"op\": \"compile\", \"source\": \n",
    b"[1, 2, 3]\n",
    b"\xff\xfe invalid utf8 \xff\n",
)


def _draw_priority(rng: random.Random,
                   priority_mix: Optional[Dict[int, float]]) -> int:
    if not priority_mix:
        return 0
    levels = sorted(priority_mix)
    weights = [priority_mix[level] for level in levels]
    return rng.choices(levels, weights=weights, k=1)[0]


def _run_client(address: Address, pool: Sequence[PoolProgram],
                indices: Sequence[int], faults: FaultPlan,
                rng: random.Random, result: ClientResult,
                depth: int = 1, validate=False,
                tenants: bool = False,
                priority_mix: Optional[Dict[int, float]] = None,
                recorder=None, client_id: int = 0) -> None:
    """One synchronous worker: stream requests, tally responses.

    ``depth`` > 1 pipelines that many requests before reading the
    responses back (the daemon's arrival-order guarantee makes the
    accounting trivial).  ``tenants`` labels each request with its
    pool program's name; ``priority_mix`` draws a priority per request
    (priority -> probability); ``recorder`` (a
    :class:`repro.serve.trace.TraceWriter`) captures every well-formed
    request this worker sends, so any loadgen run can be replayed.
    """
    client = ServeClient(address)
    window: List[tuple] = []  # (send time, tenant) of in-flight requests

    def drain() -> None:
        while window:
            started, tenant = window.pop(0)
            response = client.recv()
            result.received += 1
            result.latencies.append(time.monotonic() - started)
            if response.get("ok"):
                result.ok += 1
                result.count_tenant(tenant)
                if response["result"].get("cached"):
                    result.cached += 1
            else:
                result.count_error(response["error"]["code"])

    try:
        for index in indices:
            if faults.any:
                if rng.random() < faults.disconnect:
                    # vanish mid-stream: any in-flight responses are
                    # intentionally lost, then come back for more
                    result.count_fault("disconnect")
                    result.disconnects += 1
                    result.sent -= len(window)  # never awaited
                    window.clear()
                    client.abort()
                    client = ServeClient(address)
                if rng.random() < faults.malformed:
                    result.count_fault("malformed")
                    client.send_raw(rng.choice(_MALFORMED_LINES))
                    window.append((time.monotonic(), ""))
                    result.sent += 1
                if rng.random() < faults.oversized:
                    result.count_fault("oversized")
                    big = ("u64 f(u8* ctx) { return 1; } //"
                           + "x" * protocol.MAX_SOURCE_BYTES)
                    client.send({"op": "compile", "source": big})
                    window.append((time.monotonic(), ""))
                    result.sent += 1
                if rng.random() < faults.unknown_op:
                    result.count_fault("unknown_op")
                    client.send({"op": "transmogrify"})
                    window.append((time.monotonic(), ""))
                    result.sent += 1
            program = pool[index]
            tenant = program.name if tenants else ""
            payload = program.payload(
                validate=validate, tenant=tenant,
                priority=_draw_priority(rng, priority_mix))
            result.count_tenant_sent(tenant)
            if recorder is not None:
                recorder.record(client_id, payload)
            client.send(payload)
            window.append((time.monotonic(), tenant))
            result.sent += 1
            if len(window) >= depth:
                drain()
        drain()
    except Exception as exc:
        result.failure = f"{type(exc).__name__}: {exc}"
    finally:
        try:
            client.close()
        except Exception:
            pass


# ----------------------------------------------------------------- run
def run_load(address: Address, pool: Sequence[PoolProgram],
             requests: int = 200, clients: int = 4, seed: int = 0,
             zipf_s: float = 1.1, depth: int = 4,
             faults: Optional[FaultPlan] = None,
             validate=False, tenants: bool = False,
             priority_mix: Optional[Dict[int, float]] = None,
             recorder=None) -> LoadResult:
    """Drive *clients* concurrent workers, *requests* each, against a
    running daemon.  Deterministic under (*seed*, *pool*).

    ``tenants=True`` labels traffic by pool-program name (the
    fairness path); ``priority_mix`` draws per-request priorities;
    ``recorder`` captures the run as a replayable trace.
    """
    faults = faults or FaultPlan()
    results = [ClientResult() for _ in range(clients)]
    threads = []
    started = time.perf_counter()
    for worker in range(clients):
        rng = random.Random(seed * 7_919 + worker)
        indices = zipf_stream(rng, len(pool), requests, s=zipf_s)
        thread = threading.Thread(
            target=_run_client,
            args=(address, pool, indices, faults, rng, results[worker]),
            kwargs=dict(depth=depth, validate=validate, tenants=tenants,
                        priority_mix=priority_mix, recorder=recorder,
                        client_id=worker),
            name=f"loadgen-{worker}", daemon=True)
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    out = LoadResult(clients=results,
                     wall_seconds=time.perf_counter() - started)
    return out
