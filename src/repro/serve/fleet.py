"""The fleet tier: a consistent-hash router over N shard daemons.

PR 5 proved the single-daemon story; this module scales it out while
keeping the wire protocol identical — a client cannot tell a
:class:`ShardRouter` from one :class:`OptimizationDaemon` (except that
``stats`` gets richer)::

    client --- JSON lines ---> ShardRouter --+--> shard 0 (own process)
    client --- JSON lines ---> ShardRouter --+--> shard 1 (own process)
                                             +--> ...
                              one shared content-addressed cache tree

Design decisions worth naming:

* **Consistent hashing on the source text.**  Each shard daemon keeps
  its own source->key fast-path memo and in-memory cache LRU; routing
  a given program to the same shard every time keeps those hot.  The
  ring uses ``vnodes`` virtual nodes per shard so keyspace splits stay
  even, and a lookup walks past dead shards — while a shard is down
  its keys overflow to the next live point on the ring (the shared
  disk tree makes that correct, just colder).
* **Zero re-encode forwarding.**  The daemon guarantees per-connection
  responses in request-arrival order, so the router matches responses
  to requests *positionally* per shard link — no id rewriting, no
  response parsing: request lines are forwarded verbatim and response
  lines are relayed verbatim.  The router only ``json.loads`` the
  request to pick a shard and remember the id for error synthesis.
* **Failure is structured, never silent.**  A shard dying mid-batch
  resolves every in-flight request on that link with a ``shard-lost``
  error (retry-safe: compilation is pure and the cache write is
  atomic).  A supervisor then respawns the shard process (when
  ``respawn``) and reconnects; routing resumes without restarting the
  router.  Drain shutdown quiesces every client connection, then asks
  each shard to drain — zero admitted requests are dropped across the
  fleet.
* **One cache tree, many writers.**  Shards share ``cache_dir``; entry
  writes are temp-file + ``os.replace`` (PR 2) and evictions are
  tombstone renames (this PR), so cross-shard races never tear an
  entry — the contention suite pins this.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from . import protocol
from .daemon import OptimizationDaemon, ServeConfig

_EOF = object()


# ------------------------------------------------------------------ ring
def _hash64(data) -> int:
    if isinstance(data, str):
        data = data.encode("utf-8", "surrogatepass")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over integer shard ids.

    ``vnodes`` virtual points per shard keep the keyspace split even
    (with 64 vnodes the max/min shard share is within ~2x for any
    realistic fleet size).  ``lookup`` returns the first *alive* shard
    at or after the key's point, wrapping around — so removing a shard
    only moves that shard's keys, the consistent-hashing property the
    per-shard memo/LRU affinity relies on.
    """

    def __init__(self, nodes: Sequence[int], vnodes: int = 64):
        if not nodes:
            raise ValueError("ring needs at least one node")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        points = []
        for node in self.nodes:
            for v in range(vnodes):
                points.append((_hash64(f"shard-{node}#{v}"), node))
        points.sort()
        self._points = points
        self._hashes = [p[0] for p in points]

    def lookup(self, key, alive: Optional[set] = None) -> Optional[int]:
        start = bisect_right(self._hashes, _hash64(key))
        n = len(self._points)
        tried = set()
        for step in range(n):
            node = self._points[(start + step) % n][1]
            if node in tried:
                continue
            tried.add(node)
            if alive is None or node in alive:
                return node
            if len(tried) == len(self.nodes):
                break
        return None

    def shares(self, samples: int = 4096) -> Dict[int, float]:
        """Fraction of a uniform keyspace owned per shard (for tests)."""
        counts = {node: 0 for node in self.nodes}
        for i in range(samples):
            counts[self.lookup(f"sample-{i}")] += 1
        return {node: count / samples for node, count in counts.items()}


# ---------------------------------------------------------------- config
@dataclass
class FleetConfig:
    """Everything that shapes one router + its shard fleet."""

    shards: int = 2
    socket_path: Optional[str] = None   # router front end (unix)
    host: Optional[str] = None          # or TCP on host:port
    port: int = 0
    runtime_dir: Optional[str] = None   # shard sockets + default cache
    cache_dir: Optional[str] = None     # one tree shared by all shards
    jobs: int = 1                       # worker processes per shard
    max_batch: int = 16
    max_delay: float = 0.01
    kernel: str = "6.5"
    max_memory_entries: int = 4096
    queue_limit: int = 4096
    tenant_weights: Optional[Dict[str, int]] = None
    preempt_priority: int = 1
    cache_ttl: Optional[float] = None
    cache_max_bytes: Optional[int] = None
    sweep_interval: float = 5.0
    vnodes: int = 64
    drain_grace: float = 0.05
    respawn: bool = True                # supervisor restarts dead shards
    reconnect_delay: float = 0.1
    connect_timeout: float = 60.0       # shard spawn + import + bind

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.runtime_dir is None:
            self.runtime_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        if self.cache_dir is None:
            self.cache_dir = os.path.join(self.runtime_dir, "cache")
        if self.socket_path is None and self.host is None:
            self.socket_path = os.path.join(self.runtime_dir,
                                            "router.sock")

    def shard_socket(self, index: int) -> str:
        return os.path.join(self.runtime_dir, f"shard-{index}.sock")

    def shard_config(self, index: int) -> ServeConfig:
        return ServeConfig(
            socket_path=self.shard_socket(index),
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            max_memory_entries=self.max_memory_entries,
            max_batch=self.max_batch,
            max_delay=self.max_delay,
            kernel=self.kernel,
            queue_limit=self.queue_limit,
            tenant_weights=self.tenant_weights,
            preempt_priority=self.preempt_priority,
            cache_ttl=self.cache_ttl,
            cache_max_bytes=self.cache_max_bytes,
            sweep_interval=self.sweep_interval,
            shard_id=index,
        )

    def describe(self) -> dict:
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "shards": self.shards,
            "jobs_per_shard": self.jobs,
            "vnodes": self.vnodes,
            "cache_dir": self.cache_dir,
            "cache_ttl_seconds": self.cache_ttl,
            "cache_max_bytes": self.cache_max_bytes,
            "max_batch": self.max_batch,
            "max_delay_ms": round(self.max_delay * 1000, 3),
            "kernel": self.kernel,
        }


# ------------------------------------------------------- shard process
def _shard_main(config: ServeConfig) -> None:
    """Entry point of one shard process (spawn context)."""
    daemon = OptimizationDaemon(config)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, OSError):
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(daemon.stop(drain=True)))
        await daemon.start()
        await daemon.serve_forever()

    asyncio.run(run())


# ------------------------------------------------------------ router IO
class _RouterConnection:
    """Per-client state: FIFO of response-bytes futures, one writer."""

    def __init__(self, writer: asyncio.StreamWriter, stats: "RouterStats"):
        self.writer = writer
        self.stats = stats
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.inflight = 0
        self.broken = False
        self.writer_task: Optional[asyncio.Task] = None

    def enqueue(self, future: "asyncio.Future") -> None:
        self.inflight += 1
        self.queue.put_nowait(future)

    async def write_loop(self) -> None:
        while True:
            item = await self.queue.get()
            if item is _EOF:
                break
            line = await item
            if not self.broken:
                try:
                    self.writer.write(line)
                    await self.writer.drain()
                    self.stats.responses_sent += 1
                except (ConnectionError, OSError):
                    self.broken = True
                    self.stats.disconnects += 1
            self.inflight -= 1

    async def quiesce(self) -> None:
        while self.inflight > 0:
            await asyncio.sleep(0.005)


class _ShardLink:
    """The router's connection to one shard daemon.

    Responses are matched to forwarded requests positionally (the
    daemon's arrival-order guarantee); ``pending`` remembers only the
    original request id so a dead shard can answer with a structured
    ``shard-lost`` error instead of a hang.
    """

    def __init__(self, router: "ShardRouter", index: int,
                 socket_path: str):
        self.router = router
        self.index = index
        self.socket_path = socket_path
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: Deque[Tuple[Any, "asyncio.Future"]] = deque()
        self.alive = False
        self.reader_task: Optional[asyncio.Task] = None
        self.forwarded = 0

    async def connect(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        last: Optional[BaseException] = None
        while time.monotonic() < deadline:
            try:
                self.reader, self.writer = await asyncio.open_unix_connection(
                    self.socket_path, limit=protocol.MAX_LINE_BYTES)
                self.alive = True
                self.reader_task = asyncio.ensure_future(self._read_loop())
                return
            except (ConnectionError, OSError, FileNotFoundError) as exc:
                last = exc
                await asyncio.sleep(0.05)
        raise RuntimeError(
            f"shard {self.index} did not come up on "
            f"{self.socket_path}") from last

    def forward(self, line: bytes, request_id: Any,
                future: "asyncio.Future") -> None:
        self.pending.append((request_id, future))
        self.forwarded += 1
        self.writer.write(line)

    async def request(self, obj: dict, timeout: float = 30.0) -> dict:
        """Router-internal request over the same FIFO (stats, shutdown)."""
        future = asyncio.get_running_loop().create_future()
        self.forward(protocol.encode(obj), obj.get("id"), future)
        await self.writer.drain()
        line = await asyncio.wait_for(future, timeout=timeout)
        return json.loads(line)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                if self.pending:
                    _rid, future = self.pending.popleft()
                    if not future.done():
                        future.set_result(line)
        except (ConnectionError, OSError, ValueError,
                asyncio.LimitOverrunError):
            pass
        finally:
            self.alive = False
            self.fail_pending("shard daemon connection lost")
            with contextlib.suppress(Exception):
                self.writer.close()
            self.router._on_link_down(self)

    def fail_pending(self, message: str) -> None:
        while self.pending:
            request_id, future = self.pending.popleft()
            if not future.done():
                self.router.stats.shard_lost_errors += 1
                future.set_result(protocol.encode(protocol.error_response(
                    request_id, "shard-lost",
                    f"shard {self.index}: {message}")))


@dataclass
class RouterStats:
    """Front-end counters (per-shard numbers live in the shard stats)."""

    started_at: float = field(default_factory=time.monotonic)
    connections_opened: int = 0
    connections_closed: int = 0
    requests_received: int = 0
    responses_sent: int = 0
    forwarded: int = 0
    local_responses: int = 0    # ping/stats/errors answered here
    protocol_errors: int = 0
    rejected: int = 0
    disconnects: int = 0
    shard_lost_errors: int = 0
    reconnects: int = 0
    respawns: int = 0

    def snapshot(self, routed_by_shard: Dict[int, int]) -> dict:
        return {
            "uptime_seconds": round(
                time.monotonic() - self.started_at, 3),
            "connections": {"opened": self.connections_opened,
                            "closed": self.connections_closed},
            "requests": {
                "received": self.requests_received,
                "responded": self.responses_sent,
                "forwarded": self.forwarded,
                "local_responses": self.local_responses,
                "protocol_errors": self.protocol_errors,
                "rejected": self.rejected,
                "disconnects": self.disconnects,
            },
            "shard_lost_errors": self.shard_lost_errors,
            "reconnects": self.reconnects,
            "respawns": self.respawns,
            "routed_by_shard": {str(k): v for k, v
                                in sorted(routed_by_shard.items())},
        }


# ---------------------------------------------------------------- router
class ShardRouter:
    """The fleet front end; speaks the daemon protocol verbatim."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()
        self.stats = RouterStats()
        self.ring = HashRing(range(self.config.shards),
                             vnodes=self.config.vnodes)
        self._mp = multiprocessing.get_context("spawn")
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._links: List[_ShardLink] = []
        self._connections: set = set()
        self._handler_tasks: set = set()
        self._revive_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        self._stop_requested = False
        self._stopped = asyncio.Event()
        self.address: Optional[Tuple] = None
        # full stats snapshot captured by stop() while the shards are
        # still up, for post-shutdown reporting (e.g. --stats-out)
        self.final_snapshot: Optional[dict] = None

    # ------------------------------------------------------------ setup
    def _spawn_shard(self, index: int) -> None:
        proc = self._mp.Process(
            target=_shard_main, args=(self.config.shard_config(index),),
            name=f"repro-shard-{index}", daemon=True)
        proc.start()
        self._procs[index] = proc

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        os.makedirs(self.config.cache_dir, exist_ok=True)
        # spawn every shard first (they come up in parallel), then
        # connect; each spawn is cheap, the child import is the slow part
        await asyncio.gather(*[
            self._loop.run_in_executor(None, self._spawn_shard, index)
            for index in range(self.config.shards)])
        self._links = [
            _ShardLink(self, index, self.config.shard_socket(index))
            for index in range(self.config.shards)]
        await asyncio.gather(*[
            link.connect(self.config.connect_timeout)
            for link in self._links])
        if self.config.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES)
            self.address = ("unix", self.config.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=protocol.MAX_LINE_BYTES)
            sock = self._server.sockets[0]
            self.address = ("tcp",) + sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    # ---------------------------------------------------------- routing
    def alive_shards(self) -> set:
        return {link.index for link in self._links if link.alive}

    def shard_for(self, source: str) -> Optional[int]:
        """Which live shard the ring routes *source* to (test hook)."""
        return self.ring.lookup(source, alive=self.alive_shards())

    def home_shard(self, source: str) -> int:
        """The ring's first choice, ignoring liveness (test hook)."""
        return self.ring.lookup(source)

    def _resolved_bytes(self, response: dict) -> "asyncio.Future":
        future = self._loop.create_future()
        future.set_result(protocol.encode(response))
        self.stats.local_responses += 1
        return future

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _RouterConnection(writer, self.stats)
        conn.writer_task = asyncio.ensure_future(conn.write_loop())
        self._connections.add(conn)
        self._handler_tasks.add(asyncio.current_task())
        self.stats.connections_opened += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self.stats.protocol_errors += 1
                    conn.enqueue(self._resolved_bytes(
                        protocol.error_response(
                            None, "oversized",
                            f"line exceeds {protocol.MAX_LINE_BYTES} "
                            f"bytes")))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.stats.requests_received += 1
                await self._route(conn, line)
        finally:
            conn.queue.put_nowait(_EOF)
            try:
                await conn.writer_task
            except BaseException:
                conn.writer_task.cancel()
            finally:
                with contextlib.suppress(Exception):
                    writer.close()
                self._connections.discard(conn)
                self._handler_tasks.discard(asyncio.current_task())
                self.stats.connections_closed += 1

    async def _route(self, conn: _RouterConnection, line: bytes) -> None:
        try:
            obj = json.loads(line)
            if not isinstance(obj, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            self.stats.protocol_errors += 1
            conn.enqueue(self._resolved_bytes(protocol.error_response(
                None, "bad-json", "unparseable line")))
            return
        request_id = obj.get("id")
        op = obj.get("op")
        if op == "ping":
            conn.enqueue(self._resolved_bytes(protocol.ok_response(
                request_id, {
                    "pong": True, "router": True,
                    "shards": self.config.shards,
                    "alive_shards": len(self.alive_shards()),
                    "protocol_version": protocol.PROTOCOL_VERSION,
                })))
            return
        if op == "stats":
            future = self._loop.create_future()
            conn.enqueue(future)

            async def fill() -> None:
                try:
                    snapshot = await self.snapshot()
                    response = protocol.ok_response(request_id, snapshot)
                except Exception as exc:  # pragma: no cover
                    response = protocol.error_response(
                        request_id, "internal",
                        f"{type(exc).__name__}: {exc}")
                self.stats.local_responses += 1
                if not future.done():
                    future.set_result(protocol.encode(response))

            asyncio.ensure_future(fill())
            return
        if op == "shutdown":
            conn.enqueue(self._resolved_bytes(protocol.ok_response(
                request_id, {"stopping": True})))
            asyncio.ensure_future(self.stop(drain=True))
            return
        # compile / validate / anything else: the shard decides
        if self._stopping:
            self.stats.rejected += 1
            conn.enqueue(self._resolved_bytes(protocol.error_response(
                request_id, "shutting-down",
                "router is draining; request not admitted")))
            return
        source = obj.get("source")
        if not isinstance(source, str):
            source = ""
        shard = self.ring.lookup(source, alive=self.alive_shards())
        if shard is None:
            self.stats.shard_lost_errors += 1
            conn.enqueue(self._resolved_bytes(protocol.error_response(
                request_id, "shard-lost", "no live shard in the fleet")))
            return
        link = self._links[shard]
        future = self._loop.create_future()
        if not line.endswith(b"\n"):
            line += b"\n"
        link.forward(line, request_id, future)
        self.stats.forwarded += 1
        conn.enqueue(future)
        try:
            await link.writer.drain()
        except (ConnectionError, OSError):
            pass  # the link's read loop notices and fails pending

    # ------------------------------------------------------- supervision
    def _on_link_down(self, link: _ShardLink) -> None:
        if self._stopping or self._loop is None:
            return
        task = asyncio.ensure_future(self._revive(link))
        self._revive_tasks.add(task)
        task.add_done_callback(self._revive_tasks.discard)

    async def _revive(self, link: _ShardLink) -> None:
        """Bring a dead shard back: respawn its process (optional),
        reconnect, and return it to the routing ring."""
        while not self._stopping:
            proc = self._procs.get(link.index)
            if self.config.respawn and (proc is None
                                        or not proc.is_alive()):
                if proc is not None:
                    await self._loop.run_in_executor(None, proc.join, 1.0)
                await self._loop.run_in_executor(
                    None, self._spawn_shard, link.index)
                self.stats.respawns += 1
            try:
                await link.connect(timeout=self.config.connect_timeout)
                self.stats.reconnects += 1
                return
            except RuntimeError:
                if not self.config.respawn:
                    return  # nothing will ever answer; stay down
                await asyncio.sleep(self.config.reconnect_delay)

    # ------------------------------------------------------------- stats
    async def snapshot(self) -> dict:
        """The fleet ``stats`` payload: router counters, per-shard
        snapshots, and the cross-shard aggregate."""
        shards: List[dict] = []
        for link in self._links:
            entry: dict = {"shard": link.index, "alive": link.alive,
                           "forwarded": link.forwarded, "stats": None}
            if link.alive:
                try:
                    response = await link.request(
                        {"id": f"router-stats-{link.index}",
                         "op": "stats"}, timeout=10.0)
                    if response.get("ok"):
                        entry["stats"] = response["result"]
                except (asyncio.TimeoutError, ConnectionError, OSError,
                        ValueError):
                    entry["alive"] = link.alive
            shards.append(entry)
        routed = {link.index: link.forwarded for link in self._links}
        return {
            "router": self.stats.snapshot(routed),
            "config": self.config.describe(),
            "fleet": aggregate_shard_stats(
                [s["stats"] for s in shards if s["stats"] is not None]),
            "shards": shards,
        }

    # -------------------------------------------------------------- stop
    async def stop(self, drain: bool = True) -> None:
        if self._stop_requested:
            await self._stopped.wait()
            return
        self._stop_requested = True
        if drain and self.config.drain_grace > 0:
            await asyncio.sleep(self.config.drain_grace)
        self._stopping = True
        if self._server is not None:
            # close() alone stops the accept loop.  wait_closed() must
            # come *after* connection teardown: from Python 3.12 it
            # also waits for every accepted transport to detach, so
            # awaiting it here deadlocks against a client that holds
            # its connection open across the drain.
            self._server.close()
        if drain:
            # every forwarded request resolves (response or shard-lost)
            for link in self._links:
                while link.pending and link.alive:
                    await asyncio.sleep(0.005)
        for conn in list(self._connections):
            if drain:
                await conn.quiesce()
            conn.queue.put_nowait(_EOF)
            with contextlib.suppress(Exception):
                conn.writer.close()
        for task in list(self._handler_tasks):
            with contextlib.suppress(Exception):
                await asyncio.wait_for(task, timeout=5.0)
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 5.0)
        for task in list(self._revive_tasks):
            task.cancel()
            with contextlib.suppress(BaseException):
                await task
        # capture the last full fleet view while the shards can still
        # answer a stats request
        with contextlib.suppress(Exception):
            self.final_snapshot = await self.snapshot()
        # drain the shards themselves: ask politely, then escalate
        for link in self._links:
            if link.alive:
                with contextlib.suppress(Exception):
                    await link.request(
                        {"id": "router-shutdown", "op": "shutdown"},
                        timeout=10.0)
        for link in self._links:
            if link.reader_task is not None:
                with contextlib.suppress(BaseException):
                    await asyncio.wait_for(link.reader_task, timeout=10.0)
            with contextlib.suppress(Exception):
                link.writer.close()
        for index, proc in self._procs.items():
            await self._loop.run_in_executor(None, proc.join, 15.0)
            if proc.is_alive():  # pragma: no cover - escalation path
                proc.terminate()
                await self._loop.run_in_executor(None, proc.join, 5.0)
                if proc.is_alive():
                    proc.kill()
                    await self._loop.run_in_executor(None, proc.join, 5.0)
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        self._stopped.set()

    def request_stop(self, drain: bool = True) -> None:
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(self.stop(drain=drain),
                                             self._loop)


def aggregate_shard_stats(snapshots: Sequence[dict]) -> dict:
    """Fold per-shard daemon snapshots into one fleet view.

    Counters sum; latency percentiles take the worst shard (a
    conservative fleet bound — exact fleet percentiles would need the
    raw reservoirs) with the mean request-weighted; the cache hit rate
    is recomputed from the summed counters, not averaged.
    """
    out: dict = {"shards": len(snapshots)}
    if not snapshots:
        return out

    def sum_over(path: Tuple[str, ...]) -> float:
        total = 0
        for snap in snapshots:
            node = snap
            for part in path:
                node = node.get(part, {})
            if isinstance(node, (int, float)):
                total += node
        return total

    requests = {}
    for key in ("received", "responded", "compiles", "fast_path_hits",
                "compile_errors", "protocol_errors", "rejected",
                "disconnects"):
        requests[key] = int(sum_over(("requests", key)))
    out["requests"] = requests
    out["queue"] = {
        "depth": int(sum_over(("queue", "depth"))),
        "peak_depth": int(max(
            snap.get("queue", {}).get("peak_depth", 0)
            for snap in snapshots)),
    }
    out["batches"] = {
        "dispatched": int(sum_over(("batches", "dispatched"))),
        "requests": int(sum_over(("batches", "requests"))),
        "preempted": int(sum_over(("batches", "preempted"))),
        "max_size": int(max(snap.get("batches", {}).get("max_size", 0)
                            for snap in snapshots)),
    }
    cache = {}
    for key in ("hits", "misses", "stores", "evictions", "memory_hits",
                "disk_hits", "write_errors", "read_errors", "expired",
                "disk_evictions"):
        cache[key] = int(sum_over(("cache", key)))
    lookups = cache["hits"] + cache["misses"]
    cache["hit_rate"] = round(cache["hits"] / lookups, 4) if lookups \
        else 0.0
    out["cache"] = cache
    out["throughput"] = {
        "programs_per_second": round(
            sum_over(("throughput", "programs_per_second")), 3),
        "busy_seconds": round(sum_over(("throughput", "busy_seconds")),
                              3),
    }
    latencies = [snap.get("latency", {}) for snap in snapshots]
    count = int(sum(lat.get("count", 0) for lat in latencies))
    weighted_mean = 0.0
    if count:
        weighted_mean = sum(
            lat.get("mean_ms", 0.0) * lat.get("count", 0)
            for lat in latencies) / count
    out["latency"] = {
        "count": count,
        "p50_ms_worst": max((lat.get("p50_ms", 0.0)
                             for lat in latencies), default=0.0),
        "p99_ms_worst": max((lat.get("p99_ms", 0.0)
                             for lat in latencies), default=0.0),
        "p999_ms_worst": max((lat.get("p999_ms", 0.0)
                              for lat in latencies), default=0.0),
        "max_ms": max((lat.get("max_ms", 0.0)
                       for lat in latencies), default=0.0),
        "mean_ms": round(weighted_mean, 3),
    }
    tenants: Dict[str, int] = {}
    priorities: Dict[str, int] = {}
    for snap in snapshots:
        fairness = snap.get("fairness", {})
        for tenant, served in fairness.get("served_by_tenant",
                                           {}).items():
            tenants[tenant] = tenants.get(tenant, 0) + served
        for prio, served in fairness.get("served_by_priority",
                                         {}).items():
            priorities[prio] = priorities.get(prio, 0) + served
    out["fairness"] = {
        "tenants_seen": len(tenants),
        "served_by_tenant": dict(sorted(tenants.items(),
                                        key=lambda kv: -kv[1])[:32]),
        "served_by_priority": dict(sorted(priorities.items())),
    }
    return out


# ---------------------------------------------------------------- thread
class FleetThread:
    """Run a router + shard fleet on a private loop in a background
    thread — the fleet twin of :class:`~repro.serve.daemon.DaemonThread`::

        with FleetThread(FleetConfig(shards=2)) as fleet:
            client = ServeClient(fleet.address)
            ...
    """

    def __init__(self, config: Optional[FleetConfig] = None):
        self.router = ShardRouter(config)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-fleet", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.router.start()
        self._ready.set()
        await self.router.serve_forever()

    def start(self) -> "FleetThread":
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise RuntimeError("fleet failed to start in time")
        if self._error is not None:
            raise RuntimeError("fleet failed to start") from self._error
        return self

    def stop(self, drain: bool = True, timeout: float = 120.0) -> None:
        if self._thread.is_alive():
            self.router.request_stop(drain=drain)
            self._thread.join(timeout=timeout)

    @property
    def address(self) -> Tuple:
        return self.router.address

    def kill_shard(self, index: int) -> None:
        """Fault injection: SIGKILL one shard process mid-flight."""
        proc = self.router._procs.get(index)
        if proc is not None and proc.is_alive():
            proc.kill()

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
