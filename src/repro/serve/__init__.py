"""repro.serve — optimization-as-a-service.

A long-running asyncio daemon (``repro serve``) that accepts
compile/validate requests over a local socket (JSON lines),
admission-batches them into the parallel batch compiler, shares one
warm compilation cache across every client and worker process, streams
per-request results back, and reports hit-rate / queue depth /
latency-percentile / throughput metrics via a ``stats`` endpoint.

::

    from repro.serve import DaemonThread, ServeClient, ServeConfig

    with DaemonThread(ServeConfig(max_delay=0.005)) as daemon:
        with ServeClient(daemon.address) as client:
            result = client.compile("u64 f(u8* ctx) { return 7; }")
            print(result["result"]["ni_optimized"])

The load generator (:mod:`repro.serve.loadgen`) synthesizes
Zipf-skewed tenant traffic from the fuzz generators, with optional
fault injection; ``repro bench-serve`` drives it to produce
``BENCH_service.json`` (see :mod:`repro.eval.serviceperf`).
"""

from .client import Address, ServeClient, ServeError
from .daemon import DaemonThread, OptimizationDaemon, ServeConfig
from .fairness import FairAdmissionQueue
from .fleet import (
    FleetConfig,
    FleetThread,
    HashRing,
    ShardRouter,
    aggregate_shard_stats,
)
from .loadgen import (
    FaultPlan,
    LoadResult,
    PoolProgram,
    build_pool,
    run_load,
    zipf_stream,
)
from .metrics import LatencyReservoir, ServiceStats, percentile
from .trace import (
    TraceEvent,
    TraceWriter,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_trace,
)
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    MAX_SOURCE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    decode,
    error_response,
    ok_response,
    parse_request,
)

__all__ = [
    "Address",
    "DaemonThread",
    "ERROR_CODES",
    "FairAdmissionQueue",
    "FaultPlan",
    "FleetConfig",
    "FleetThread",
    "HashRing",
    "LatencyReservoir",
    "LoadResult",
    "MAX_LINE_BYTES",
    "MAX_SOURCE_BYTES",
    "OptimizationDaemon",
    "PROTOCOL_VERSION",
    "PoolProgram",
    "ProtocolError",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServiceStats",
    "ShardRouter",
    "TraceEvent",
    "TraceWriter",
    "aggregate_shard_stats",
    "build_pool",
    "decode",
    "encode",
    "error_response",
    "load_trace",
    "ok_response",
    "parse_request",
    "percentile",
    "replay_trace",
    "run_load",
    "save_trace",
    "synthesize_trace",
    "zipf_stream",
]
