"""Blocking JSON-lines client for the ``repro serve`` daemon.

Used by the test suite, the load generator, and anyone scripting
against a running daemon.  Supports strict request/response lockstep
(:meth:`request`) and deep pipelining (:meth:`send` + :meth:`recv`) —
the daemon guarantees responses come back in request-arrival order,
so ``recv`` after N ``send`` calls yields responses for requests
1..N in order.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple, Union

from . import protocol

Address = Union[str, Tuple]


def _connect(address: Address, timeout: float) -> socket.socket:
    if isinstance(address, str):
        address = ("unix", address)
    kind = address[0]
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
        return sock
    if kind == "tcp":
        return socket.create_connection(address[1:3], timeout=timeout)
    raise ValueError(f"unknown address kind {kind!r}")


class ServeError(Exception):
    """An ``ok: false`` response, surfaced as an exception on demand."""

    def __init__(self, response: dict):
        error = response.get("error") or {}
        super().__init__(f"{error.get('code')}: {error.get('message')}")
        self.response = response
        self.code = error.get("code")
        self.message = error.get("message")


class ServeClient:
    """One connection to a daemon (unix socket path or TCP address)."""

    def __init__(self, address: Address, timeout: float = 120.0):
        self.address = address
        self.timeout = timeout
        self._sock = _connect(address, timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------ basics
    def send(self, payload: Dict[str, Any]) -> Any:
        """Send one request line; returns the request id used."""
        if "id" not in payload:
            self._next_id += 1
            payload = {"id": self._next_id, **payload}
        self._sock.sendall(protocol.encode(payload))
        return payload["id"]

    def send_raw(self, data: bytes) -> None:
        """Send raw bytes (fault injection: malformed lines)."""
        self._sock.sendall(data)

    def recv(self) -> dict:
        """Read one response line (responses arrive in request order)."""
        return protocol.decode(self.recv_raw())

    def recv_raw(self) -> bytes:
        """Read one raw response line, newline included (the trace
        determinism suite digests these bytes verbatim)."""
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return line

    def request(self, payload: Dict[str, Any], check: bool = False) -> dict:
        self.send(payload)
        response = self.recv()
        if check and not response.get("ok"):
            raise ServeError(response)
        return response

    # ------------------------------------------------------ conveniences
    def ping(self) -> dict:
        return self.request({"op": "ping"}, check=True)

    def stats(self) -> dict:
        return self.request({"op": "stats"}, check=True)["result"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"}, check=True)

    def compile(self, source: str, *, name: str = "anon", entry: str = "",
                prog_type: str = "xdp", mcpu: str = "v2",
                ctx_size: int = 64, validate: Union[bool, str] = False,
                asm: bool = False, check: bool = True, **extra) -> dict:
        payload = {"op": "compile", "source": source, "name": name,
                   "entry": entry, "prog_type": prog_type, "mcpu": mcpu,
                   "ctx_size": ctx_size, "asm": asm, **extra}
        if validate:
            payload["validate"] = validate
        return self.request(payload, check=check)

    def compile_pipelined(self, payloads: List[Dict[str, Any]]) -> List[dict]:
        """Send every request before reading any response."""
        ids = [self.send(p) for p in payloads]
        responses = [self.recv() for _ in ids]
        assert [r.get("id") for r in responses] == ids, \
            "daemon broke arrival-order response guarantee"
        return responses

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def abort(self) -> None:
        """Tear the connection down abruptly (fault injection)."""
        try:
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
