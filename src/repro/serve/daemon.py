"""``repro serve``: the long-running optimization-as-a-service daemon.

Architecture (one asyncio event loop, one dispatch thread, N worker
processes)::

    client --- JSON lines ---> connection handler --+
    client --- JSON lines ---> connection handler --+--> admission queue
                                                         |
                                           batcher task: collect up to
                                           max_batch requests or wait
                                           max_delay, group by pipeline
                                           config, then
                                                         |
                                           compile_many(..., executor=
                                           persistent process pool,
                                           cache=shared warm cache,
                                           on_error="capture")
                                                         |
    client <-- response lines (arrival order) <-- per-request futures

Admission batching amortizes dispatch overhead and lets concurrent
clients share one warm cache: the first compile of a program pays the
pipeline, every repeat — from any client, any connection, any worker
process — is a cache hit.  Responses stream back per request as each
batch completes; a connection's responses always come back in its
request-arrival order, so clients may pipeline arbitrarily deep.

Graceful degradation is deliberate and tested: malformed or oversized
requests get structured error responses, a client disconnecting
mid-stream only increments a counter, cache-directory loss degrades
the store to memory-only, and shutdown drains every admitted request
before closing connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cache import CompilationCache
from ..core.batch import CompileJob, compile_many
from ..core.pipeline import ALL_OPTIMIZERS, MerlinPipeline
from ..verifier import KERNELS
from . import protocol
from .fairness import FairAdmissionQueue
from .metrics import ServiceStats
from .protocol import ProtocolError, Request

_STOP = object()   # admission-queue sentinel: drain, then exit
_EOF = object()    # per-connection write-queue sentinel


@dataclass
class ServeConfig:
    """Everything that shapes one daemon instance."""

    socket_path: Optional[str] = None   # unix domain socket (default)
    host: Optional[str] = None          # or TCP on host:port
    port: int = 0
    jobs: int = 1                       # compile worker processes
    cache_dir: Optional[str] = None     # shared warm cache (None: temp)
    max_memory_entries: int = 4096
    max_batch: int = 16                 # admission window: size cap ...
    max_delay: float = 0.01             # ... and linger seconds
    kernel: str = "6.5"
    queue_limit: int = 4096             # admission backpressure
    #: how long ``stop(drain=True)`` lets the event loop keep admitting
    #: already-readable sockets before refusing new work — shrinks the
    #: window in which a request racing the stop call is dropped
    drain_grace: float = 0.05
    #: per-tenant admission weights (missing tenants weigh 1); the
    #: fair queue serves a backlogged tenant at most ``weight``
    #: consecutive slots per round
    tenant_weights: Optional[Dict[str, int]] = None
    #: requests at this priority or above cut the admission window's
    #: linger timer short (the batch dispatches immediately)
    preempt_priority: int = 1
    #: idle TTL for cache entries (seconds; None = keep forever)
    cache_ttl: Optional[float] = None
    #: disk-store size budget enforced by the periodic sweep
    cache_max_bytes: Optional[int] = None
    #: how often the eviction sweep runs when either bound is set
    sweep_interval: float = 5.0
    #: fleet shard index (set by the router; labels stats snapshots)
    shard_id: Optional[int] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if not 0 <= self.preempt_priority <= protocol.MAX_PRIORITY + 1:
            raise ValueError("preempt_priority out of range")
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if self.socket_path is None and self.host is None:
            self.socket_path = os.path.join(
                tempfile.mkdtemp(prefix="repro-serve-"), "serve.sock")

    def describe(self) -> dict:
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "jobs": self.jobs,
            "max_batch": self.max_batch,
            "max_delay_ms": round(self.max_delay * 1000, 3),
            "kernel": self.kernel,
            "cache_dir": self.cache_dir,
            "preempt_priority": self.preempt_priority,
            "cache_ttl_seconds": self.cache_ttl,
            "cache_max_bytes": self.cache_max_bytes,
            "shard_id": self.shard_id,
        }


class _Pending:
    """One admitted compile request awaiting its batch."""

    __slots__ = ("request", "future", "enqueued", "dispatched")

    def __init__(self, request: Request, future: "asyncio.Future"):
        self.request = request
        self.future = future
        self.enqueued = time.monotonic()
        self.dispatched = 0.0


class _Connection:
    """Per-client state: a FIFO of response futures and one writer."""

    def __init__(self, writer: asyncio.StreamWriter, stats: ServiceStats):
        self.writer = writer
        self.stats = stats
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.inflight = 0
        self.broken = False
        self.writer_task: Optional[asyncio.Task] = None

    def enqueue(self, future: "asyncio.Future") -> None:
        self.inflight += 1
        self.queue.put_nowait(future)

    async def write_loop(self) -> None:
        """Write responses strictly in request-arrival order."""
        while True:
            item = await self.queue.get()
            if item is _EOF:
                break
            response = await item
            if not self.broken:
                try:
                    self.writer.write(protocol.encode(response))
                    await self.writer.drain()
                    self.stats.responses_sent += 1
                except (ConnectionError, OSError):
                    # client went away mid-stream: keep draining
                    # futures (their results are simply dropped)
                    self.broken = True
                    self.stats.disconnects += 1
            self.inflight -= 1

    async def quiesce(self) -> None:
        while self.inflight > 0:
            await asyncio.sleep(0.005)


class OptimizationDaemon:
    """The asyncio service around :func:`repro.core.batch.compile_many`."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.stats = ServiceStats()
        self._own_cache_dir: Optional[str] = None
        cache_dir = self.config.cache_dir
        if cache_dir is None and self.config.jobs > 1:
            # worker processes share the warm cache through disk only
            cache_dir = self._own_cache_dir = tempfile.mkdtemp(
                prefix="repro-serve-cache-")
            self.config.cache_dir = cache_dir
        self.cache = CompilationCache(
            directory=cache_dir,
            max_memory_entries=self.config.max_memory_entries,
            ttl_seconds=self.config.cache_ttl,
            max_disk_bytes=self.config.cache_max_bytes)
        self._pipelines: Dict[tuple, MerlinPipeline] = {}
        # source-text -> cache-key memo: repeat requests skip the
        # frontend entirely and answer straight from the warm cache
        self._source_keys: "OrderedDict[tuple, str]" = OrderedDict()
        self._queue = FairAdmissionQueue(
            maxsize=self.config.queue_limit,
            weights=self.config.tenant_weights)
        self._connections: set = set()
        self._handler_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._dispatch_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch")
        self._pool: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False       # no longer admitting compiles
        self._stop_requested = False  # stop() body claimed
        self._stopped = asyncio.Event()
        self.address: Optional[Tuple] = None

    # ------------------------------------------------------------ setup
    def _pipeline_for(self, request: Request) -> MerlinPipeline:
        key = request.config_key
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            enabled = key[1] if key[1] is not None else ALL_OPTIMIZERS
            pipeline = MerlinPipeline(kernel=KERNELS[key[0]],
                                      enabled=frozenset(enabled))
            self._pipelines[key] = pipeline
        return pipeline

    async def start(self) -> None:
        """Bind the socket and start the batcher; returns once ready."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        if self.config.jobs > 1:
            # spawn (not fork): the daemon is multi-threaded by design
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                mp_context=multiprocessing.get_context("spawn"))
        if self.config.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES)
            self.address = ("unix", self.config.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=protocol.MAX_LINE_BYTES)
            sock = self._server.sockets[0]
            self.address = ("tcp",) + sock.getsockname()[:2]
        self._batcher_task = asyncio.ensure_future(self._batch_loop())
        if self.config.cache_ttl is not None \
                or self.config.cache_max_bytes is not None:
            self._sweep_task = asyncio.ensure_future(self._sweep_loop())

    async def _sweep_loop(self) -> None:
        """Periodic TTL/size-budget eviction over the shared store.

        The walk runs off-loop (default thread executor) so a large
        tree never stalls request handling; the sweep itself is safe
        against concurrent sweepers in other shard daemons — the
        tombstone rename arbitrates every removal.
        """
        while not self._stopping:
            await asyncio.sleep(self.config.sweep_interval)
            if self._stopping:
                break
            try:
                await self._loop.run_in_executor(None, self.cache.sweep)
            except Exception:  # pragma: no cover - sweep is best-effort
                pass

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    # ------------------------------------------------------- connections
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer, self.stats)
        conn.writer_task = asyncio.ensure_future(conn.write_loop())
        self._connections.add(conn)
        self._handler_tasks.add(asyncio.current_task())
        self.stats.connections_opened += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # request line beyond the framing limit: the stream
                    # is unrecoverable — answer once, then hang up
                    self.stats.protocol_errors += 1
                    conn.enqueue(self._resolved(protocol.error_response(
                        None, "oversized",
                        f"line exceeds {protocol.MAX_LINE_BYTES} bytes")))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.stats.requests_received += 1
                self._route(conn, line)
        finally:
            conn.queue.put_nowait(_EOF)
            try:
                await conn.writer_task
            except BaseException:  # incl. CancelledError at teardown
                conn.writer_task.cancel()
            finally:
                with contextlib.suppress(Exception):
                    writer.close()
                self._connections.discard(conn)
                self._handler_tasks.discard(asyncio.current_task())
                self.stats.connections_closed += 1

    def _resolved(self, response: dict) -> "asyncio.Future":
        future = self._loop.create_future()
        future.set_result(response)
        return future

    def _route(self, conn: _Connection, line: bytes) -> None:
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            conn.enqueue(self._resolved(protocol.error_from(exc)))
            return
        if request.op == "ping":
            conn.enqueue(self._resolved(protocol.ok_response(
                request.id, {"pong": True,
                             "protocol_version": protocol.PROTOCOL_VERSION})))
            return
        if request.op == "stats":
            conn.enqueue(self._resolved(protocol.ok_response(
                request.id, self.snapshot())))
            return
        if request.op == "shutdown":
            conn.enqueue(self._resolved(protocol.ok_response(
                request.id, {"stopping": True})))
            asyncio.ensure_future(self.stop(drain=True))
            return
        # compile / validate
        if self._stopping:
            self.stats.rejected += 1
            conn.enqueue(self._resolved(protocol.error_response(
                request.id, "shutting-down",
                "daemon is draining; request not admitted")))
            return
        future = self._loop.create_future()
        pending = _Pending(request, future)
        try:
            self._queue.put_nowait(pending, priority=request.priority,
                                   tenant=request.tenant)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            conn.enqueue(self._resolved(protocol.error_response(
                request.id, "shutting-down", "admission queue full")))
            return
        depth = self._queue.qsize()
        if depth > self.stats.peak_queue_depth:
            self.stats.peak_queue_depth = depth
        conn.enqueue(future)

    # ---------------------------------------------------------- batching
    def _preempts(self, pending: _Pending) -> bool:
        return pending.request.priority >= self.config.preempt_priority

    async def _batch_loop(self) -> None:
        """Admission batching: linger up to ``max_delay`` for up to
        ``max_batch`` requests, then dispatch them as one batch.

        The fair queue hands requests over highest-priority-first and
        weighted round-robin across tenants; a request at or above
        ``preempt_priority`` additionally cancels the remaining linger
        so urgent work never waits out the window behind bulk traffic.
        """
        stop_seen = False
        while not stop_seen:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            preempted = self._preempts(item)
            deadline = self._loop.time() + self.config.max_delay
            while len(batch) < self.config.max_batch and not preempted:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stop_seen = True
                    break
                batch.append(nxt)
                preempted = self._preempts(nxt)
            if preempted:
                self.stats.preempted_batches += 1
            await self._dispatch(batch)
        # drain anything admitted after the sentinel was queued
        leftovers: List[_Pending] = []
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not _STOP:
                leftovers.append(item)
        if leftovers:
            await self._dispatch(leftovers)

    # one memo entry per distinct request shape; bounded like the cache
    _MEMO_LIMIT = 8192

    def _memo_key(self, request: Request) -> tuple:
        return (request.source, request.entry, request.name,
                request.prog_type, request.mcpu, request.ctx_size,
                request.asm, request.pgo, request.superopt,
                request.config_key)

    def _fast_path(self, pending: _Pending) -> bool:
        """Answer a repeat request straight from the warm cache.

        The content-addressed cache key hashes canonical IR, so a
        plain lookup still pays the full frontend.  The daemon sees
        identical *source text* over and over (the Zipf head), so it
        memoizes source -> key after the first compile and serves
        repeats without parsing anything.  Entries stored under a
        ``validate=True`` key were certified at store time, so
        replaying the raise check is unnecessary here.
        """
        key = self._source_keys.get(self._memo_key(pending.request))
        if key is None:
            return False
        hit = self.cache.get(key)
        if hit is None:
            return False
        program, report = hit
        report.cached = True
        self.stats.fast_path_hits += 1
        self.stats.compiles_completed += 1
        self.stats.observe_served(pending.request.tenant,
                                  pending.request.priority)
        self._finish(pending, protocol.ok_response(
            pending.request.id,
            self._payload(pending.request, program, report)))
        return True

    def _memoize(self, request: Request, report) -> None:
        if getattr(report, "cache_key", None) is None:
            return
        memo = self._memo_key(request)
        self._source_keys[memo] = report.cache_key
        self._source_keys.move_to_end(memo)
        while len(self._source_keys) > self._MEMO_LIMIT:
            self._source_keys.popitem(last=False)

    async def _dispatch(self, batch: List[_Pending]) -> None:
        """Group one admitted batch by pipeline config and compile."""
        now = time.monotonic()
        for pending in batch:
            pending.dispatched = now
            self.stats.queue_latency.observe(now - pending.enqueued)
        batch = [p for p in batch if not self._fast_path(p)]
        groups: Dict[tuple, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.request.config_key,
                              []).append(pending)
        for key, members in groups.items():
            pipeline = self._pipeline_for(members[0].request)
            jobs = [CompileJob(name=p.request.name, source=p.request.source,
                               entry=p.request.entry,
                               prog_type=p.request.prog_type,
                               mcpu=p.request.mcpu,
                               ctx_size=p.request.ctx_size,
                               pgo=p.request.pgo,
                               superopt=p.request.superopt)
                    for p in members]
            validate = members[0].request.validate
            worker_jobs = self.config.jobs if self._pool is not None else 1
            call = lambda: compile_many(  # noqa: E731 - bound per group
                pipeline, jobs, jobs=worker_jobs, cache=self.cache,
                executor=self._pool, validate=validate,
                on_error="capture")
            try:
                report = await self._loop.run_in_executor(
                    self._dispatch_thread, call)
            except Exception as exc:  # pool died, pickle failure, ...
                for pending in members:
                    self._finish(pending, protocol.error_response(
                        pending.request.id, "internal",
                        f"{type(exc).__name__}: {exc}"))
                continue
            self.stats.observe_batch(len(members), report.wall_seconds)
            # Resolve strictly by position, and resolve *every* member:
            # a report that somehow came back short (a broken batch
            # implementation, a truncated worker result) must still
            # answer the unmatched requests — an unresolved future
            # wedges its connection's write loop and stop(drain=True)
            # then never finishes quiescing.
            for index, pending in enumerate(members):
                if index >= len(report.programs):
                    self.stats.compile_errors += 1
                    self._finish(pending, protocol.error_response(
                        pending.request.id, "internal",
                        "batch report shorter than the request group"))
                    continue
                program = report.programs[index]
                rep = report.reports[index]
                error = (report.errors[index]
                         if index < len(report.errors) else None)
                if error is not None or rep is None:
                    self.stats.compile_errors += 1
                    self._finish(pending, protocol.error_response(
                        pending.request.id, "compile-error",
                        error or "no result for request"))
                else:
                    self.stats.compiles_completed += 1
                    self.stats.observe_served(pending.request.tenant,
                                              pending.request.priority)
                    self._memoize(pending.request, rep)
                    self._finish(pending, protocol.ok_response(
                        pending.request.id,
                        self._payload(pending.request, program, rep)))

    def _finish(self, pending: _Pending, response: dict) -> None:
        self.stats.latency.observe(time.monotonic() - pending.enqueued)
        if not pending.future.done():
            pending.future.set_result(response)

    def _payload(self, request: Request, program, report) -> dict:
        result = {
            "name": report.name,
            "ni_original": report.ni_original,
            "ni_optimized": report.ni_optimized,
            "ni_reduction": round(report.ni_reduction, 4),
            "cached": report.cached,
            "mcpu": program.mcpu,
            "insns": program.ni,
            "compile_ms": round(report.compile_seconds * 1000, 3),
        }
        if request.validate:
            by_status: Dict[str, int] = {}
            for cert in report.certificates:
                by_status[cert.status] = by_status.get(cert.status, 0) + 1
            result["certificates"] = {
                "applications": len(report.certificates),
                "certified": all(c.certified
                                 for c in report.certificates),
                "by_status": by_status,
            }
        if request.pgo is not None:
            layout = [s for s in report.pass_stats if s.name == "layout"]
            result["layout"] = {
                "rewrites": sum(s.rewrites for s in layout),
                "profiled_runs": sum(s.details.get("profiled_runs", 0)
                                     for s in layout),
                "spec": request.pgo.fingerprint(),
            }
        if request.superopt is not None:
            superopt = [s for s in report.pass_stats
                        if s.name == "superopt"]
            result["superopt"] = {
                "rewrites": sum(s.rewrites for s in superopt),
                "searches": sum(s.details.get("searches", 0)
                                for s in superopt),
                "memo_hits": sum(s.details.get("memo_hits", 0)
                                 for s in superopt),
                "spec": request.superopt.fingerprint(),
            }
        if request.asm:
            from ..isa import disassemble

            result["asm"] = disassemble(program.insns)
        return result

    # ------------------------------------------------------------- stats
    def snapshot(self) -> dict:
        out = self.stats.snapshot(
            queue_depth=self._queue.qsize(),
            cache_stats=self.cache.stats.to_dict(),
            config=self.config.describe())
        from ..vm.engine import decode_cache_stats
        from ..vm.engine.jit import jit_cache_size, jit_cache_stats

        decode = decode_cache_stats()
        jit = jit_cache_stats()
        out["vm"] = {
            "decode_cache": {
                "hits": decode.hits,
                "misses": decode.misses,
                "hit_rate": round(decode.hit_rate, 4),
            },
            "jit_cache": {
                "hits": jit.hits,
                "misses": jit.misses,
                "hit_rate": round(jit.hit_rate, 4),
                "entries": jit_cache_size(),
            },
        }
        return out

    # -------------------------------------------------------------- stop
    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain admitted requests, then
        flush every connection and shut the workers down."""
        if self._stop_requested:
            await self._stopped.wait()
            return
        self._stop_requested = True
        if drain and self.config.drain_grace > 0:
            # let the loop process sockets that are already readable
            # (accepts and buffered request lines that raced this call)
            # so they are admitted and drained instead of dropped
            await asyncio.sleep(self.config.drain_grace)
        self._stopping = True
        if self._server is not None:
            # close() alone stops the accept loop.  wait_closed() must
            # come *after* connection teardown: from Python 3.12 it
            # also waits for every accepted transport to detach, so
            # awaiting it here deadlocks against a client that holds
            # its connection open across the drain.
            self._server.close()
        if not drain:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _STOP:
                    self.stats.rejected += 1
                    self._finish(item, protocol.error_response(
                        item.request.id, "shutting-down",
                        "daemon stopped without draining"))
        self._queue.put_control(_STOP)
        if self._batcher_task is not None:
            await self._batcher_task
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweep_task
        # every admitted future is resolved; let the writers flush
        for conn in list(self._connections):
            await conn.quiesce()
        for conn in list(self._connections):
            conn.queue.put_nowait(_EOF)
            with contextlib.suppress(Exception):
                conn.writer.close()
        for task in list(self._handler_tasks):
            with contextlib.suppress(Exception):
                await asyncio.wait_for(task, timeout=5.0)
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 5.0)
        self._dispatch_thread.shutdown(wait=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        if self._own_cache_dir is not None:
            shutil.rmtree(self._own_cache_dir, ignore_errors=True)
        self._stopped.set()

    def request_stop(self, drain: bool = True) -> None:
        """Thread-safe stop trigger (for signal handlers / test code)."""
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(self.stop(drain=drain),
                                             self._loop)


class DaemonThread:
    """Run a daemon on a private event loop in a background thread.

    The pattern tests and the load generator use::

        with DaemonThread(ServeConfig(max_delay=0.005)) as daemon:
            client = ServeClient(daemon.address)
            ...
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.daemon = OptimizationDaemon(config)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    # --------------------------------------------------------- lifecycle
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.daemon.start()
        self._ready.set()
        await self.daemon.serve_forever()

    def start(self) -> "DaemonThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("daemon failed to start in time")
        if self._error is not None:
            raise RuntimeError("daemon failed to start") from self._error
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._thread.is_alive():
            self.daemon.request_stop(drain=drain)
            self._thread.join(timeout=timeout)

    @property
    def address(self) -> Tuple:
        return self.daemon.address

    @property
    def stats(self) -> ServiceStats:
        return self.daemon.stats

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
